//! Quickstart: parse a recursive Datalog program, run it with the adaptive
//! JIT, and inspect the results.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use carac::{Carac, EngineConfig};
use carac_datalog::parser::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A classic recursive query: which organisations (transitively) control
    // which subsidiaries, and which pairs of organisations are independent?
    let program = parse(
        r#"
        % direct ownership facts
        Owns(1, 2). Owns(2, 3). Owns(3, 4).
        Owns(5, 6). Owns(6, 7).
        Org(1). Org(2). Org(3). Org(4). Org(5). Org(6). Org(7).

        % transitive control
        Controls(x, y) :- Owns(x, y).
        Controls(x, y) :- Owns(x, z), Controls(z, y).

        % independent pairs: organisations with no control relationship
        Independent(x, y) :- Org(x), Org(y), !Controls(x, y), !Controls(y, x).
        "#,
    )?;

    // The default configuration is the adaptive JIT (lambda backend,
    // re-optimizing join orders at every per-relation union).
    let result = Carac::new(program.clone()).run()?;

    println!("Controls ({} tuples):", result.count("Controls")?);
    for row in result.rows("Controls")? {
        println!("  {} controls {}", row[0], row[1]);
    }
    println!(
        "Independent pairs: {} (of {} organisations)",
        result.count("Independent")?,
        result.count("Org")?
    );

    // The same program under pure interpretation gives identical answers;
    // the engine configuration only changes *how* the fixpoint is computed.
    let interpreted = Carac::new(program)
        .with_config(EngineConfig::interpreted())
        .run()?;
    assert_eq!(interpreted.count("Controls")?, result.count("Controls")?);

    println!("\nRun statistics (JIT):");
    let stats = result.stats();
    println!("  iterations:        {}", stats.iterations);
    println!("  subqueries:        {}", stats.subqueries);
    println!("  join re-orderings: {}", stats.reorders);
    println!("  compilations:      {}", stats.compilations());
    println!("  total time:        {:?}", stats.total_time);
    Ok(())
}
