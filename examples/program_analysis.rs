//! Program analysis with Carac: the paper's CSPA (context-sensitive pointer
//! analysis) workload on synthetic program facts, comparing a badly ordered
//! query under pure interpretation with the same query under the adaptive
//! JIT.
//!
//! Run with:
//! ```text
//! cargo run --release --example program_analysis
//! ```

use carac::knobs::BackendKind;
use carac::EngineConfig;
use carac_analysis::{cspa, Formulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ~100 program variables of synthetic assignment/dereference facts.
    let workload = cspa(96, 42);
    println!("{} — {}", workload.name, workload.description);
    println!(
        "input facts: {} rules over {} relations\n",
        workload.optimized.rules().len(),
        workload.optimized.relations().len()
    );

    // The "unoptimized" formulation orders atoms exactly as written in the
    // paper's Fig. 1 — including the VAlias rule whose first two atoms share
    // no variable (a cartesian product).
    let (count_interp, t_interp) =
        workload.measure(Formulation::Unoptimized, EngineConfig::interpreted())?;

    // The adaptive JIT receives the *same* badly ordered program but reorders
    // every conjunctive subquery at runtime using live cardinalities.
    let (count_jit, t_jit) = workload.measure(
        Formulation::Unoptimized,
        EngineConfig::jit(BackendKind::Lambda, false),
    )?;

    // And the hand-optimized formulation under plain interpretation, for
    // reference.
    let (count_hand, t_hand) =
        workload.measure(Formulation::HandOptimized, EngineConfig::interpreted())?;

    assert_eq!(count_interp, count_jit);
    assert_eq!(count_interp, count_hand);

    println!("derived VAlias pairs: {count_interp}");
    println!("interpreted, unoptimized order : {t_interp:?}");
    println!("interpreted, hand-optimized    : {t_hand:?}");
    println!("adaptive JIT on unoptimized    : {t_jit:?}");
    println!(
        "\nJIT speedup over the unoptimized interpretation: {:.1}x",
        t_interp.as_secs_f64() / t_jit.as_secs_f64().max(1e-9)
    );
    Ok(())
}
