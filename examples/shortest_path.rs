//! Shortest paths via `min` aggregation and comparison constraints.
//!
//! Bounded reachability enumerates `(node, distance)` pairs, a stratified
//! `min` aggregate collapses them to one shortest distance per node, and a
//! `<` constraint selects the nodes within a delivery radius.
//!
//! Run with:
//! ```text
//! cargo run --release --example shortest_path
//! ```

use carac::{Carac, EngineConfig};
use carac_datalog::parser::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small road network.  `Succ` encodes the distance chain 0..=6 so the
    // recursive enumeration is bounded; `min d` keeps only the shortest
    // distance per node; `d < 3` selects the delivery radius.
    let program = parse(
        r#"
        % road network
        Road(0, 1). Road(0, 2). Road(1, 3). Road(2, 3).
        Road(3, 4). Road(4, 5). Road(2, 6). Road(6, 5).

        % bounded hop counting
        Zero(0).
        Succ(0, 1). Succ(1, 2). Succ(2, 3). Succ(3, 4). Succ(4, 5). Succ(5, 6).
        Depot(0).

        Reach(y, d)  :- Depot(y), Zero(d).
        Reach(y, d2) :- Reach(x, d1), Road(x, y), Succ(d1, d2).

        % one shortest distance per node (stratified aggregation)
        Dist(y, min d) :- Reach(y, d).

        % nodes within the delivery radius (comparison constraint)
        Deliverable(y) :- Dist(y, d), d < 3.
        "#,
    )?;

    let result = Carac::new(program.clone()).run()?;

    println!("Shortest distances from the depot:");
    let mut rows = result.rows("Dist")?;
    rows.sort();
    for row in rows {
        println!("  node {} at distance {}", row[0], row[1]);
    }

    println!("\nDeliverable (fewer than 3 hops):");
    let mut rows = result.rows("Deliverable")?;
    rows.sort();
    for row in rows {
        println!("  node {}", row[0]);
    }

    // Every backend agrees on the aggregate and the constrained selection.
    for config in [
        EngineConfig::interpreted(),
        EngineConfig::jit(carac::knobs::BackendKind::Bytecode, false),
    ] {
        let other = Carac::new(program.clone()).with_config(config).run()?;
        assert_eq!(other.count("Dist")?, result.count("Dist")?);
        assert_eq!(other.count("Deliverable")?, result.count("Deliverable")?);
    }
    println!("\ninterpreter, JIT and bytecode VM agree on every distance");
    Ok(())
}
