//! Shortest paths three ways: two-stratum `min` aggregation, the
//! single-rule recursive lattice form, and `explain` on the result.
//!
//! The two-stratum form enumerates every bounded `(node, distance)` walk
//! and folds once at the stratum boundary; the lattice form folds *inside*
//! the fixpoint loop, so only the current optimum per node is ever carried
//! forward.  Both derive the exact BFS distances; a `<` constraint then
//! selects the nodes within a delivery radius, and `Carac::explain`
//! reconstructs a shortest route as a derivation tree.
//!
//! Run with:
//! ```text
//! cargo run --release --example shortest_path
//! ```

use carac::{Carac, EngineConfig};
use carac_datalog::parser::parse;

const NETWORK: &str = r#"
    % road network
    Road(0, 1). Road(0, 2). Road(1, 3). Road(2, 3).
    Road(3, 4). Road(4, 5). Road(2, 6). Road(6, 5).

    % bounded hop counting
    Zero(0).
    Succ(0, 1). Succ(1, 2). Succ(2, 3). Succ(3, 4). Succ(4, 5). Succ(5, 6).
    Depot(0).
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Two-stratum formulation: enumerate walks, fold once. -------------
    let two_stratum = parse(&format!(
        "{NETWORK}
        Reach(y, d)  :- Depot(y), Zero(d).
        Reach(y, d2) :- Reach(x, d1), Road(x, y), Succ(d1, d2).

        % one shortest distance per node (stratified aggregation)
        Dist(y, min d) :- Reach(y, d).

        % nodes within the delivery radius (comparison constraint)
        Deliverable(y) :- Dist(y, d), d < 3.
        "
    ))?;

    // --- Recursive lattice formulation: fold inside the loop. -------------
    // `Dist` appears in its own rule body, so stratification classifies the
    // `min` as a monotone lattice fold: each iteration re-folds the hidden
    // input and a node re-enters the delta only when its distance strictly
    // improves.  The bounded walk enumeration is never materialized.
    let lattice = parse(&format!(
        "{NETWORK}
        Dist(y, min d)  :- Depot(y), Zero(d).
        Dist(y, min d2) :- Dist(x, d1), Road(x, y), Succ(d1, d2).
        Deliverable(y)  :- Dist(y, d), d < 3.
        "
    ))?;

    let reference = Carac::new(two_stratum.clone()).run()?;
    let result = Carac::new(lattice.clone()).run()?;

    println!("Shortest distances from the depot (single-rule lattice form):");
    let mut rows = result.rows("Dist")?;
    rows.sort();
    for row in &rows {
        println!("  node {} at distance {}", row[0], row[1]);
    }

    println!("\nDeliverable (fewer than 3 hops):");
    let mut rows = result.rows("Deliverable")?;
    rows.sort();
    for row in rows {
        println!("  node {}", row[0]);
    }

    // The two formulations agree tuple-for-tuple...
    let mut lattice_dists = result.tuples("Dist")?;
    let mut two_stratum_dists = reference.tuples("Dist")?;
    lattice_dists.sort();
    two_stratum_dists.sort();
    assert_eq!(lattice_dists, two_stratum_dists);

    // ...and every backend agrees on the lattice fold.
    for config in [
        EngineConfig::interpreted(),
        EngineConfig::jit(carac::knobs::BackendKind::Bytecode, false),
        EngineConfig::interpreted().with_parallelism(4),
    ] {
        let other = Carac::new(lattice.clone()).with_config(config).run()?;
        let mut dists = other.tuples("Dist")?;
        dists.sort();
        assert_eq!(dists, lattice_dists);
    }
    println!("\ntwo-stratum, lattice, interpreter, bytecode VM and parallel runs all agree");

    // --- Why is node 5 at distance 3?  Ask for the derivation. ------------
    let tree = Carac::new(lattice).explain("Dist", &[5, 3])?;
    println!("\nexplain Dist(5, 3):\n{tree}");
    Ok(())
}
