//! Build a Datalog program with the embedded builder DSL (no textual
//! parsing), feed it generated facts, and use stratified negation to find
//! the nodes a crawler can never reach.
//!
//! Run with:
//! ```text
//! cargo run --release --example graph_reachability
//! ```

use carac::{Carac, EngineConfig};
use carac_analysis::generators::random_digraph;
use carac_datalog::ProgramBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const NODES: u32 = 200;

    // The rules are ordinary Rust values: relations, rules and facts are
    // assembled programmatically, so workloads can be generated on the fly.
    let mut builder = ProgramBuilder::new();
    builder.relation("Edge", 2);
    builder.relation("Node", 1);
    builder.relation("Seed", 1);
    builder.relation("Reach", 1);
    builder.relation("Unreached", 1);

    builder.rule("Reach", &["x"]).when("Seed", &["x"]).end();
    builder
        .rule("Reach", &["y"])
        .when("Reach", &["x"])
        .when("Edge", &["x", "y"])
        .end();
    builder
        .rule("Unreached", &["x"])
        .when("Node", &["x"])
        .when_not("Reach", &["x"])
        .end();

    for n in 0..NODES {
        builder.fact_ints("Node", &[n]);
    }
    builder.fact_ints("Seed", &[0]);
    for (a, b) in random_digraph(NODES, (NODES as usize) * 2, 2024) {
        builder.fact_ints("Edge", &[a, b]);
    }

    let program = builder.build()?;
    let result = Carac::new(program)
        .with_config(EngineConfig::default())
        .run()?;

    let reached = result.count("Reach")?;
    let unreached = result.count("Unreached")?;
    println!("nodes: {NODES}");
    println!("reachable from node 0: {reached}");
    println!("never reached:         {unreached}");
    assert_eq!(reached + unreached, NODES as usize);

    let sample: Vec<String> = result
        .rows("Unreached")?
        .into_iter()
        .take(10)
        .map(|row| row[0].clone())
        .collect();
    println!("first unreached nodes: {}", sample.join(", "));
    Ok(())
}
