//! Exercise every compilation backend on the same query and compare what
//! each one does: compilations performed, artifacts reused, re-orderings
//! applied, deoptimizations, and wall-clock time.
//!
//! Run with:
//! ```text
//! cargo run --release --example adaptive_backends
//! ```

use carac::knobs::BackendKind;
use carac::EngineConfig;
use carac_analysis::{inverse_functions, Formulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = inverse_functions(96, 7);
    println!("{} — {}\n", workload.name, workload.description);

    let configs: Vec<EngineConfig> = vec![
        EngineConfig::interpreted(),
        EngineConfig::jit(BackendKind::IrGen, false),
        EngineConfig::jit(BackendKind::Lambda, false),
        EngineConfig::jit(BackendKind::Bytecode, false),
        EngineConfig::jit(BackendKind::Quotes, false),
        EngineConfig::jit(BackendKind::Quotes, true),
    ];

    println!(
        "{:<24} {:>10} {:>8} {:>9} {:>7} {:>12}",
        "configuration", "time", "reorder", "compiles", "deopts", "result"
    );
    let mut expected = None;
    for config in configs {
        let label = config.label();
        let result = workload.run(Formulation::Unoptimized, config)?;
        let count = result.count(workload.output_relation)?;
        if let Some(expected) = expected {
            assert_eq!(count, expected, "{label} produced a different result");
        } else {
            expected = Some(count);
        }
        let stats = result.stats();
        println!(
            "{:<24} {:>10.4?} {:>8} {:>9} {:>7} {:>12}",
            label,
            stats.total_time,
            stats.reorders,
            stats.compilations(),
            stats.deopts,
            count
        );
    }
    println!("\nAll configurations derived the same fixpoint.");
    Ok(())
}
