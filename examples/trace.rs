//! Observability tour: trace a run, print the per-rule profile table, and
//! export the chrome-trace + metrics artifacts.
//!
//! Run with:
//! ```text
//! cargo run --release --example trace
//! ```
//!
//! Writes `carac-trace.json` (load it in `chrome://tracing` or
//! <https://ui.perfetto.dev>) and `carac-metrics.json` (a flat counter
//! snapshot) to the current directory — override the prefix with
//! `CARAC_TRACE_PREFIX=/some/dir/name`.  A small built-in JSON checker
//! re-reads both files and fails loudly if either is malformed or empty,
//! which is exactly what CI runs.

use carac::{Carac, EngineConfig, TraceConfig};
use carac_datalog::parser::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Transitive closure over a chain with shortcuts: enough iterations to
    // give every rule a profile worth reading.
    let mut source = String::from(
        "Path(x, y) :- Edge(x, y).\n\
         Path(x, y) :- Path(x, z), Edge(z, y).\n",
    );
    for i in 0..40u32 {
        source.push_str(&format!("Edge({i}, {}). ", i + 1));
    }
    for i in (0..30u32).step_by(6) {
        source.push_str(&format!("Edge({i}, {}). ", i + 4));
    }
    let program = parse(&source)?;

    // Tracing is one builder call; the default config records nothing and
    // costs one branch per instrumentation site.
    let result = Carac::new(program)
        .with_config(EngineConfig::default().with_tracing(TraceConfig::default()))
        .run()?;

    println!("derived {} Path facts\n", result.count("Path")?);

    // The per-rule profile table: executions, delta input rows, emitted /
    // inserted tuples and time per rule, plus observed-vs-estimated
    // cardinality deltas where the optimizer made a prediction.
    println!("{}", result.summary());

    let prefix = std::env::var("CARAC_TRACE_PREFIX").unwrap_or_else(|_| "carac".to_string());
    let trace_path = format!("{prefix}-trace.json");
    let metrics_path = format!("{prefix}-metrics.json");
    result.write_chrome_trace(&trace_path)?;
    result.write_metrics_snapshot(&metrics_path)?;
    println!("wrote {trace_path} and {metrics_path}");

    // Re-read and validate both artifacts.
    let trace = std::fs::read_to_string(&trace_path)?;
    let events = check_json(&trace)?;
    if events == 0 {
        return Err(format!("{trace_path}: no trace events recorded").into());
    }
    let metrics = std::fs::read_to_string(&metrics_path)?;
    check_json(&metrics)?;
    println!("validated: {events} chrome-trace events, metrics snapshot parses");
    Ok(())
}

/// A minimal JSON syntax checker (no values retained): validates the whole
/// document and returns the element count of the top-level array, or 0 for
/// a top-level object.
fn check_json(text: &str) -> Result<usize, Box<dyn std::error::Error>> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let count = match value(bytes, &mut pos)? {
        Top::Array(n) => n,
        Top::Other => 0,
    };
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}").into());
    }
    Ok(count)
}

enum Top {
    Array(usize),
    Other,
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

fn value(bytes: &[u8], pos: &mut usize) -> Result<Top, Box<dyn std::error::Error>> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'[') => {
            *pos += 1;
            let mut n = 0usize;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Top::Array(0));
            }
            loop {
                value(bytes, pos)?;
                n += 1;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Top::Array(n));
                    }
                    other => return Err(format!("expected , or ] but found {other:?}").into()),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Top::Other);
            }
            loop {
                skip_ws(bytes, pos);
                string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err("expected : after object key".into());
                }
                *pos += 1;
                value(bytes, pos)?;
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Top::Other);
                    }
                    other => return Err(format!("expected , or }} but found {other:?}").into()),
                }
            }
        }
        Some(b'"') => {
            string(bytes, pos)?;
            Ok(Top::Other)
        }
        Some(b) if b.is_ascii_digit() || *b == b'-' => {
            *pos += 1;
            while bytes.get(*pos).is_some_and(|b| {
                b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
            }) {
                *pos += 1;
            }
            Ok(Top::Other)
        }
        Some(_) => {
            for lit in ["true", "false", "null"] {
                if bytes[*pos..].starts_with(lit.as_bytes()) {
                    *pos += lit.len();
                    return Ok(Top::Other);
                }
            }
            Err(format!("unexpected byte at offset {pos}").into())
        }
        None => Err("unexpected end of input".into()),
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), Box<dyn std::error::Error>> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err("expected string".into());
    }
    *pos += 1;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}
