//! Lint: run the static analyzer over a deliberately-broken program,
//! pretty-print the diagnostics, and show that pruning the convicted rules
//! does not change the result.
//!
//! Run with:
//! ```text
//! cargo run --release --example lint
//! ```

use carac::{analyze, prune, Carac, EngineConfig, Severity};
use carac_datalog::parser::parse;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A transitive closure padded with every defect class the analyzer
    // detects: an unsatisfiable rule, a dead rule over a never-derivable
    // relation, a variable-renamed duplicate, a subsumed (strictly more
    // specific) rule, an unused relation, and an ordered comparison over
    // a column the type inference proves to be a symbol.
    let program = parse(
        r#"
        Edge(1, 2). Edge(2, 3). Edge(3, 4).
        Path(x, y) :- Edge(x, y).
        Path(x, y) :- Edge(x, z), Path(z, y).

        % unsat-rule: x < 2 and x > 9 admit no value
        Path(x, y) :- Edge(x, y), x < 2, x > 9.

        % dead-rule: Ghost can never hold a tuple (fed only by an
        % unsatisfiable rule), so this rule can never fire
        Ghost(x) :- Edge(x, x), x < 0.
        Path(x, y) :- Ghost(x), Edge(x, y).

        % duplicate-rule: a variable-renamed copy of the first rule
        Path(a, b) :- Edge(a, b).

        % subsumed-rule: strictly more specific than the first rule
        Path(x, y) :- Edge(x, y), x < 100.

        % unused-relation: extensional facts no rule ever reads
        Color(1). Color(2).

        % type-confused-comparison: the type inference proves `who` is a
        % symbol, so ordering it compares arbitrary interned ids
        Owner("alice", 2). Owner("bob", 3).
        Early(who, y) :- Owner(who, x), Edge(x, y), who > 0.
        "#,
    )?;

    // ── 1. Diagnose ────────────────────────────────────────────────────
    let analysis = analyze(&program);
    println!(
        "analyzer: {} error(s), {} warning(s)\n",
        analysis.error_count(),
        analysis.warning_count()
    );
    for diagnostic in &analysis.diagnostics {
        let marker = match diagnostic.severity {
            Severity::Error => "✗",
            Severity::Warning => "!",
        };
        println!("  {marker} {diagnostic}");
    }

    // ── 2. Prune ───────────────────────────────────────────────────────
    let pruned = prune(&program);
    println!(
        "\nprune: kept {} of {} rules",
        pruned.kept_rules.len(),
        program.rules().len()
    );
    for (rule, reason) in &pruned.dropped_rules {
        println!(
            "  - dropped {}: {reason:?}",
            program.display_rule(&program.rules()[rule.index()])
        );
    }

    // ── 3. Semantics preserved ─────────────────────────────────────────
    // The engine seam: `with_prune()` analyzes + prunes before planning.
    let plain = Carac::new(program.clone())
        .with_config(EngineConfig::interpreted())
        .run()?;
    let pruned_run = Carac::new(program)
        .with_config(EngineConfig::interpreted().with_prune())
        .run()?;
    println!(
        "\nPath: {} tuples unpruned, {} tuples pruned",
        plain.count("Path")?,
        pruned_run.count("Path")?
    );
    assert_eq!(plain.count("Path")?, pruned_run.count("Path")?);
    println!("pruned run is identical ✓");
    Ok(())
}
