//! # carac-optimizer
//!
//! The adaptive join-order optimizer of Carac-rs (paper §IV).
//!
//! The optimizer is a deliberately lightweight, *estimation-free* component:
//! instead of predicting how relation cardinalities evolve across semi-naive
//! iterations (which is where classical optimizers go wrong on recursive
//! queries), it is designed to be re-run whenever fresh cardinalities are
//! available — ahead of time with whatever facts exist, at query start with
//! the EDB cardinalities, and repeatedly during execution at whichever
//! granularity the JIT chooses.
//!
//! * [`cost`] — the three-input cost model: live cardinality, constant
//!   selectivity factors per bound constraint, and index availability.
//! * [`reorder`] — the greedy (runtime) and stable-sort (ahead-of-time)
//!   ordering algorithms.
//! * [`plan_rewrite`] — applying either algorithm across a whole plan or a
//!   single subtree.
//! * [`freshness`] — the freshness test that gates expensive recompilation.

#![forbid(unsafe_code)]

pub mod config;
pub mod context;
pub mod cost;
pub mod freshness;
pub mod plan_rewrite;
pub mod reorder;

pub use config::OptimizerConfig;
pub use context::OptimizeContext;
pub use cost::{
    atom_score_with_constraints, constraint_factor, constraint_factor_refined, parallel_speedup,
};
pub use freshness::FreshnessTest;
pub use plan_rewrite::{optimize_plan, optimize_subtree};
pub use reorder::{greedy_order, reorder_query, sort_order, ReorderAlgorithm};
