//! The freshness test (paper §V-B.2).
//!
//! Recompiling a subtree has a cost; it only pays off when the cardinality
//! landscape has actually shifted since the last compilation.  Before firing
//! a higher-overhead compilation target the JIT therefore checks whether the
//! relative change of any relation's cardinality exceeds a tunable
//! threshold.  The test is deliberately cheap — two snapshots and one pass —
//! so it can run at every safe point.

use carac_storage::StatsSnapshot;

use crate::config::OptimizerConfig;

/// Tracks the snapshot used for the last (re)optimization and decides when
/// re-optimizing is worthwhile.
#[derive(Debug, Clone, Default)]
pub struct FreshnessTest {
    last: Option<StatsSnapshot>,
}

impl FreshnessTest {
    /// Creates a test with no baseline; the first call to
    /// [`FreshnessTest::is_stale`] always reports `true`.
    pub fn new() -> Self {
        FreshnessTest::default()
    }

    /// Whether the optimizer should re-run, given the current statistics.
    ///
    /// Returns `true` when no baseline exists yet or when the maximum
    /// relative cardinality change since the baseline exceeds
    /// `config.freshness_threshold`.
    pub fn is_stale(&self, current: &StatsSnapshot, config: &OptimizerConfig) -> bool {
        match &self.last {
            None => true,
            Some(last) => last.max_relative_change(current) > config.freshness_threshold,
        }
    }

    /// Records that an optimization was performed against `snapshot`.
    pub fn record(&mut self, snapshot: StatsSnapshot) {
        self.last = Some(snapshot);
    }

    /// Clears the baseline (used on deoptimization).
    pub fn reset(&mut self) {
        self.last = None;
    }

    /// The snapshot of the last optimization, if any.
    pub fn last(&self) -> Option<&StatsSnapshot> {
        self.last.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carac_storage::RelationStats;

    fn snap(derived: usize) -> StatsSnapshot {
        StatsSnapshot::from_stats(
            vec![RelationStats {
                derived,
                ..Default::default()
            }],
            0,
        )
    }

    #[test]
    fn first_check_is_always_stale() {
        let test = FreshnessTest::new();
        assert!(test.is_stale(&snap(0), &OptimizerConfig::default()));
    }

    #[test]
    fn small_changes_are_fresh_large_changes_are_stale() {
        let config = OptimizerConfig {
            freshness_threshold: 0.5,
            ..OptimizerConfig::default()
        };
        let mut test = FreshnessTest::new();
        test.record(snap(100));
        assert!(!test.is_stale(&snap(120), &config)); // +20% < 50%
        assert!(test.is_stale(&snap(200), &config)); // +100% > 50%
    }

    #[test]
    fn reset_forces_reoptimization() {
        let config = OptimizerConfig::default();
        let mut test = FreshnessTest::new();
        test.record(snap(100));
        assert!(!test.is_stale(&snap(100), &config));
        test.reset();
        assert!(test.is_stale(&snap(100), &config));
        assert!(test.last().is_none());
    }
}
