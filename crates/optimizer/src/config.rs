//! Optimizer configuration.

/// Tunable parameters of the join-order optimizer.
///
/// The paper keeps the cost model deliberately lightweight (§IV): input
/// cardinalities are read from the live databases, each additional
/// constraint multiplies the estimate by a constant *selectivity* reduction
/// factor (conditions are assumed statistically independent), and indexes
/// make bound probes cheaper.  Every constant here is an ablation axis (see
/// `carac-bench`'s `ablations` bench).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimizerConfig {
    /// Multiplicative reduction applied per bound constraint (constant
    /// filter or join on an already-bound variable).
    pub selectivity_factor: f64,
    /// Additional multiplicative benefit applied when an atom can be probed
    /// through an existing index on a bound column.
    pub index_benefit: f64,
    /// Benefit applied instead of [`index_benefit`](Self::index_benefit)
    /// when a composite (multi-column) index covers two or more of the
    /// atom's bound columns: one hash probe resolves several constraints at
    /// once, so the model rewards it more than a single-column probe.
    pub composite_index_benefit: f64,
    /// Fraction of the ideal shard-parallel speedup lost to partitioning
    /// and merge overhead, used by `estimate_pipeline` when accounting for
    /// shard fan-out (`0.0` = perfect scaling, `1.0` = no benefit).
    pub parallel_merge_overhead: f64,
    /// Penalty multiplier applied to candidate atoms that share no variable
    /// with the already-chosen prefix (a cartesian product step).  Chosen
    /// large enough that a cartesian step is only taken when unavoidable.
    pub cartesian_penalty: f64,
    /// Cardinality assumed for intensional relations whose derived database
    /// is still empty when the optimization runs ahead of time (the "macro"
    /// configurations of §VI-C).  `None` means "trust the observed zero",
    /// which is what the runtime optimizer wants.
    pub unknown_idb_cardinality: Option<f64>,
    /// Relative cardinality change (between the snapshot used for the last
    /// optimization and the current one) above which recompilation is
    /// considered worthwhile — the "freshness" test of §V-B.2.
    pub freshness_threshold: f64,
    /// Multiplicative reduction applied per comparison constraint (`<`,
    /// `<=`, `>`, `>=`, `!=`) that becomes fully bound by placing an atom
    /// next; equality constraints use
    /// [`selectivity_factor`](Self::selectivity_factor) instead.  Inequality
    /// filters are far less selective than equality probes, hence the
    /// milder default.
    pub comparison_selectivity: f64,
    /// Multiplicative bonus applied to magic predicates (the `m__...`
    /// demand guards produced by the magic-set rewrite).  Magic relations
    /// hold the set of *demanded* bindings — typically a handful of tuples
    /// against the thousands of a base relation — and every adorned rule is
    /// correct only as a guarded derivation, so the model scores them as
    /// highly selective to keep the guard early in every reordered
    /// pipeline.
    pub magic_selectivity: f64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            selectivity_factor: 0.1,
            index_benefit: 0.5,
            composite_index_benefit: 0.25,
            parallel_merge_overhead: 0.25,
            cartesian_penalty: 1.0e6,
            unknown_idb_cardinality: None,
            freshness_threshold: 0.2,
            comparison_selectivity: 0.5,
            magic_selectivity: 0.05,
        }
    }
}

impl OptimizerConfig {
    /// Configuration used by the ahead-of-time ("macro") optimizations,
    /// where intensional cardinalities are unknown.
    pub fn ahead_of_time() -> Self {
        OptimizerConfig {
            unknown_idb_cardinality: Some(1_000.0),
            ..OptimizerConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_runtime_oriented() {
        let cfg = OptimizerConfig::default();
        assert!(cfg.unknown_idb_cardinality.is_none());
        assert!(cfg.selectivity_factor < 1.0);
        assert!(cfg.cartesian_penalty > 1.0);
        // A composite probe must beat a single-column probe, or the model
        // would never prefer the wider index.
        assert!(cfg.composite_index_benefit < cfg.index_benefit);
        assert!((0.0..1.0).contains(&cfg.parallel_merge_overhead));
    }

    #[test]
    fn aot_assumes_unknown_idb_cardinality() {
        let cfg = OptimizerConfig::ahead_of_time();
        assert!(cfg.unknown_idb_cardinality.is_some());
    }
}
