//! The information available to the optimizer at the moment it runs.
//!
//! Depending on the *stage* (paper §III / Fig. 2) different inputs are
//! concrete: ahead of time only the rule schema may be known; at query
//! compile time the EDB cardinalities are known; at runtime the live
//! cardinalities of every database, the set of built indexes, and the
//! iteration number are all available.  `OptimizeContext` bundles whatever
//! is known so the same reordering algorithm serves every stage.

use carac_storage::hasher::{FxHashMap, FxHashSet};
use carac_storage::{DbKind, RelId, StatsSnapshot};

/// Everything the cost model may consult.
#[derive(Debug, Clone, Default)]
pub struct OptimizeContext {
    /// Live (or ahead-of-time) cardinalities.
    pub stats: StatsSnapshot,
    /// `is_idb[rel]` — whether the relation is intensional.  Used to decide
    /// when the "unknown cardinality" fallback applies.
    pub is_idb: Vec<bool>,
    /// `(relation, column)` pairs that carry a hash index.
    pub indexed: FxHashSet<(RelId, usize)>,
    /// `(relation, columns)` sets that carry a composite hash index
    /// (columns ascending, the storage layer's canonical order).
    pub composite_indexed: FxHashSet<(RelId, Vec<usize>)>,
    /// Worker threads the execution layer will use (1 = serial).  The
    /// pipeline estimator discounts the driving scan by the achievable
    /// shard-parallel speedup.
    pub parallelism: usize,
    /// Magic predicates of a goal-directed (magic-set rewritten) program:
    /// demand guards the cost model scores as high-selectivity.
    pub magic: FxHashSet<RelId>,
    /// Interval facts from static analysis: for `(relation, column)` keys
    /// the inclusive `(min, max)` raw-value range that can ever flow into
    /// the column.  The cost model refines the selectivity of comparison
    /// constraints by the satisfying fraction of these ranges; an absent
    /// entry means the full value space (no refinement).
    pub intervals: FxHashMap<(RelId, usize), (u32, u32)>,
}

impl OptimizeContext {
    /// Creates a context from its parts.
    pub fn new(
        stats: StatsSnapshot,
        is_idb: Vec<bool>,
        indexed: FxHashSet<(RelId, usize)>,
    ) -> Self {
        OptimizeContext {
            stats,
            is_idb,
            indexed,
            ..OptimizeContext::default()
        }
    }

    /// A context carrying only statistics (no index information, nothing
    /// marked intensional).  Convenient in tests.
    pub fn stats_only(stats: StatsSnapshot) -> Self {
        OptimizeContext {
            stats,
            ..OptimizeContext::default()
        }
    }

    /// Adds composite-index knowledge.
    pub fn with_composites(mut self, composite: FxHashSet<(RelId, Vec<usize>)>) -> Self {
        self.composite_indexed = composite;
        self
    }

    /// Sets the worker-thread budget the estimator should account for.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Marks the magic (demand-guard) predicates of a rewritten program.
    pub fn with_magic(mut self, magic: FxHashSet<RelId>) -> Self {
        self.magic = magic;
        self
    }

    /// Attaches column-interval facts from static analysis.
    pub fn with_intervals(mut self, intervals: FxHashMap<(RelId, usize), (u32, u32)>) -> Self {
        self.intervals = intervals;
        self
    }

    /// The known `(min, max)` value range of `(rel, column)`, if static
    /// analysis narrowed it below the full value space.
    pub fn interval(&self, rel: RelId, column: usize) -> Option<(u32, u32)> {
        self.intervals.get(&(rel, column)).copied()
    }

    /// Whether `rel` is a magic predicate.
    pub fn is_magic(&self, rel: RelId) -> bool {
        self.magic.contains(&rel)
    }

    /// Whether `rel` is known to be intensional.
    pub fn is_idb(&self, rel: RelId) -> bool {
        self.is_idb.get(rel.index()).copied().unwrap_or(false)
    }

    /// Whether `(rel, column)` carries an index.
    pub fn has_index(&self, rel: RelId, column: usize) -> bool {
        self.indexed.contains(&(rel, column))
    }

    /// Whether a composite index of `rel` is fully covered by the given
    /// bound columns, i.e. one hash probe can resolve at least two of them.
    /// `bound_columns` need not be sorted.
    pub fn has_composite_covering(&self, rel: RelId, bound_columns: &[usize]) -> bool {
        self.composite_indexed
            .iter()
            .any(|(r, cols)| *r == rel && cols.iter().all(|c| bound_columns.contains(c)))
    }

    /// Observed cardinality of `(rel, db)`.
    pub fn cardinality(&self, rel: RelId, db: DbKind) -> usize {
        self.stats.cardinality(rel, db)
    }

    /// Observed per-probe selectivity of an indexed equality filter on
    /// `(rel, column)` in the derived database: `1 / distinct_values` of
    /// that column's own index, as reported by the row-pool stats, or
    /// `None` when the column carries no observed index (callers fall back
    /// to the configured constant factor).
    pub fn observed_selectivity(&self, rel: RelId, column: usize) -> Option<f64> {
        let distinct = self.stats.index_distinct(rel, column);
        (distinct > 0).then(|| 1.0 / distinct as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carac_storage::RelationStats;

    #[test]
    fn lookups_default_safely() {
        let ctx = OptimizeContext::default();
        assert!(!ctx.is_idb(RelId(3)));
        assert!(!ctx.has_index(RelId(3), 0));
        assert_eq!(ctx.cardinality(RelId(3), DbKind::Derived), 0);
    }

    #[test]
    fn carries_stats_and_indexes() {
        let stats = StatsSnapshot::from_stats(
            vec![RelationStats {
                derived: 10,
                delta_known: 2,
                ..Default::default()
            }],
            1,
        );
        let mut indexed = FxHashSet::default();
        indexed.insert((RelId(0), 1));
        let ctx = OptimizeContext::new(stats, vec![true], indexed);
        assert!(ctx.is_idb(RelId(0)));
        assert!(ctx.has_index(RelId(0), 1));
        assert!(!ctx.has_index(RelId(0), 0));
        assert_eq!(ctx.cardinality(RelId(0), DbKind::DeltaKnown), 2);
    }

    #[test]
    fn composite_coverage_requires_every_index_column_bound() {
        let mut composite = FxHashSet::default();
        composite.insert((RelId(0), vec![0, 1]));
        let ctx = OptimizeContext::default().with_composites(composite);
        assert!(ctx.has_composite_covering(RelId(0), &[1, 0]));
        assert!(ctx.has_composite_covering(RelId(0), &[0, 1, 2]));
        assert!(!ctx.has_composite_covering(RelId(0), &[0]));
        assert!(!ctx.has_composite_covering(RelId(1), &[0, 1]));
    }

    #[test]
    fn parallelism_clamps_to_serial() {
        assert_eq!(
            OptimizeContext::default().with_parallelism(0).parallelism,
            1
        );
        assert_eq!(
            OptimizeContext::default().with_parallelism(6).parallelism,
            6
        );
    }
}
