//! The lightweight cost model (paper §IV).
//!
//! Three inputs drive the join ordering: input relation cardinality, index
//! selection, and the selectivity of the join conditions.  Cardinalities are
//! read, never estimated across iterations; selectivity is a constant
//! reduction factor per additional bound constraint under an independence
//! assumption; a usable index further reduces the cost of probing an atom
//! whose join column is already bound.

use carac_datalog::VarId;
use carac_ir::QueryAtom;

use crate::config::OptimizerConfig;
use crate::context::OptimizeContext;

/// Cost estimate for placing `atom` next in the join pipeline, given the set
/// of variables already bound by the chosen prefix.
///
/// The returned value approximates the cardinality of the atom's
/// contribution once all applicable filters have been applied — smaller is
/// better.  A score of `0.0` means the atom is known to be empty, which the
/// greedy ordering exploits to short-circuit the whole subquery (the
/// `|VaFlowδ| = 0` example of §IV).
pub fn atom_score(
    atom: &QueryAtom,
    bound: &[bool],
    ctx: &OptimizeContext,
    config: &OptimizerConfig,
) -> f64 {
    let mut cardinality = ctx.cardinality(atom.rel, atom.db) as f64;

    // Ahead of time the derived database of an intensional relation is empty
    // even though it will not be at runtime; substitute the configured
    // default so AOT ordering does not treat recursive relations as free.
    if cardinality == 0.0 && ctx.is_idb(atom.rel) && atom.db == carac_storage::DbKind::Derived {
        if let Some(default) = config.unknown_idb_cardinality {
            cardinality = default;
        }
    }

    let mut score = cardinality;
    let mut usable_index = false;
    for (column, term) in atom.terms.iter().enumerate() {
        let constrained = match term {
            carac_datalog::Term::Const(_) => true,
            carac_datalog::Term::Var(v) => bound.get(v.index()).copied().unwrap_or(false),
        };
        if constrained {
            score *= config.selectivity_factor;
            if ctx.has_index(atom.rel, column) {
                usable_index = true;
            }
        }
    }
    // Repeated variables within the atom that are not yet bound still filter
    // (e.g. R(x, x)): each extra occurrence of the same unbound variable
    // contributes one selectivity factor.
    let mut seen: Vec<VarId> = Vec::new();
    for (_, var) in atom.variable_columns() {
        if bound.get(var.index()).copied().unwrap_or(false) {
            continue;
        }
        if seen.contains(&var) {
            score *= config.selectivity_factor;
        } else {
            seen.push(var);
        }
    }

    if usable_index {
        score *= config.index_benefit;
    }
    score
}

/// Whether `atom` shares at least one variable with the bound prefix or
/// carries a constant (i.e. placing it next does not create an unconstrained
/// cartesian product).
pub fn is_connected(atom: &QueryAtom, bound: &[bool], prefix_empty: bool) -> bool {
    if prefix_empty {
        return true;
    }
    if atom
        .variable_columns()
        .any(|(_, v)| bound.get(v.index()).copied().unwrap_or(false))
    {
        return true;
    }
    atom.constant_columns().next().is_some()
}

/// Estimated output cardinality of executing `atoms` in the given order —
/// the quantity the reordering tries to minimize step by step.  Used by
/// tests and by the ablation benchmarks to compare orders; execution never
/// relies on it.
pub fn estimate_pipeline(
    atoms: &[QueryAtom],
    num_vars: usize,
    ctx: &OptimizeContext,
    config: &OptimizerConfig,
) -> f64 {
    let mut bound = vec![false; num_vars];
    let mut total = 0.0;
    let mut intermediate = 1.0;
    for (i, atom) in atoms.iter().enumerate() {
        let score = atom_score(atom, &bound, ctx, config);
        let connected = is_connected(atom, &bound, i == 0);
        let growth = if connected { score } else { score.max(1.0) };
        intermediate *= growth.max(0.0);
        total += intermediate;
        for (_, v) in atom.variable_columns() {
            if let Some(slot) = bound.get_mut(v.index()) {
                *slot = true;
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use carac_datalog::{Term, VarId};
    use carac_storage::{DbKind, RelId, RelationStats, StatsSnapshot, Value};

    fn atom(rel: u32, db: DbKind, terms: Vec<Term>) -> QueryAtom {
        QueryAtom {
            rel: RelId(rel),
            db,
            terms,
        }
    }

    fn ctx_with(cards: &[(usize, usize)]) -> OptimizeContext {
        let stats = StatsSnapshot::from_stats(
            cards
                .iter()
                .map(|&(derived, delta)| RelationStats {
                    derived,
                    delta_known: delta,
                    delta_new: 0,
                })
                .collect(),
            1,
        );
        OptimizeContext::stats_only(stats)
    }

    #[test]
    fn bound_variables_reduce_score() {
        let ctx = ctx_with(&[(1000, 0)]);
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let unbound = atom_score(&a, &[false, false], &ctx, &config);
        let bound = atom_score(&a, &[true, false], &ctx, &config);
        assert!(bound < unbound);
        assert!((unbound - 1000.0).abs() < 1e-9);
        assert!((bound - 100.0).abs() < 1e-9);
    }

    #[test]
    fn constants_reduce_score() {
        let ctx = ctx_with(&[(1000, 0)]);
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Const(Value::int(3)), Term::Var(VarId(0))],
        );
        let score = atom_score(&a, &[false], &ctx, &config);
        assert!((score - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_delta_scores_zero() {
        let ctx = ctx_with(&[(1000, 0)]);
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::DeltaKnown,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        assert_eq!(atom_score(&a, &[false, false], &ctx, &config), 0.0);
    }

    #[test]
    fn index_benefit_applies_only_with_bound_column() {
        let mut ctx = ctx_with(&[(1000, 0)]);
        ctx.indexed.insert((RelId(0), 0));
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let without_binding = atom_score(&a, &[false, false], &ctx, &config);
        let with_binding = atom_score(&a, &[true, false], &ctx, &config);
        assert!((without_binding - 1000.0).abs() < 1e-9);
        assert!((with_binding - 50.0).abs() < 1e-9); // 1000 * 0.1 * 0.5
    }

    #[test]
    fn unknown_idb_cardinality_kicks_in_for_aot() {
        let mut ctx = ctx_with(&[(0, 0)]);
        ctx.is_idb = vec![true];
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let runtime = atom_score(&a, &[false, false], &ctx, &OptimizerConfig::default());
        let aot = atom_score(&a, &[false, false], &ctx, &OptimizerConfig::ahead_of_time());
        assert_eq!(runtime, 0.0);
        assert!(aot > 0.0);
    }

    #[test]
    fn repeated_unbound_variable_filters() {
        let ctx = ctx_with(&[(1000, 0)]);
        let config = OptimizerConfig::default();
        let diagonal = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(0))],
        );
        let score = atom_score(&diagonal, &[false], &ctx, &config);
        assert!((score - 100.0).abs() < 1e-9);
    }

    #[test]
    fn connectivity_detection() {
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        assert!(is_connected(&a, &[false, false], true));
        assert!(!is_connected(&a, &[false, false], false));
        assert!(is_connected(&a, &[true, false], false));
        let with_const = atom(
            0,
            DbKind::Derived,
            vec![Term::Const(Value::int(1)), Term::Var(VarId(1))],
        );
        assert!(is_connected(&with_const, &[false, false], false));
    }

    #[test]
    fn pipeline_estimate_prefers_small_intermediates() {
        // R(a,b) ⋈ S(b,c) with |R| = 10, |S| = 1000 — starting with R is
        // cheaper than starting with S.
        let ctx = ctx_with(&[(10, 0), (1000, 0)]);
        let config = OptimizerConfig::default();
        let r = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let s = atom(
            1,
            DbKind::Derived,
            vec![Term::Var(VarId(1)), Term::Var(VarId(2))],
        );
        let r_first = estimate_pipeline(&[r.clone(), s.clone()], 3, &ctx, &config);
        let s_first = estimate_pipeline(&[s, r], 3, &ctx, &config);
        assert!(r_first < s_first);
    }
}
