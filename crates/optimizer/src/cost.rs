//! The lightweight cost model (paper §IV).
//!
//! Three inputs drive the join ordering: input relation cardinality, index
//! selection, and the selectivity of the join conditions.  Cardinalities are
//! read, never estimated across iterations; selectivity is a constant
//! reduction factor per additional bound constraint under an independence
//! assumption; a usable index further reduces the cost of probing an atom
//! whose join column is already bound.

use carac_datalog::{Constraint, VarId};
use carac_ir::QueryAtom;
use carac_storage::CmpOp;

use crate::config::OptimizerConfig;
use crate::context::OptimizeContext;

/// Cost estimate for placing `atom` next in the join pipeline, given the set
/// of variables already bound by the chosen prefix.
///
/// The returned value approximates the cardinality of the atom's
/// contribution once all applicable filters have been applied — smaller is
/// better.  A score of `0.0` means the atom is known to be empty, which the
/// greedy ordering exploits to short-circuit the whole subquery (the
/// `|VaFlowδ| = 0` example of §IV).
pub fn atom_score(
    atom: &QueryAtom,
    bound: &[bool],
    ctx: &OptimizeContext,
    config: &OptimizerConfig,
) -> f64 {
    let mut cardinality = ctx.cardinality(atom.rel, atom.db) as f64;

    // Ahead of time the derived database of an intensional relation is empty
    // even though it will not be at runtime; substitute the configured
    // default so AOT ordering does not treat recursive relations as free.
    if cardinality == 0.0 && ctx.is_idb(atom.rel) && atom.db == carac_storage::DbKind::Derived {
        if let Some(default) = config.unknown_idb_cardinality {
            cardinality = default;
        }
    }

    let mut score = cardinality;
    let mut usable_index = false;
    // Observed selectivity from the row-pool stats: an equality probe on an
    // indexed column of the derived database matches `1 / distinct` of the
    // rows, where `distinct` is that column's *own* observed key count.
    // Applied once — for the most selective observed constrained column —
    // in place of the constant fallback factor; further constrained columns
    // keep the configured independence assumption.
    let mut observed: Option<f64> = None;
    let mut constrained_columns: Vec<usize> = Vec::new();
    for (column, term) in atom.terms.iter().enumerate() {
        let constrained = match term {
            carac_datalog::Term::Const(_) => true,
            carac_datalog::Term::Var(v) => bound.get(v.index()).copied().unwrap_or(false),
        };
        if constrained {
            if atom.db == carac_storage::DbKind::Derived {
                if let Some(selectivity) = ctx.observed_selectivity(atom.rel, column) {
                    observed = Some(observed.map_or(selectivity, |s: f64| s.min(selectivity)));
                }
            }
            constrained_columns.push(column);
            if ctx.has_index(atom.rel, column) {
                usable_index = true;
            }
        }
    }
    // One constant factor per constrained column, with the best observed
    // per-column selectivity substituted for one of them when available.
    for i in 0..constrained_columns.len() {
        score *= if i == 0 {
            observed.unwrap_or(config.selectivity_factor)
        } else {
            config.selectivity_factor
        };
    }
    // Repeated variables within the atom that are not yet bound still filter
    // (e.g. R(x, x)): each extra occurrence of the same unbound variable
    // contributes one selectivity factor.
    let mut seen: Vec<VarId> = Vec::new();
    for (_, var) in atom.variable_columns() {
        if bound.get(var.index()).copied().unwrap_or(false) {
            continue;
        }
        if seen.contains(&var) {
            score *= config.selectivity_factor;
        } else {
            seen.push(var);
        }
    }

    // A composite index covering two or more bound columns resolves them in
    // one hash probe and beats any single-column access path.
    if constrained_columns.len() >= 2 && ctx.has_composite_covering(atom.rel, &constrained_columns)
    {
        score *= config.composite_index_benefit;
    } else if usable_index {
        score *= config.index_benefit;
    }
    // Magic predicates are demand guards: tiny by construction and the
    // reason the adorned rules are cheap at all, so keep them early in any
    // reordering the adaptive optimizer applies.
    if ctx.is_magic(atom.rel) {
        score *= config.magic_selectivity;
    }
    score
}

/// The multiplicative selectivity factor contributed by the comparison
/// constraints that become *newly decidable* by placing `atom` next: every
/// constraint whose variables are all covered by `bound` plus the atom's own
/// variables — but were not all bound before — filters the atom's
/// contribution.  Equality constraints count like an equality probe
/// ([`OptimizerConfig::selectivity_factor`]); inequalities use the milder
/// [`OptimizerConfig::comparison_selectivity`].
///
/// [`atom_score`] times this factor is the full per-step estimate the
/// greedy ordering uses ([`atom_score_with_constraints`]).
pub fn constraint_factor(
    atom: &QueryAtom,
    bound: &[bool],
    constraints: &[Constraint],
    config: &OptimizerConfig,
) -> f64 {
    if constraints.is_empty() {
        return 1.0;
    }
    let mut factor = 1.0;
    for constraint in constraints {
        let mut any_new = false;
        let mut all_covered = true;
        for var in constraint.variables() {
            let was_bound = bound.get(var.index()).copied().unwrap_or(false);
            if !was_bound {
                if atom.variable_columns().any(|(_, v)| v == var) {
                    any_new = true;
                } else {
                    all_covered = false;
                }
            }
        }
        if any_new && all_covered {
            factor *= match constraint.op {
                CmpOp::Eq => config.selectivity_factor,
                _ => config.comparison_selectivity,
            };
        }
    }
    factor
}

/// [`constraint_factor`] refined by the column-interval facts of static
/// analysis: when an operand of a newly-decidable inequality maps to one of
/// the atom's columns with a known `(min, max)` range, the constraint's
/// selectivity becomes the fraction of that range satisfying the
/// comparison (under a uniform-and-independent assumption) instead of the
/// constant [`OptimizerConfig::comparison_selectivity`].  A statically-true
/// comparison thus stops discounting the atom, and a nearly-false one
/// scores it close to empty.  Without interval facts (the default — the
/// context's map is empty) this is exactly [`constraint_factor`].
pub fn constraint_factor_refined(
    atom: &QueryAtom,
    bound: &[bool],
    constraints: &[Constraint],
    ctx: &OptimizeContext,
    config: &OptimizerConfig,
) -> f64 {
    if constraints.is_empty() {
        return 1.0;
    }
    let mut factor = 1.0;
    for constraint in constraints {
        let mut any_new = false;
        let mut all_covered = true;
        for var in constraint.variables() {
            let was_bound = bound.get(var.index()).copied().unwrap_or(false);
            if !was_bound {
                if atom.variable_columns().any(|(_, v)| v == var) {
                    any_new = true;
                } else {
                    all_covered = false;
                }
            }
        }
        if any_new && all_covered {
            let fallback = match constraint.op {
                CmpOp::Eq => config.selectivity_factor,
                _ => config.comparison_selectivity,
            };
            factor *= interval_fraction(atom, constraint, ctx).unwrap_or(fallback);
        }
    }
    factor
}

/// The satisfying fraction of a comparison given the operands' known value
/// ranges, or `None` when no operand carries an interval fact (equalities
/// and `!=` always defer to the configured constants — interval width says
/// little about point selectivity).
fn interval_fraction(
    atom: &QueryAtom,
    constraint: &Constraint,
    ctx: &OptimizeContext,
) -> Option<f64> {
    if matches!(constraint.op, CmpOp::Eq | CmpOp::Ne) {
        return None;
    }
    // Resolve each operand to a range: constants are points; variables map
    // through the atom's columns to the analyzed interval.  An operand
    // without a known range spans the full value space — sound, and only
    // consulted when the *other* operand is genuinely narrowed.
    let mut any_hint = false;
    let mut resolve = |term: carac_datalog::Term| -> (f64, f64) {
        match term {
            carac_datalog::Term::Const(c) => {
                let p = c.raw() as f64;
                (p, p)
            }
            carac_datalog::Term::Var(v) => {
                let hint = atom
                    .terms
                    .iter()
                    .position(|t| *t == carac_datalog::Term::Var(v))
                    .and_then(|col| ctx.interval(atom.rel, col));
                match hint {
                    Some((lo, hi)) => {
                        any_hint = true;
                        (lo as f64, hi as f64)
                    }
                    None => (0.0, u32::MAX as f64),
                }
            }
        }
    };
    let a = resolve(constraint.lhs);
    let b = resolve(constraint.rhs);
    if !any_hint {
        return None;
    }
    let p = match constraint.op {
        CmpOp::Lt | CmpOp::Le => prob_lt(a, b),
        CmpOp::Gt | CmpOp::Ge => prob_lt(b, a),
        CmpOp::Eq | CmpOp::Ne => unreachable!("handled above"),
    };
    Some(p.clamp(0.0, 1.0))
}

/// `P(x < y)` for `x ~ U[a]`, `y ~ U[b]` (continuous approximation; `<=`
/// is treated identically — one point of a continuous range has measure
/// zero, and the estimate only steers ordering).
fn prob_lt(a: (f64, f64), b: (f64, f64)) -> f64 {
    let (a1, a2) = a;
    let (b1, b2) = b;
    let wa = a2 - a1;
    let wb = b2 - b1;
    if wa <= 0.0 && wb <= 0.0 {
        return if a1 < b1 { 1.0 } else { 0.0 };
    }
    if a2 <= b1 {
        return 1.0;
    }
    if a1 >= b2 {
        return 0.0;
    }
    if wa <= 0.0 {
        // Point x = a1 strictly inside [b1, b2): the fraction of y above it.
        return ((b2 - a1) / wb).clamp(0.0, 1.0);
    }
    if wb <= 0.0 {
        // Point y = b1 strictly inside [a1, a2): the fraction of x below it.
        return ((b1 - a1) / wa).clamp(0.0, 1.0);
    }
    // E_y[F_x(y)]: integrate the CDF of x over [b1, b2], piecewise — the
    // overlap ramp plus the region where y clears all of x.
    let lo = b1.max(a1);
    let hi = b2.min(a2);
    let mut integral = 0.0;
    if hi > lo {
        integral += ((hi - a1).powi(2) - (lo - a1).powi(2)) / (2.0 * wa);
    }
    let above = b1.max(a2);
    if b2 > above {
        integral += b2 - above;
    }
    (integral / wb).clamp(0.0, 1.0)
}

/// [`atom_score`] with the newly-decidable comparison constraints folded in
/// as selectivity — the estimate the join ordering actually minimizes when
/// the query carries constraints.  Comparison selectivities are refined by
/// the context's column-interval facts when present
/// ([`constraint_factor_refined`]).
pub fn atom_score_with_constraints(
    atom: &QueryAtom,
    bound: &[bool],
    constraints: &[Constraint],
    ctx: &OptimizeContext,
    config: &OptimizerConfig,
) -> f64 {
    atom_score(atom, bound, ctx, config)
        * constraint_factor_refined(atom, bound, constraints, ctx, config)
}

/// Whether `atom` shares at least one variable with the bound prefix or
/// carries a constant (i.e. placing it next does not create an unconstrained
/// cartesian product).
pub fn is_connected(atom: &QueryAtom, bound: &[bool], prefix_empty: bool) -> bool {
    if prefix_empty {
        return true;
    }
    if atom
        .variable_columns()
        .any(|(_, v)| bound.get(v.index()).copied().unwrap_or(false))
    {
        return true;
    }
    atom.constant_columns().next().is_some()
}

/// Estimated output cardinality of executing `atoms` in the given order —
/// the quantity the reordering tries to minimize step by step.  Used by
/// tests and by the ablation benchmarks to compare orders; execution never
/// relies on it.
///
/// When the context reports `parallelism > 1` the estimate is divided by
/// the achievable shard-parallel speedup: the execution layer partitions the
/// driving atom's rows across workers, so the whole pipeline scales, minus
/// the configured merge overhead.  Fan-out never changes the *relative*
/// order of two pipelines over the same atoms (it is a constant factor),
/// but it lets callers comparing parallel plans against serial ones (e.g.
/// the bench harness) reason in one currency.
pub fn estimate_pipeline(
    atoms: &[QueryAtom],
    num_vars: usize,
    ctx: &OptimizeContext,
    config: &OptimizerConfig,
) -> f64 {
    let mut bound = vec![false; num_vars];
    let mut total = 0.0;
    let mut intermediate = 1.0;
    for (i, atom) in atoms.iter().enumerate() {
        let score = atom_score(atom, &bound, ctx, config);
        let connected = is_connected(atom, &bound, i == 0);
        let growth = if connected { score } else { score.max(1.0) };
        intermediate *= growth.max(0.0);
        total += intermediate;
        for (_, v) in atom.variable_columns() {
            if let Some(slot) = bound.get_mut(v.index()) {
                *slot = true;
            }
        }
    }
    total / parallel_speedup(ctx.parallelism, config)
}

/// Modeled speedup of fan-out over `parallelism` shards: ideal scaling
/// discounted by the merge overhead, never below 1.
pub fn parallel_speedup(parallelism: usize, config: &OptimizerConfig) -> f64 {
    let p = parallelism.max(1) as f64;
    (1.0 + (p - 1.0) * (1.0 - config.parallel_merge_overhead)).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use carac_datalog::{Term, VarId};
    use carac_storage::{DbKind, RelId, RelationStats, StatsSnapshot, Value};

    fn atom(rel: u32, db: DbKind, terms: Vec<Term>) -> QueryAtom {
        QueryAtom {
            rel: RelId(rel),
            db,
            terms,
        }
    }

    fn ctx_with(cards: &[(usize, usize)]) -> OptimizeContext {
        let stats = StatsSnapshot::from_stats(
            cards
                .iter()
                .map(|&(derived, delta)| RelationStats {
                    derived,
                    delta_known: delta,
                    ..Default::default()
                })
                .collect(),
            1,
        );
        OptimizeContext::stats_only(stats)
    }

    #[test]
    fn bound_variables_reduce_score() {
        let ctx = ctx_with(&[(1000, 0)]);
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let unbound = atom_score(&a, &[false, false], &ctx, &config);
        let bound = atom_score(&a, &[true, false], &ctx, &config);
        assert!(bound < unbound);
        assert!((unbound - 1000.0).abs() < 1e-9);
        assert!((bound - 100.0).abs() < 1e-9);
    }

    #[test]
    fn constants_reduce_score() {
        let ctx = ctx_with(&[(1000, 0)]);
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Const(Value::int(3)), Term::Var(VarId(0))],
        );
        let score = atom_score(&a, &[false], &ctx, &config);
        assert!((score - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_delta_scores_zero() {
        let ctx = ctx_with(&[(1000, 0)]);
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::DeltaKnown,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        assert_eq!(atom_score(&a, &[false, false], &ctx, &config), 0.0);
    }

    #[test]
    fn index_benefit_applies_only_with_bound_column() {
        let mut ctx = ctx_with(&[(1000, 0)]);
        ctx.indexed.insert((RelId(0), 0));
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let without_binding = atom_score(&a, &[false, false], &ctx, &config);
        let with_binding = atom_score(&a, &[true, false], &ctx, &config);
        assert!((without_binding - 1000.0).abs() < 1e-9);
        assert!((with_binding - 50.0).abs() < 1e-9); // 1000 * 0.1 * 0.5
    }

    #[test]
    fn unknown_idb_cardinality_kicks_in_for_aot() {
        let mut ctx = ctx_with(&[(0, 0)]);
        ctx.is_idb = vec![true];
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let runtime = atom_score(&a, &[false, false], &ctx, &OptimizerConfig::default());
        let aot = atom_score(&a, &[false, false], &ctx, &OptimizerConfig::ahead_of_time());
        assert_eq!(runtime, 0.0);
        assert!(aot > 0.0);
    }

    #[test]
    fn repeated_unbound_variable_filters() {
        let ctx = ctx_with(&[(1000, 0)]);
        let config = OptimizerConfig::default();
        let diagonal = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(0))],
        );
        let score = atom_score(&diagonal, &[false], &ctx, &config);
        assert!((score - 100.0).abs() < 1e-9);
    }

    #[test]
    fn observed_selectivity_replaces_the_constant_factor() {
        // 1000 rows, 200 distinct join keys observed by the pool's index on
        // column 0: an indexed probe is expected to match 1000/200 = 5
        // rows, so the observed factor (1/200) replaces the constant 0.1
        // for the bound column; the index benefit still applies.
        let stats = StatsSnapshot::from_stats(
            vec![RelationStats {
                derived: 1000,
                ..Default::default()
            }],
            1,
        )
        .with_index_distinct(RelId(0), 0, 200);
        let mut ctx = OptimizeContext::stats_only(stats);
        ctx.indexed.insert((RelId(0), 0));
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let score = atom_score(&a, &[true, false], &ctx, &config);
        // 1000 * (1/200) * 0.5 (index benefit) = 2.5, vs the constant-factor
        // fallback 1000 * 0.1 * 0.5 = 50.
        assert!((score - 2.5).abs() < 1e-9);

        // Delta atoms never use the derived-database observation.
        let delta = atom(
            0,
            DbKind::DeltaKnown,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let delta_score = atom_score(&delta, &[true, false], &ctx, &config);
        assert_eq!(delta_score, 0.0); // delta cardinality is 0 here

        // Without an index on the bound column the constant factor stays.
        let mut unindexed_ctx = ctx.clone();
        unindexed_ctx.indexed.clear();
        unindexed_ctx.stats = StatsSnapshot::from_stats(
            vec![RelationStats {
                derived: 1000,
                ..Default::default()
            }],
            1,
        );
        let fallback = atom_score(&a, &[true, false], &unindexed_ctx, &config);
        assert!((fallback - 100.0).abs() < 1e-9);
    }

    #[test]
    fn observed_selectivity_is_per_column() {
        // Skewed relation: column 0 has 10 distinct values, column 1 has
        // 100_000.  The observation applied must be the probed column's
        // own, never another column's (which would misestimate by 10_000x).
        let stats = StatsSnapshot::from_stats(
            vec![RelationStats {
                derived: 100_000,
                ..Default::default()
            }],
            1,
        )
        .with_index_distinct(RelId(0), 0, 10)
        .with_index_distinct(RelId(0), 1, 100_000);
        let mut ctx = OptimizeContext::stats_only(stats);
        ctx.indexed.insert((RelId(0), 0));
        ctx.indexed.insert((RelId(0), 1));
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        // Only column 0 bound: expected matches 100_000/10 = 10_000,
        // times the index benefit.
        let low_distinct = atom_score(&a, &[true, false], &ctx, &config);
        assert!((low_distinct - 100_000.0 / 10.0 * 0.5).abs() < 1e-6);
        // Only column 1 bound: expected matches 100_000/100_000 = 1.
        let high_distinct = atom_score(&a, &[false, true], &ctx, &config);
        assert!((high_distinct - 1.0 * 0.5).abs() < 1e-6);
        assert!(high_distinct < low_distinct);
    }

    #[test]
    fn constraint_factor_counts_newly_decidable_constraints() {
        use carac_datalog::Constraint;
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        // x < 10 over a variable this atom binds: newly decidable.
        let lt = Constraint {
            op: CmpOp::Lt,
            lhs: Term::Var(VarId(0)),
            rhs: Term::Const(Value::int(10)),
        };
        let factor = constraint_factor(&a, &[false, false], &[lt], &config);
        assert!((factor - config.comparison_selectivity).abs() < 1e-9);
        // Already fully bound: counted at an earlier step, not here.
        let factor = constraint_factor(&a, &[true, true], &[lt], &config);
        assert!((factor - 1.0).abs() < 1e-9);
        // Involves a variable this atom does not bind: not decidable yet.
        let cross = Constraint {
            op: CmpOp::Lt,
            lhs: Term::Var(VarId(0)),
            rhs: Term::Var(VarId(5)),
        };
        let factor = constraint_factor(&a, &[false, false], &[cross], &config);
        assert!((factor - 1.0).abs() < 1e-9);
        // Equality constraints use the sharper equality selectivity.
        let eq = Constraint {
            op: CmpOp::Eq,
            lhs: Term::Var(VarId(1)),
            rhs: Term::Const(Value::int(3)),
        };
        let factor = constraint_factor(&a, &[false, false], &[lt, eq], &config);
        let expected = config.comparison_selectivity * config.selectivity_factor;
        assert!((factor - expected).abs() < 1e-9);
        // The full scoring entry point folds the factor in.
        let ctx = ctx_with(&[(1000, 0)]);
        let scored = atom_score_with_constraints(&a, &[false, false], &[lt], &ctx, &config);
        let plain = atom_score(&a, &[false, false], &ctx, &config);
        assert!((scored - plain * config.comparison_selectivity).abs() < 1e-9);
    }

    #[test]
    fn interval_hints_refine_comparison_selectivity() {
        use carac_datalog::Constraint;
        use carac_storage::hasher::FxHashMap;
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let lt = |k: u32| Constraint {
            op: CmpOp::Lt,
            lhs: Term::Var(VarId(0)),
            rhs: Term::Const(Value::int(k)),
        };
        // Column 0 is known to hold values in [0, 99].
        let mut intervals: FxHashMap<(RelId, usize), (u32, u32)> = FxHashMap::default();
        intervals.insert((RelId(0), 0), (0, 99));
        let ctx = ctx_with(&[(1000, 0)]).with_intervals(intervals);

        // `x < 1000` is statically true on [0, 99]: no discount at all.
        let f = constraint_factor_refined(&a, &[false, false], &[lt(1000)], &ctx, &config);
        assert!((f - 1.0).abs() < 1e-9);
        // `x < 50` keeps about half the range.
        let f = constraint_factor_refined(&a, &[false, false], &[lt(50)], &ctx, &config);
        assert!((f - 0.5).abs() < 0.02, "got {f}");
        // A nearly-false comparison scores close to empty.
        let f = constraint_factor_refined(&a, &[false, false], &[lt(1)], &ctx, &config);
        assert!(f < 0.05, "got {f}");
        // Gt mirrors Lt.
        let gt = Constraint {
            op: CmpOp::Gt,
            lhs: Term::Var(VarId(0)),
            rhs: Term::Const(Value::int(1000)),
        };
        let f = constraint_factor_refined(&a, &[false, false], &[gt], &ctx, &config);
        assert!(f < 1e-9);

        // Without interval facts the constant fallback is bit-identical to
        // the unrefined factor.
        let plain_ctx = ctx_with(&[(1000, 0)]);
        let refined =
            constraint_factor_refined(&a, &[false, false], &[lt(50)], &plain_ctx, &config);
        let constant = constraint_factor(&a, &[false, false], &[lt(50)], &config);
        assert_eq!(refined, constant);
        // Equalities always defer to the configured constant.
        let eq = Constraint {
            op: CmpOp::Eq,
            lhs: Term::Var(VarId(0)),
            rhs: Term::Const(Value::int(3)),
        };
        let f = constraint_factor_refined(&a, &[false, false], &[eq], &ctx, &config);
        assert!((f - config.selectivity_factor).abs() < 1e-9);
    }

    #[test]
    fn prob_lt_boundaries() {
        // Disjoint ranges decide fully.
        assert_eq!(prob_lt((0.0, 10.0), (20.0, 30.0)), 1.0);
        assert_eq!(prob_lt((20.0, 30.0), (0.0, 10.0)), 0.0);
        // Identical ranges: half the pairs.
        assert!((prob_lt((0.0, 10.0), (0.0, 10.0)) - 0.5).abs() < 1e-9);
        // Point vs range.
        assert!((prob_lt((5.0, 5.0), (0.0, 10.0)) - 0.5).abs() < 1e-9);
        assert!((prob_lt((0.0, 10.0), (5.0, 5.0)) - 0.5).abs() < 1e-9);
        // Point vs point.
        assert_eq!(prob_lt((1.0, 1.0), (2.0, 2.0)), 1.0);
        assert_eq!(prob_lt((2.0, 2.0), (2.0, 2.0)), 0.0);
        // Partial overlap stays within (0, 1).
        let p = prob_lt((0.0, 10.0), (5.0, 15.0));
        assert!(p > 0.5 && p < 1.0);
    }

    #[test]
    fn connectivity_detection() {
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        assert!(is_connected(&a, &[false, false], true));
        assert!(!is_connected(&a, &[false, false], false));
        assert!(is_connected(&a, &[true, false], false));
        let with_const = atom(
            0,
            DbKind::Derived,
            vec![Term::Const(Value::int(1)), Term::Var(VarId(1))],
        );
        assert!(is_connected(&with_const, &[false, false], false));
    }

    #[test]
    fn composite_index_beats_single_column_index() {
        let mut ctx = ctx_with(&[(1000, 0)]);
        ctx.indexed.insert((RelId(0), 0));
        ctx.indexed.insert((RelId(0), 1));
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let single_only = atom_score(&a, &[true, true], &ctx, &config);
        ctx.composite_indexed.insert((RelId(0), vec![0, 1]));
        let with_composite = atom_score(&a, &[true, true], &ctx, &config);
        assert!(with_composite < single_only);
        // 1000 * 0.1 * 0.1 * 0.25 = 2.5 vs 1000 * 0.1 * 0.1 * 0.5 = 5.
        assert!((with_composite - 2.5).abs() < 1e-9);
        assert!((single_only - 5.0).abs() < 1e-9);
    }

    #[test]
    fn composite_benefit_needs_full_coverage() {
        let mut ctx = ctx_with(&[(1000, 0)]);
        ctx.composite_indexed.insert((RelId(0), vec![0, 1]));
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        // Only column 0 bound: the two-column index cannot be probed.
        let partial = atom_score(&a, &[true, false], &ctx, &config);
        assert!((partial - 100.0).abs() < 1e-9);
    }

    #[test]
    fn shard_fanout_discounts_the_pipeline() {
        let ctx = ctx_with(&[(10_000, 0)]);
        let config = OptimizerConfig::default();
        let a = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let serial = estimate_pipeline(std::slice::from_ref(&a), 2, &ctx, &config);
        let parallel_ctx = ctx.clone().with_parallelism(4);
        let parallel = estimate_pipeline(&[a], 2, &parallel_ctx, &config);
        assert!(parallel < serial);
        // Overhead keeps the modeled speedup below ideal.
        assert!(parallel > serial / 4.0);
        let speedup = parallel_speedup(4, &config);
        assert!((serial / parallel - speedup).abs() < 1e-9);
        assert_eq!(parallel_speedup(1, &config), 1.0);
    }

    #[test]
    fn pipeline_estimate_prefers_small_intermediates() {
        // R(a,b) ⋈ S(b,c) with |R| = 10, |S| = 1000 — starting with R is
        // cheaper than starting with S.
        let ctx = ctx_with(&[(10, 0), (1000, 0)]);
        let config = OptimizerConfig::default();
        let r = atom(
            0,
            DbKind::Derived,
            vec![Term::Var(VarId(0)), Term::Var(VarId(1))],
        );
        let s = atom(
            1,
            DbKind::Derived,
            vec![Term::Var(VarId(1)), Term::Var(VarId(2))],
        );
        let r_first = estimate_pipeline(&[r.clone(), s.clone()], 3, &ctx, &config);
        let s_first = estimate_pipeline(&[s, r], 3, &ctx, &config);
        assert!(r_first < s_first);
    }
}
