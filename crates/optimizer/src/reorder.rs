//! Join-order selection.
//!
//! Two algorithms are provided, matching the two stages at which the paper
//! applies its optimization:
//!
//! * [`greedy_order`] — the runtime algorithm: atoms are placed one at a
//!   time, each step choosing the connected atom with the smallest estimated
//!   contribution given the variables already bound.  Reading live
//!   cardinalities means an empty delta relation is placed first and
//!   short-circuits the subquery, exactly the behaviour described in §IV.
//! * [`sort_order`] — the ahead-of-time ("macro") algorithm: a stable sort of
//!   the atoms by their stand-alone estimate.  Stable sorting of
//!   already-sorted input is linear (the paper leans on Timsort for the same
//!   property), which is why presorting at compile time still pays off when
//!   the online optimizer resorts later.

use carac_ir::ConjunctiveQuery;

use crate::config::OptimizerConfig;
use crate::context::OptimizeContext;
use crate::cost::{atom_score_with_constraints, is_connected};

/// Greedy runtime join ordering.  Returns a permutation of
/// `0..query.atoms.len()` (indices into the *current* atom order).
pub fn greedy_order(
    query: &ConjunctiveQuery,
    ctx: &OptimizeContext,
    config: &OptimizerConfig,
) -> Vec<usize> {
    let n = query.atoms.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let mut bound = vec![false; query.num_vars];
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);

    while !remaining.is_empty() {
        let prefix_empty = order.is_empty();
        let mut best_pos = 0;
        let mut best_score = f64::INFINITY;
        for (pos, &atom_idx) in remaining.iter().enumerate() {
            let atom = &query.atoms[atom_idx];
            let mut score =
                atom_score_with_constraints(atom, &bound, &query.constraints, ctx, config);
            if !is_connected(atom, &bound, prefix_empty) {
                score = score * config.cartesian_penalty + config.cartesian_penalty;
            }
            if score < best_score {
                best_score = score;
                best_pos = pos;
            }
        }
        let atom_idx = remaining.remove(best_pos);
        for (_, v) in query.atoms[atom_idx].variable_columns() {
            if let Some(slot) = bound.get_mut(v.index()) {
                *slot = true;
            }
        }
        order.push(atom_idx);
    }
    order
}

/// Stable-sort ("macro") join ordering: every atom is scored in isolation
/// (no binding context) and the atoms are stable-sorted by ascending score.
pub fn sort_order(
    query: &ConjunctiveQuery,
    ctx: &OptimizeContext,
    config: &OptimizerConfig,
) -> Vec<usize> {
    let bound = vec![false; query.num_vars];
    let mut scored: Vec<(usize, f64)> = query
        .atoms
        .iter()
        .enumerate()
        .map(|(i, atom)| {
            (
                i,
                atom_score_with_constraints(atom, &bound, &query.constraints, ctx, config),
            )
        })
        .collect();
    // Stable sort keeps the user's order among equal estimates.
    scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().map(|(i, _)| i).collect()
}

/// Applies an ordering algorithm and returns the reordered query.  The
/// identity permutation short-circuits to a cheap clone.
pub fn reorder_query(
    query: &ConjunctiveQuery,
    ctx: &OptimizeContext,
    config: &OptimizerConfig,
    algorithm: ReorderAlgorithm,
) -> ConjunctiveQuery {
    let order = match algorithm {
        ReorderAlgorithm::Greedy => greedy_order(query, ctx, config),
        ReorderAlgorithm::Sort => sort_order(query, ctx, config),
    };
    if order.iter().enumerate().all(|(i, &o)| i == o) {
        query.clone()
    } else {
        query.with_order(&order)
    }
}

/// Which reordering algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReorderAlgorithm {
    /// Binding-aware greedy ordering (runtime).
    Greedy,
    /// Stand-alone-score stable sort (ahead of time).
    Sort,
}

#[cfg(test)]
mod tests {
    use super::*;
    use carac_datalog::ProgramBuilder;
    use carac_storage::{DbKind, RelationStats, StatsSnapshot};

    /// Build the paper's running example: the second VAlias rule of CSPA,
    /// `VAlias(v1, v2) :- VaFlow(v0, v2), VaFlow(v3, v1), MAlias(v3, v0).`
    fn valias_query(delta_atom: usize) -> (carac_datalog::Program, ConjunctiveQuery) {
        let mut b = ProgramBuilder::new();
        b.relation("VaFlow", 2);
        b.relation("MAlias", 2);
        b.relation("VAlias", 2);
        b.rule("VAlias", &["v1", "v2"])
            .when("VaFlow", &["v0", "v2"])
            .when("VaFlow", &["v3", "v1"])
            .when("MAlias", &["v3", "v0"])
            .end();
        let p = b.build().unwrap();
        let q = carac_ir::ConjunctiveQuery::from_rule(&p.rules()[0], Some(delta_atom));
        (p, q)
    }

    fn ctx(vaflow: (usize, usize), malias: (usize, usize)) -> OptimizeContext {
        // RelId 0 = VaFlow, 1 = MAlias, 2 = VAlias.
        OptimizeContext::stats_only(StatsSnapshot::from_stats(
            vec![
                RelationStats {
                    derived: vaflow.0,
                    delta_known: vaflow.1,
                    ..Default::default()
                },
                RelationStats {
                    derived: malias.0,
                    delta_known: malias.1,
                    ..Default::default()
                },
                RelationStats::default(),
            ],
            1,
        ))
    }

    #[test]
    fn greedy_avoids_the_cartesian_blowup_of_the_papers_first_iteration() {
        // First-iteration cardinalities from §IV: |VaFlowδ| = 541 096,
        // |VaFlow⋆| = 903 752, |MAlias⋆| = 541 096.  The delta atom is the
        // second VaFlow atom (atom index 1).  The unoptimized order joins
        // VaFlow⋆ × VaFlowδ first — a cartesian product.  The optimizer must
        // instead interleave MAlias⋆ so every step joins on a bound variable.
        let (_, q) = valias_query(1);
        let ctx = ctx((903_752, 541_096), (541_096, 0));
        let order = greedy_order(&q, &ctx, &OptimizerConfig::default());
        let reordered = q.with_order(&order);
        assert!(
            !reordered.has_cartesian_product(),
            "optimized order {order:?} must avoid the cartesian product"
        );
        // The unoptimized order does have one.
        assert!(q.has_cartesian_product());
    }

    #[test]
    fn greedy_puts_an_empty_delta_first() {
        // Seventh-iteration cardinalities from §IV: |VaFlowδ| = 0,
        // |VaFlow⋆| = 1 362 950, |MAlias⋆| = 79 514 436.  With an empty delta
        // the whole subquery is empty, so the optimizer should lead with the
        // delta atom to short-circuit.
        let (_, q) = valias_query(1);
        let ctx = ctx((1_362_950, 0), (79_514_436, 0));
        let order = greedy_order(&q, &ctx, &OptimizerConfig::default());
        assert_eq!(order[0], 1, "empty delta atom should come first");
    }

    #[test]
    fn sort_order_is_stable_for_equal_scores() {
        let (_, q) = valias_query(0);
        // All cardinalities equal → scores tie → original order preserved.
        let ctx = ctx((100, 100), (100, 100));
        let order = sort_order(&q, &ctx, &OptimizerConfig::default());
        // Atom 0 reads the delta (smaller or equal), so it may sort first,
        // but among the two derived VaFlow/MAlias atoms with identical
        // scores the original relative order must be preserved.
        let pos_vaflow_derived = order.iter().position(|&i| i == 1).unwrap();
        let pos_malias = order.iter().position(|&i| i == 2).unwrap();
        assert!(pos_vaflow_derived < pos_malias);
    }

    #[test]
    fn sort_order_prefers_smaller_relations() {
        let (_, q) = valias_query(0);
        // MAlias tiny, VaFlow huge → MAlias should sort before the derived
        // VaFlow atom.
        let ctx = ctx((1_000_000, 10), (5, 0));
        let order = sort_order(&q, &ctx, &OptimizerConfig::default());
        let pos_malias = order.iter().position(|&i| i == 2).unwrap();
        let pos_vaflow_derived = order.iter().position(|&i| i == 1).unwrap();
        assert!(pos_malias < pos_vaflow_derived);
    }

    #[test]
    fn reorder_query_identity_is_cheap_and_correct() {
        let (_, q) = valias_query(0);
        let ctx = ctx((10, 10), (10, 10));
        let reordered = reorder_query(
            &q,
            &ctx,
            &OptimizerConfig::default(),
            ReorderAlgorithm::Greedy,
        );
        // Whatever the order, the atom multiset is unchanged.
        assert_eq!(reordered.atoms.len(), q.atoms.len());
        for atom in &q.atoms {
            assert!(reordered.atoms.contains(atom));
        }
    }

    #[test]
    fn single_atom_queries_are_untouched() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Copy", 2);
        b.rule("Copy", &["x", "y"]).when("Edge", &["x", "y"]).end();
        let p = b.build().unwrap();
        let q = carac_ir::ConjunctiveQuery::from_rule(&p.rules()[0], Some(0));
        let order = greedy_order(&q, &OptimizeContext::default(), &OptimizerConfig::default());
        assert_eq!(order, vec![0]);
    }

    #[test]
    fn greedy_prefers_the_composite_indexed_probe() {
        // After A and B have bound both px and py, the equally-sized Aux and
        // Sg atoms tie on cardinality — but Sg carries a composite index
        // over both bound columns, so the greedy order probes it first even
        // though Aux comes first in the written order.
        let mut b = ProgramBuilder::new();
        b.relation("A", 2);
        b.relation("B", 2);
        b.relation("Aux", 2);
        b.relation("Sg", 2);
        b.relation("Out", 1);
        b.rule("Out", &["x"])
            .when("A", &["px", "x"])
            .when("B", &["py", "x"])
            .when("Aux", &["px", "py"])
            .when("Sg", &["px", "py"])
            .end();
        let p = b.build().unwrap();
        let q = carac_ir::ConjunctiveQuery::from_rule(&p.rules()[0], None);
        let sg = p.relation_by_name("Sg").unwrap();
        let aux = p.relation_by_name("Aux").unwrap();
        let stats = || {
            StatsSnapshot::from_stats(
                vec![
                    RelationStats {
                        derived: 10,
                        delta_known: 0,
                        ..Default::default()
                    },
                    RelationStats {
                        derived: 50,
                        delta_known: 0,
                        ..Default::default()
                    },
                    RelationStats {
                        derived: 1_000,
                        delta_known: 0,
                        ..Default::default()
                    },
                    RelationStats {
                        derived: 1_000,
                        delta_known: 0,
                        ..Default::default()
                    },
                    RelationStats::default(),
                ],
                1,
            )
        };
        let positions = |order: &[usize]| {
            (
                order.iter().position(|&i| q.atoms[i].rel == sg).unwrap(),
                order.iter().position(|&i| q.atoms[i].rel == aux).unwrap(),
            )
        };

        // Without the composite index the tie keeps the written order.
        let plain = OptimizeContext::stats_only(stats());
        let order = greedy_order(&q, &plain, &OptimizerConfig::default());
        let (pos_sg, pos_aux) = positions(&order);
        assert!(
            pos_aux < pos_sg,
            "tie should keep written order ({order:?})"
        );

        // With it, the composite probe wins the tie.
        let mut composite = carac_storage::hasher::FxHashSet::default();
        composite.insert((sg, vec![0, 1]));
        let indexed = OptimizeContext::stats_only(stats()).with_composites(composite);
        let order = greedy_order(&q, &indexed, &OptimizerConfig::default());
        let (pos_sg, pos_aux) = positions(&order);
        assert!(
            pos_sg < pos_aux,
            "composite-indexed Sg should be probed before unindexed Aux (order {order:?})"
        );
    }

    #[test]
    fn constrained_atom_wins_the_tie() {
        // A and B have identical cardinalities; a `<` constraint decidable
        // as soon as B is placed makes B the cheaper opener even though A
        // comes first in the written order.
        let mut b = ProgramBuilder::new();
        b.relation("A", 2);
        b.relation("B", 2);
        b.relation("Out", 1);
        b.rule("Out", &["x"])
            .when("A", &["x", "y"])
            .when("B", &["x", "z"])
            .lt(carac_datalog::builder::v("z"), carac_datalog::builder::c(5))
            .end();
        let p = b.build().unwrap();
        let q = carac_ir::ConjunctiveQuery::from_rule(&p.rules()[0], None);
        let ctx = ctx((100, 0), (100, 0));
        let order = greedy_order(&q, &ctx, &OptimizerConfig::default());
        assert_eq!(
            order[0], 1,
            "constrained B should open the join ({order:?})"
        );

        // Without the constraint the written order is kept.
        let mut unconstrained = q.clone();
        unconstrained.constraints.clear();
        let order = greedy_order(&unconstrained, &ctx, &OptimizerConfig::default());
        assert_eq!(order[0], 0);
    }

    #[test]
    fn two_way_join_build_probe_swap() {
        // With only 2-way joins the optimization degenerates to choosing the
        // smaller side first (the CSDA observation of §VI-B.2).
        let mut b = ProgramBuilder::new();
        b.relation("Small", 2);
        b.relation("Big", 2);
        b.relation("Out", 2);
        b.rule("Out", &["x", "z"])
            .when("Big", &["x", "y"])
            .when("Small", &["y", "z"])
            .end();
        let p = b.build().unwrap();
        let q = carac_ir::ConjunctiveQuery::from_rule(&p.rules()[0], None);
        let ctx = OptimizeContext::stats_only(StatsSnapshot::from_stats(
            vec![
                RelationStats {
                    derived: 10,
                    delta_known: 0,
                    ..Default::default()
                },
                RelationStats {
                    derived: 100_000,
                    delta_known: 0,
                    ..Default::default()
                },
                RelationStats::default(),
            ],
            1,
        ));
        let order = greedy_order(&q, &ctx, &OptimizerConfig::default());
        // Atom 1 is Small; it should be placed first.
        assert_eq!(order[0], 1);
        // Sanity: both atoms read Derived.
        assert!(q.atoms.iter().all(|a| a.db == DbKind::Derived));
    }
}
