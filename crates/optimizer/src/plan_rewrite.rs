//! Whole-plan reordering.
//!
//! The same atom-reordering optimization can be applied at every stage of a
//! query's life (paper §IV): ahead of time over the generated plan, at query
//! start once the EDB cardinalities are known, and repeatedly at runtime at
//! whichever granularity the JIT compiles.  This module provides the
//! plan-level entry points; the per-node entry point
//! ([`reorder_query`]) is used directly by the
//! execution backends.

use carac_ir::{IRNode, IROp};

use crate::config::OptimizerConfig;
use crate::context::OptimizeContext;
use crate::reorder::{reorder_query, ReorderAlgorithm};

/// Rewrites every `σπ⋈` node in `plan` with a freshly optimized atom order.
/// Returns the number of SPJ nodes whose order actually changed.
pub fn optimize_plan(
    plan: &mut IRNode,
    ctx: &OptimizeContext,
    config: &OptimizerConfig,
    algorithm: ReorderAlgorithm,
) -> usize {
    let mut changed = 0;
    plan.visit_mut(&mut |node| {
        if let IROp::Spj { query } = &mut node.op {
            let reordered = reorder_query(query, ctx, config, algorithm);
            if reordered.atoms != query.atoms {
                changed += 1;
                *query = reordered;
            }
        }
    });
    changed
}

/// Rewrites only the SPJ nodes underneath the node with id `root` (used when
/// the JIT recompiles a single subtree).
pub fn optimize_subtree(
    plan: &mut IRNode,
    root: carac_ir::NodeId,
    ctx: &OptimizeContext,
    config: &OptimizerConfig,
    algorithm: ReorderAlgorithm,
) -> usize {
    let mut changed = 0;
    plan.visit_mut(&mut |node| {
        if node.id == root {
            changed += optimize_plan_node(node, ctx, config, algorithm);
        }
    });
    changed
}

fn optimize_plan_node(
    node: &mut IRNode,
    ctx: &OptimizeContext,
    config: &OptimizerConfig,
    algorithm: ReorderAlgorithm,
) -> usize {
    let mut changed = 0;
    node.visit_mut(&mut |n| {
        if let IROp::Spj { query } = &mut n.op {
            let reordered = reorder_query(query, ctx, config, algorithm);
            if reordered.atoms != query.atoms {
                changed += 1;
                *query = reordered;
            }
        }
    });
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use carac_datalog::parser::parse;
    use carac_ir::{generate_plan, EvalStrategy, OpKind};
    use carac_storage::{RelationStats, StatsSnapshot};

    fn cspa_like() -> (carac_datalog::Program, IRNode) {
        let p = parse(
            "VAlias(v1, v2) :- VaFlow(v0, v2), VaFlow(v3, v1), MAlias(v3, v0).\n\
             VaFlow(x, y) :- Assign(x, y).\n\
             MAlias(x, y) :- Assign(y, x).\n",
        )
        .unwrap();
        let plan = generate_plan(&p, EvalStrategy::SemiNaive);
        (p, plan)
    }

    fn ctx_for(p: &carac_datalog::Program, cards: &[(&str, usize)]) -> OptimizeContext {
        let mut per_relation = vec![RelationStats::default(); p.relations().len()];
        for (name, derived) in cards {
            let rel = p.relation_by_name(name).unwrap();
            per_relation[rel.index()] = RelationStats {
                derived: *derived,
                delta_known: *derived / 2,
                ..Default::default()
            };
        }
        OptimizeContext::stats_only(StatsSnapshot::from_stats(per_relation, 1))
    }

    #[test]
    fn optimize_plan_rewrites_spj_orders() {
        let (p, mut plan) = cspa_like();
        let ctx = ctx_for(&p, &[("VaFlow", 100_000), ("MAlias", 10), ("Assign", 50)]);
        let changed = optimize_plan(
            &mut plan,
            &ctx,
            &OptimizerConfig::default(),
            ReorderAlgorithm::Greedy,
        );
        assert!(changed > 0, "at least one 3-way join should be reordered");
        // No SPJ in the optimized plan starts with the huge VaFlow derived
        // atom when a tiny MAlias atom is available.
        for (_, q) in plan.spj_queries() {
            if q.width() == 3 {
                assert!(!q.has_cartesian_product());
            }
        }
    }

    #[test]
    fn optimize_subtree_only_touches_the_target() {
        let (p, mut plan) = cspa_like();
        let ctx = ctx_for(&p, &[("VaFlow", 100_000), ("MAlias", 10), ("Assign", 50)]);
        // Pick one UnionRule node inside the loop and optimize only it.
        let targets = plan.nodes_of_kind(OpKind::UnionRule);
        let target = *targets.last().unwrap();
        let before: Vec<_> = plan
            .spj_queries()
            .iter()
            .map(|(id, q)| (*id, q.atoms.clone()))
            .collect();
        let _ = optimize_subtree(
            &mut plan,
            target,
            &ctx,
            &OptimizerConfig::default(),
            ReorderAlgorithm::Greedy,
        );
        let target_node = plan.find(target).unwrap();
        let target_spjs: Vec<_> = target_node
            .spj_queries()
            .iter()
            .map(|(id, _)| *id)
            .collect();
        for (id, atoms) in before {
            let now = plan
                .spj_queries()
                .into_iter()
                .find(|(i, _)| *i == id)
                .unwrap()
                .1
                .atoms
                .clone();
            if !target_spjs.contains(&id) {
                assert_eq!(atoms, now, "untouched node {id:?} must keep its order");
            }
        }
    }

    #[test]
    fn idempotent_when_already_optimal() {
        let (p, mut plan) = cspa_like();
        let ctx = ctx_for(&p, &[("VaFlow", 100), ("MAlias", 10), ("Assign", 50)]);
        let config = OptimizerConfig::default();
        let _ = optimize_plan(&mut plan, &ctx, &config, ReorderAlgorithm::Greedy);
        let again = optimize_plan(&mut plan, &ctx, &config, ReorderAlgorithm::Greedy);
        assert_eq!(again, 0);
    }
}
