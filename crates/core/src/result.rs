//! Query results.

use carac_datalog::Program;
use carac_exec::{ExecContext, RunStats};
use carac_storage::{PoolStats, RelId, Tuple};

use crate::error::CaracError;

/// The outcome of running a program: access to every derived relation plus
/// the run statistics.
#[derive(Debug)]
pub struct QueryResult {
    program: Program,
    context: ExecContext,
}

impl QueryResult {
    pub(crate) fn new(program: Program, context: ExecContext) -> Self {
        QueryResult { program, context }
    }

    /// Run statistics (iterations, subqueries, compilations, timings).
    pub fn stats(&self) -> &RunStats {
        &self.context.stats
    }

    /// Number of derived tuples in `relation`.
    pub fn count(&self, relation: &str) -> Result<usize, CaracError> {
        let rel = self.rel(relation)?;
        Ok(self.context.derived_count(rel))
    }

    /// Raw derived tuples of `relation`.
    pub fn tuples(&self, relation: &str) -> Result<Vec<Tuple>, CaracError> {
        let rel = self.rel(relation)?;
        Ok(self.context.derived_tuples(rel))
    }

    /// Derived tuples of `relation` with every value rendered through the
    /// symbol table (strings resolve to their text, integers print as
    /// numbers).
    pub fn rows(&self, relation: &str) -> Result<Vec<Vec<String>>, CaracError> {
        let tuples = self.tuples(relation)?;
        Ok(tuples
            .iter()
            .map(|t| {
                t.values()
                    .iter()
                    .map(|&v| self.program.symbols().display(v))
                    .collect()
            })
            .collect())
    }

    /// Whether `relation` derived at least one tuple containing exactly the
    /// given rendered values (convenience for tests and examples).
    pub fn contains(&self, relation: &str, values: &[&str]) -> Result<bool, CaracError> {
        Ok(self
            .rows(relation)?
            .iter()
            .any(|row| row.len() == values.len() && row.iter().zip(values).all(|(a, b)| a == b)))
    }

    /// Total number of derived tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.context.storage.total_derived()
    }

    /// Aggregate row-pool statistics (rows, resident bytes, dedup-table
    /// rehashes) across the three evaluation databases — the memory-layout
    /// numbers the benchmark harness reports alongside wall times.
    pub fn pool_stats(&self) -> PoolStats {
        self.context.storage.pool_stats()
    }

    /// Per-rule execution profiles collected during the run (see
    /// [`carac_exec::ProfileTable`]); always populated, tracing on or off.
    pub fn rule_profiles(&self) -> &carac_exec::ProfileTable {
        &self.context.stats.rule_profiles
    }

    /// Human-readable run summary: aggregate counters plus the per-rule
    /// profile table.
    pub fn summary(&self) -> String {
        self.context.stats.summary()
    }

    /// Writes the run's span trace as a chrome://tracing / Perfetto JSON
    /// file (atomic temp-file + rename).  Empty trace when tracing was off.
    pub fn write_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        carac_exec::write_chrome_trace(path.as_ref(), &self.context.stats)
    }

    /// Writes the flat JSON metrics snapshot (atomic temp-file + rename).
    pub fn write_metrics_snapshot(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        carac_exec::write_metrics_snapshot(path.as_ref(), &self.context.stats)
    }

    /// The program this result was computed for.
    pub fn program(&self) -> &Program {
        &self.program
    }

    fn rel(&self, name: &str) -> Result<RelId, CaracError> {
        self.program
            .relation_by_name(name)
            .map_err(CaracError::from)
    }
}

/// The outcome of a goal-directed query ([`Carac::query`]): the matching
/// tuples of the goal relation plus the run statistics of the (magic-set
/// rewritten, or on fallback full) evaluation that produced them.
///
/// [`Carac::query`]: crate::engine::Carac::query
#[derive(Debug)]
pub struct QueryAnswer {
    tuples: Vec<Tuple>,
    stats: RunStats,
    fallback: bool,
    derived_facts: usize,
    answer_relation: String,
}

impl QueryAnswer {
    pub(crate) fn new(
        tuples: Vec<Tuple>,
        stats: RunStats,
        fallback: bool,
        derived_facts: usize,
        answer_relation: String,
    ) -> Self {
        QueryAnswer {
            tuples,
            stats,
            fallback,
            derived_facts,
            answer_relation,
        }
    }

    /// The answer tuples: every tuple of the goal relation matching the
    /// query pattern, full arity (bound positions carry the query
    /// constants).
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Consumes the answer, returning the tuples.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Number of answer tuples.
    pub fn count(&self) -> usize {
        self.tuples.len()
    }

    /// Run statistics of the query evaluation (including the
    /// `magic_fallback` flag).
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Whether the engine fell back to full evaluation because the goal
    /// could not soundly be demand-restricted.
    pub fn fallback(&self) -> bool {
        self.fallback
    }

    /// Total facts derived while answering (across every relation of the
    /// evaluated program) — the quantity goal-directed evaluation shrinks
    /// relative to a full fixpoint, reported by the `fig_query` bench.
    pub fn derived_facts(&self) -> usize {
        self.derived_facts
    }

    /// Name of the relation the answers were read from: the goal's adorned
    /// relation (`Path__bf`), or the original relation on fallback.
    pub fn answer_relation(&self) -> &str {
        &self.answer_relation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Carac;
    use crate::EngineConfig;
    use carac_datalog::parser::parse;

    fn result() -> QueryResult {
        let program = parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n\
             Named(\"start\", x) :- Edge(x, y).\n\
             Edge(1, 2). Edge(2, 3).",
        )
        .unwrap();
        Carac::new(program)
            .with_config(EngineConfig::interpreted())
            .run()
            .unwrap()
    }

    #[test]
    fn counts_and_tuples() {
        let r = result();
        assert_eq!(r.count("Path").unwrap(), 3);
        assert_eq!(r.tuples("Path").unwrap().len(), 3);
        assert!(r.count("Missing").is_err());
        assert!(r.total_tuples() >= 5);
    }

    #[test]
    fn rows_resolve_symbols() {
        let r = result();
        let rows = r.rows("Named").unwrap();
        assert!(rows.iter().any(|row| row[0] == "start"));
        assert!(r.contains("Named", &["start", "1"]).unwrap());
        assert!(!r.contains("Named", &["start", "99"]).unwrap());
    }

    #[test]
    fn stats_are_populated() {
        let r = result();
        assert!(r.stats().subqueries > 0);
        assert!(r.stats().tuples_inserted >= 3);
    }
}
