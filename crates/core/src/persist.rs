//! Durable storage for live sessions: checkpoint/restore plus the
//! write-ahead update journal and crash recovery.
//!
//! The protocol has three moving parts, all built on the std-only on-disk
//! formats of `carac_storage::{snapshot, journal}`:
//!
//! * **Checkpoint** ([`Carac::checkpoint`]) — an atomic (temp file + fsync +
//!   rename) snapshot of the live session's *entire* derived database:
//!   every relation's rows, their per-row support counts and the compaction
//!   generation counters, plus the program's symbol dictionary.  A restored
//!   session resumes [`Carac::apply_update`] immediately — no re-derivation,
//!   and the counted-deletion fast path keeps its support counters.
//! * **Journal** ([`Carac::journal_to`]) — an append-only log of
//!   [`UpdateBatch`]es.  Each batch is framed, CRC-checksummed, sequence
//!   numbered and **fsync'd before the in-memory state changes**, so at
//!   every instant the on-disk journal is a superset of the applied batches.
//! * **Recovery** ([`Carac::recover`]) — restore a checkpoint, then replay
//!   the journal suffix (records with sequence numbers beyond the
//!   checkpoint's watermark) through the ordinary incremental maintenance
//!   path.  The recovered fact sets are *identical* to the uncrashed run's —
//!   the fault-injection suite in `tests/fault_injection.rs` asserts this
//!   for a crash at every record boundary.
//!
//! Corrupt files are detected — magic/version/endianness header checks plus
//! a CRC per snapshot section and per journal record — and rejected with
//! typed [`CaracError::Persist`] errors; nothing is ever deserialized from
//! bytes that failed validation.  The single deliberate exception is the
//! journal's final record: an incomplete or checksum-failing frame at the
//! very end of the file is indistinguishable from a torn write at crash
//! time and is treated as a clean end-of-log (reported via
//! [`RecoveryReport::torn_tail`]), exactly because the write-ahead
//! discipline guarantees the torn batch was never applied in-memory **or**
//! was journaled durably before applying — either way the valid prefix is a
//! consistent state.

use std::path::Path;

use carac_exec::{ExecContext, Incremental, Phase, UpdateBatch};
use carac_storage::{read_journal, read_snapshot, write_snapshot, JournalWriter, Snapshot};

use crate::engine::{Carac, LiveSession};
use crate::error::CaracError;

/// What [`Carac::recover`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal records replayed on top of the checkpoint.
    pub replayed: u64,
    /// Whether the journal ended in a torn (partially written) record that
    /// was discarded as a clean end-of-log.
    pub torn_tail: bool,
}

impl Carac {
    /// Writes an atomic on-disk checkpoint of the live session to `path`
    /// (evaluating the program first if no session is open).
    ///
    /// The snapshot carries every relation's derived rows, support counts
    /// and generation counter, the symbol dictionary, and — when a journal
    /// is attached — the sequence number of the last journaled batch, so a
    /// later [`Carac::recover`] replays only the records the checkpoint does
    /// not already reflect.  The write is crash-safe: a sibling temp file is
    /// written, fsync'd and renamed over `path`, so a crash mid-checkpoint
    /// leaves any previous checkpoint at `path` intact.
    pub fn checkpoint(&mut self, path: impl AsRef<Path>) -> Result<(), CaracError> {
        self.run_live()?;
        let journal_seq = self
            .journal
            .as_ref()
            .map_or(0, |journal| journal.next_seq().saturating_sub(1));
        let live = self.live.as_ref().expect("run_live just succeeded");
        let token = live.ctx.stats.tracer.begin(Phase::Checkpoint, 0);
        let result = write_snapshot(
            path.as_ref(),
            &live.ctx.storage,
            self.program().symbols(),
            journal_seq,
        );
        live.ctx
            .stats
            .tracer
            .end(token, &[("journal_seq", journal_seq)]);
        result?;
        Ok(())
    }

    /// Restores a live session from a checkpoint written by
    /// [`Carac::checkpoint`] for the *same program*, without re-deriving
    /// anything: rows, support counts and generation counters come straight
    /// from the snapshot, so the session resumes [`Carac::apply_update`]
    /// with full incremental-maintenance fidelity.
    ///
    /// The snapshot's catalog (relation names, arities, EDB flags) and
    /// symbol dictionary are validated against the program; any mismatch —
    /// or any corruption of the file — is a typed [`CaracError::Persist`]
    /// rejection and the engine keeps whatever session it had.
    pub fn restore(&mut self, path: impl AsRef<Path>) -> Result<(), CaracError> {
        let snapshot = read_snapshot(path.as_ref())?;
        self.install_snapshot(&snapshot)?;
        Ok(())
    }

    /// Crash recovery: restores the checkpoint at `checkpoint`, then
    /// replays the suffix of the write-ahead journal at `journal` (every
    /// record with a sequence number beyond the checkpoint's watermark)
    /// through the ordinary incremental maintenance path.
    ///
    /// A torn final record — the signature of a crash mid-append — is
    /// discarded as a clean end-of-log; corruption anywhere else in either
    /// file is a typed rejection.  On success the journal stays attached
    /// (truncated to its last valid record), so the recovered session keeps
    /// journaling subsequent batches to the same file; on failure the
    /// engine holds no live session and no journal.
    pub fn recover(
        &mut self,
        checkpoint: impl AsRef<Path>,
        journal: impl AsRef<Path>,
    ) -> Result<RecoveryReport, CaracError> {
        let snapshot = read_snapshot(checkpoint.as_ref())?;
        let contents = read_journal(journal.as_ref())?;
        self.install_snapshot(&snapshot)?;
        let mut replayed = 0u64;
        let replay = {
            let live = self
                .live
                .as_mut()
                .expect("install_snapshot opened the session");
            let token = live
                .ctx
                .stats
                .tracer
                .begin(Phase::Recover, contents.records.len() as u32);
            let result = (|| -> Result<(), CaracError> {
                for record in &contents.records {
                    if record.seq <= snapshot.journal_seq {
                        continue; // already reflected in the checkpoint
                    }
                    let batch = UpdateBatch::decode(&record.payload)?;
                    live.incremental.apply(&mut live.ctx, &batch)?;
                    replayed += 1;
                }
                Ok(())
            })();
            live.ctx.stats.tracer.end(token, &[("replayed", replayed)]);
            result
        };
        if let Err(err) = replay {
            // A half-replayed session is not a consistent state at any
            // batch boundary; drop it rather than hand it out.
            self.discard_session();
            return Err(err);
        }
        self.journal = Some(JournalWriter::open_at(
            journal.as_ref(),
            contents.clean_len,
            contents.next_seq(),
        )?);
        Ok(RecoveryReport {
            replayed,
            torn_tail: contents.torn_tail,
        })
    }

    /// Attaches a write-ahead journal at `path` to the live session
    /// (evaluating the program first if no session is open).  The file is
    /// created (truncating any previous contents), so pair it with a fresh
    /// [`Carac::checkpoint`] — taken either just before or at any point
    /// after attaching — to form a recoverable pair for [`Carac::recover`].
    ///
    /// From here on every [`Carac::apply_update`] appends the batch to the
    /// journal and syncs it to disk *before* applying it.  The journal is
    /// detached automatically whenever the session it describes is
    /// discarded (config change, new base facts,
    /// [`Carac::invalidate_live`]).
    pub fn journal_to(&mut self, path: impl AsRef<Path>) -> Result<(), CaracError> {
        self.run_live()?;
        self.journal = Some(JournalWriter::create(path.as_ref())?);
        Ok(())
    }

    /// Detaches the write-ahead journal, if one is attached.  Subsequent
    /// updates are no longer logged; the file keeps its contents.  Returns
    /// whether a journal was attached.
    pub fn detach_journal(&mut self) -> bool {
        self.journal.take().is_some()
    }

    /// Whether a write-ahead journal is currently attached.
    pub fn is_journaling(&self) -> bool {
        self.journal.is_some()
    }

    /// Builds a fresh live session from `snapshot`: validates the symbol
    /// dictionary and catalog against the program, prepares a context
    /// skeleton (relations, indexes) and overwrites its derived database
    /// with the snapshot's rows, support counts and generation counters.
    /// Replaces any current session; detaches any current journal.
    fn install_snapshot(&mut self, snapshot: &Snapshot) -> Result<(), CaracError> {
        snapshot.validate_symbols(self.program().symbols())?;
        let mut ctx = ExecContext::prepare(self.program(), self.config().use_indexes)?;
        ctx.set_parallelism(self.config().parallelism)?;
        if let Some(trace) = self.config().tracing {
            ctx.stats.tracer = carac_exec::Tracer::new(trace);
            ctx.stats.compile_event_capacity = trace.compile_event_capacity;
        }
        snapshot.apply(&mut ctx.storage)?;
        let incremental = Incremental::new(self.program(), &self.extra_facts, self.live_kernel());
        self.discard_session();
        self.live = Some(LiveSession { ctx, incremental });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use carac_datalog::parser::parse;
    use carac_storage::{PersistError, Tuple};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("carac-persist-{}-{name}", std::process::id()));
        path
    }

    fn tc_engine() -> Carac {
        let program = parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n\
             Edge(1, 2). Edge(2, 3). Edge(3, 4).",
        )
        .unwrap();
        Carac::new(program).with_config(EngineConfig::interpreted())
    }

    fn sorted_paths(engine: &mut Carac) -> Vec<Tuple> {
        let mut tuples = engine.live_tuples("Path").unwrap();
        tuples.sort();
        tuples
    }

    #[test]
    fn checkpoint_then_restore_resumes_updates() {
        let snap = temp_path("roundtrip.snap");
        let mut engine = tc_engine();
        engine.apply_edge_updates("Edge", &[(4, 5)], &[]).unwrap();
        engine.checkpoint(&snap).unwrap();
        let expected = sorted_paths(&mut engine);

        // A fresh engine restores the session without re-deriving...
        let mut restored = tc_engine();
        restored.restore(&snap).unwrap();
        assert!(restored.is_live());
        assert_eq!(sorted_paths(&mut restored), expected);
        // ...and keeps maintaining it incrementally, including the counted
        // deletion path that relies on the snapshotted support counts.
        restored.apply_edge_updates("Edge", &[], &[(1, 2)]).unwrap();
        engine.apply_edge_updates("Edge", &[], &[(1, 2)]).unwrap();
        assert_eq!(sorted_paths(&mut restored), sorted_paths(&mut engine));
        let _ = std::fs::remove_file(&snap);
    }

    #[test]
    fn recover_replays_the_journal_suffix() {
        let snap = temp_path("recover.snap");
        let wal = temp_path("recover.wal");
        let mut engine = tc_engine();
        engine.checkpoint(&snap).unwrap();
        engine.journal_to(&wal).unwrap();
        assert!(engine.is_journaling());
        engine.apply_edge_updates("Edge", &[(4, 5)], &[]).unwrap();
        engine.apply_edge_updates("Edge", &[], &[(2, 3)]).unwrap();
        let expected = sorted_paths(&mut engine);
        drop(engine); // "crash"

        let mut recovered = tc_engine();
        let report = recovered.recover(&snap, &wal).unwrap();
        assert_eq!(report.replayed, 2);
        assert!(!report.torn_tail);
        assert_eq!(sorted_paths(&mut recovered), expected);
        // The journal stays attached: further updates land in the same log
        // and a second recovery replays all three.
        assert!(recovered.is_journaling());
        recovered
            .apply_edge_updates("Edge", &[(5, 6)], &[])
            .unwrap();
        let expected = sorted_paths(&mut recovered);
        drop(recovered);
        let mut again = tc_engine();
        assert_eq!(again.recover(&snap, &wal).unwrap().replayed, 3);
        assert_eq!(sorted_paths(&mut again), expected);
        let _ = std::fs::remove_file(&snap);
        let _ = std::fs::remove_file(&wal);
    }

    #[test]
    fn mid_journal_checkpoint_moves_the_watermark() {
        let snap1 = temp_path("watermark1.snap");
        let snap2 = temp_path("watermark2.snap");
        let wal = temp_path("watermark.wal");
        let mut engine = tc_engine();
        engine.checkpoint(&snap1).unwrap();
        engine.journal_to(&wal).unwrap();
        engine.apply_edge_updates("Edge", &[(4, 5)], &[]).unwrap();
        // This checkpoint reflects batch 1; recovery from it replays only
        // batch 2.
        engine.checkpoint(&snap2).unwrap();
        engine.apply_edge_updates("Edge", &[(5, 6)], &[]).unwrap();
        let expected = sorted_paths(&mut engine);
        drop(engine);

        let mut from_first = tc_engine();
        assert_eq!(from_first.recover(&snap1, &wal).unwrap().replayed, 2);
        assert_eq!(sorted_paths(&mut from_first), expected);
        let mut from_second = tc_engine();
        assert_eq!(from_second.recover(&snap2, &wal).unwrap().replayed, 1);
        assert_eq!(sorted_paths(&mut from_second), expected);
        for p in [&snap1, &snap2, &wal] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn rejected_batches_are_rolled_back_out_of_the_journal() {
        let snap = temp_path("rollback.snap");
        let wal = temp_path("rollback.wal");
        let mut engine = tc_engine();
        engine.checkpoint(&snap).unwrap();
        engine.journal_to(&wal).unwrap();
        engine.apply_edge_updates("Edge", &[(4, 5)], &[]).unwrap();
        // An invalid batch (IDB target) is rejected by maintenance — and
        // must not survive in the journal either.
        let path_rel = engine.program().relation_by_name("Path").unwrap();
        let mut bad = crate::UpdateBatch::new();
        bad.insert(path_rel, Tuple::pair(9, 9));
        assert!(engine.apply_update(bad).is_err());
        engine.apply_edge_updates("Edge", &[(5, 6)], &[]).unwrap();
        let expected = sorted_paths(&mut engine);
        drop(engine);

        let mut recovered = tc_engine();
        let report = recovered.recover(&snap, &wal).unwrap();
        assert_eq!(report.replayed, 2, "the rejected batch was journaled");
        assert_eq!(sorted_paths(&mut recovered), expected);
        let _ = std::fs::remove_file(&snap);
        let _ = std::fs::remove_file(&wal);
    }

    #[test]
    fn session_invalidation_detaches_the_journal() {
        let wal = temp_path("detach.wal");
        let mut engine = tc_engine();
        engine.journal_to(&wal).unwrap();
        assert!(engine.is_journaling());
        engine.add_edge_facts("Edge", &[(4, 5)]).unwrap();
        assert!(!engine.is_journaling(), "new base facts must detach");
        engine.journal_to(&wal).unwrap();
        engine.invalidate_live();
        assert!(!engine.is_journaling(), "invalidation must detach");
        assert!(!engine.detach_journal());
        let _ = std::fs::remove_file(&wal);
    }

    #[test]
    fn corrupt_files_are_typed_rejections() {
        let snap = temp_path("corrupt.snap");
        let mut engine = tc_engine();
        engine.checkpoint(&snap).unwrap();
        let mut bytes = std::fs::read(&snap).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&snap, &bytes).unwrap();
        let mut fresh = tc_engine();
        match fresh.restore(&snap).unwrap_err() {
            CaracError::Persist(PersistError::BadMagic { .. }) => {}
            other => panic!("expected BadMagic, got {other}"),
        }
        assert!(
            !fresh.is_live(),
            "a rejected restore must not open a session"
        );
        // A checkpoint for a different program is a schema mismatch, not a
        // silently divergent session.
        std::fs::write(&snap, {
            let mut engine = Carac::new(parse("Out(x) :- In(x).\nIn(7).").unwrap())
                .with_config(EngineConfig::interpreted());
            let other = temp_path("corrupt-other.snap");
            engine.checkpoint(&other).unwrap();
            let bytes = std::fs::read(&other).unwrap();
            let _ = std::fs::remove_file(&other);
            bytes
        })
        .unwrap();
        let err = tc_engine().restore(&snap).unwrap_err();
        assert!(matches!(
            err,
            CaracError::Persist(PersistError::SchemaMismatch { .. })
        ));
        let _ = std::fs::remove_file(&snap);
    }
}
