//! Ahead-of-time ("macro") plan preparation (paper §VI-C).
//!
//! When Carac itself is compiled, the set of facts and rules known at that
//! point can already be used to sort the join orders of the generated plan.
//! The cost of this offline sort is *not* part of query execution time.  The
//! offline sort uses the stable-sort algorithm so that, when the online
//! IRGenerator optimization is also enabled, re-sorting an already-sorted
//! plan is cheap — the property the paper leans on Timsort for.

use carac_datalog::Program;
use carac_ir::{generate_plan, EvalStrategy, IRNode};
use carac_optimizer::{optimize_plan, OptimizeContext, ReorderAlgorithm};
use carac_storage::hasher::FxHashSet;
use carac_storage::StorageManager;

use crate::config::AotConfig;
use crate::error::CaracError;

/// Generates the plan for `program` and applies the offline join-order sort.
///
/// When `config.use_fact_cardinalities` is set, the facts attached to the
/// program (and any `extra_facts` already registered with the engine) are
/// loaded into a scratch storage manager so their cardinalities inform the
/// sort; otherwise only the rule schema (selectivity heuristics) is used.
///
/// Returns the sorted plan and the number of subqueries whose order changed.
pub fn prepare_plan(
    program: &Program,
    strategy: EvalStrategy,
    config: &AotConfig,
    extra_facts: &[(carac_storage::RelId, carac_storage::Tuple)],
) -> Result<(IRNode, usize), CaracError> {
    let mut plan = generate_plan(program, strategy);

    let stats = if config.use_fact_cardinalities {
        let mut scratch = StorageManager::new(false);
        for decl in program.relations() {
            scratch.register(&decl.name, decl.arity, decl.is_edb);
        }
        for (rel, tuple) in program.facts().iter().chain(extra_facts.iter()) {
            scratch.insert_fact(*rel, tuple.clone())?;
        }
        scratch.stats()
    } else {
        carac_storage::StatsSnapshot::default()
    };

    let is_idb = program.relations().iter().map(|d| !d.is_edb).collect();
    let ctx = OptimizeContext::new(stats, is_idb, FxHashSet::default());
    let changed = optimize_plan(&mut plan, &ctx, &config.optimizer, ReorderAlgorithm::Sort);
    Ok((plan, changed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use carac_datalog::parser::parse;

    fn program() -> Program {
        parse(
            "VAlias(v1, v2) :- VaFlow(v0, v2), VaFlow(v3, v1), MAlias(v3, v0).\n\
             VaFlow(x, y) :- Assign(x, y), Deref(y, x).\n\
             MAlias(x, y) :- Deref(x, y).\n\
             Assign(1, 2). Assign(2, 3). Assign(3, 4). Assign(4, 5).\n\
             Deref(1, 1).\n",
        )
        .unwrap()
    }

    #[test]
    fn facts_and_rules_sort_uses_cardinalities() {
        let p = program();
        let (plan, changed) =
            prepare_plan(&p, EvalStrategy::SemiNaive, &AotConfig::default(), &[]).unwrap();
        // The EDB cardinalities (Assign=4, Deref=1) are known, so the
        // VaFlow rule's two-atom join should have been re-sorted to lead
        // with the smaller Deref relation in at least one subquery.
        assert!(changed > 0);
        assert_eq!(
            plan.spj_queries().len(),
            generate_plan(&p, EvalStrategy::SemiNaive)
                .spj_queries()
                .len()
        );
        let deref = p.relation_by_name("Deref").unwrap();
        let assign = p.relation_by_name("Assign").unwrap();
        let reordered = plan.spj_queries().iter().any(|(_, q)| {
            q.atoms.len() == 2 && q.atoms[0].rel == deref && q.atoms[1].rel == assign
        });
        assert!(reordered);
    }

    #[test]
    fn rules_only_sort_still_produces_a_valid_plan() {
        let p = program();
        let config = AotConfig {
            use_fact_cardinalities: false,
            ..AotConfig::default()
        };
        let (plan, _) = prepare_plan(&p, EvalStrategy::SemiNaive, &config, &[]).unwrap();
        // All SPJ node ids survive the rewrite (only atom orders change).
        let original = generate_plan(&p, EvalStrategy::SemiNaive);
        let orig_ids: Vec<_> = original.spj_queries().iter().map(|(id, _)| *id).collect();
        let new_ids: Vec<_> = plan.spj_queries().iter().map(|(id, _)| *id).collect();
        assert_eq!(orig_ids, new_ids);
    }

    #[test]
    fn extra_facts_contribute_to_the_sort() {
        let p = parse(
            "Out(a, c) :- Big(a, b), Small(b, c).\n\
             Big(0, 0).\n",
        )
        .unwrap();
        let small = p.relation_by_name("Small").unwrap();
        // Register many extra Small facts so Small looks *bigger* than Big.
        let extra: Vec<_> = (0..50)
            .map(|i| (small, carac_storage::Tuple::pair(i, i + 1)))
            .collect();
        let (plan, _) =
            prepare_plan(&p, EvalStrategy::SemiNaive, &AotConfig::default(), &extra).unwrap();
        let (_, q) = plan.spj_queries()[0];
        // Big (cardinality 1) should be ordered before Small (cardinality 50).
        let first = q.atoms[0].rel;
        assert_eq!(first, p.relation_by_name("Big").unwrap());
    }
}
