//! The Carac engine facade.

use std::time::Instant;

use carac_datalog::hasher::{FxHashMap, FxHashSet};
use carac_datalog::magic::{is_magic_name, magic_rewrite, QueryBinding};
use carac_datalog::{analyze_with, prune_with, Analysis, AnalysisOptions, Program};
use carac_exec::{
    interpreter, update_kernel, BackendKind, ExecContext, ExecError, Incremental, JitConfig,
    JitEngine, Phase, RunStats, Tracer, UpdateBatch, UpdateKernel, UpdateReport,
};
use carac_ir::{generate_plan, IRNode};
use carac_optimizer::ReorderAlgorithm;
use carac_storage::{RelId, Tuple, Value};

use crate::aot::prepare_plan;
use crate::config::{EngineConfig, ExecutionMode};
use crate::error::CaracError;
use crate::explain::{self, DerivationTree};
use crate::result::{QueryAnswer, QueryResult};

/// Keeps only the tuples matching every bound position of `pattern`.
fn filter_pattern(tuples: Vec<Tuple>, pattern: &[QueryBinding]) -> Vec<Tuple> {
    tuples
        .into_iter()
        .filter(|t| {
            t.values()
                .iter()
                .zip(pattern)
                .all(|(&v, binding)| binding.matches(v))
        })
        .collect()
}

/// A live evaluated session: the fixpoint context plus the incremental
/// maintenance machinery keeping it current under update batches.
#[derive(Debug)]
pub(crate) struct LiveSession {
    pub(crate) ctx: ExecContext,
    pub(crate) incremental: Incremental,
}

/// The user-facing engine: a validated [`Program`] plus an
/// [`EngineConfig`], with facts optionally added incrementally before the
/// run (paper §V-A: "Carac facts and rules can be defined at compile-time or
/// incrementally added at runtime").
///
/// ```
/// use carac::{Carac, EngineConfig};
/// use carac_datalog::parser::parse;
///
/// let program = parse(
///     "Path(x, y) :- Edge(x, y).\n\
///      Path(x, y) :- Edge(x, z), Path(z, y).\n\
///      Edge(1, 2). Edge(2, 3).",
/// ).unwrap();
/// let result = Carac::new(program).run().unwrap();
/// assert_eq!(result.count("Path").unwrap(), 3);
/// ```
///
/// On top of the one-shot [`Carac::run`], the engine supports a **live
/// session**: evaluate once, then keep the fixpoint current under streams
/// of EDB insertions *and* deletions with [`Carac::apply_update`] — counted
/// semi-naive maintenance for non-recursive strata, delete/re-derive (DRed)
/// for recursive ones, no full recomputation:
///
/// ```
/// use carac::{Carac, EngineConfig, UpdateBatch};
/// use carac_datalog::parser::parse;
/// use carac_storage::Tuple;
///
/// let program = parse(
///     "Path(x, y) :- Edge(x, y).\n\
///      Path(x, y) :- Edge(x, z), Path(z, y).\n\
///      Edge(1, 2). Edge(2, 3).",
/// ).unwrap();
/// let mut engine = Carac::new(program).with_config(EngineConfig::interpreted());
/// let edge = engine.program().relation_by_name("Edge").unwrap();
///
/// let mut batch = UpdateBatch::new();
/// batch.insert(edge, Tuple::pair(3, 4));   // a new edge arrives ...
/// batch.retract(edge, Tuple::pair(1, 2));  // ... and an old one goes away
/// let report = engine.apply_update(batch).unwrap();
/// assert_eq!(report.stats.edb_inserted, 1);
/// assert_eq!(report.stats.edb_retracted, 1);
/// // 2->3->4 remains: paths (2,3), (3,4), (2,4).
/// assert_eq!(engine.live_count("Path").unwrap(), 3);
/// ```
#[derive(Debug)]
pub struct Carac {
    program: Program,
    config: EngineConfig,
    pub(crate) extra_facts: Vec<(RelId, Tuple)>,
    pub(crate) live: Option<LiveSession>,
    /// Write-ahead update journal attached with [`Carac::journal_to`] (or by
    /// recovery): every applied batch is appended — and fsync'd — *before*
    /// the in-memory state changes.  Detached whenever the live session it
    /// describes is discarded; see `persist.rs` for the full protocol.
    pub(crate) journal: Option<carac_storage::JournalWriter>,
}

impl Carac {
    /// Creates an engine with the default configuration (adaptive JIT with
    /// the lambda backend, indexes enabled).
    pub fn new(program: Program) -> Self {
        Carac {
            program,
            config: EngineConfig::default(),
            extra_facts: Vec::new(),
            live: None,
            journal: None,
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self.discard_session();
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Adds a ground fact of integer constants to `relation` before the run.
    /// Any live session is discarded (the base fact set changed).
    pub fn add_fact_ints(&mut self, relation: &str, values: &[u32]) -> Result<(), CaracError> {
        let rel = self.program.relation_by_name(relation)?;
        self.extra_facts.push((
            rel,
            Tuple::new(values.iter().copied().map(Value::int).collect()),
        ));
        self.discard_session();
        Ok(())
    }

    /// Adds many binary integer facts at once (the common shape for graph
    /// workloads).
    pub fn add_edge_facts(
        &mut self,
        relation: &str,
        edges: &[(u32, u32)],
    ) -> Result<(), CaracError> {
        let rel = self.program.relation_by_name(relation)?;
        self.extra_facts
            .extend(edges.iter().map(|&(a, b)| (rel, Tuple::pair(a, b))));
        self.discard_session();
        Ok(())
    }

    /// Adds a pre-built tuple to `relation`.
    pub fn add_fact_tuple(&mut self, relation: &str, tuple: Tuple) -> Result<(), CaracError> {
        let rel = self.program.relation_by_name(relation)?;
        self.extra_facts.push((rel, tuple));
        self.discard_session();
        Ok(())
    }

    /// Number of facts added on top of the program's own facts.
    pub fn extra_fact_count(&self) -> usize {
        self.extra_facts.len()
    }

    /// Runs the program to completion and returns the result.
    ///
    /// Each call starts from a fresh database built from the program facts
    /// plus any facts added with the `add_*` methods, so the engine can be
    /// reused for repeated measurements.
    ///
    /// ```
    /// use carac::{Carac, EngineConfig};
    /// use carac_datalog::parser::parse;
    ///
    /// let program = parse(
    ///     "Path(x, y) :- Edge(x, y).\n\
    ///      Path(x, y) :- Edge(x, z), Path(z, y).\n\
    ///      Edge(1, 2). Edge(2, 3).",
    /// ).unwrap();
    /// // Serial and 4-thread parallel evaluation derive the same fixpoint.
    /// let serial = Carac::new(program.clone())
    ///     .with_config(EngineConfig::interpreted())
    ///     .run().unwrap();
    /// let parallel = Carac::new(program)
    ///     .with_config(EngineConfig::interpreted().with_parallelism(4))
    ///     .run().unwrap();
    /// assert_eq!(serial.count("Path").unwrap(), parallel.count("Path").unwrap());
    /// ```
    pub fn run(&self) -> Result<QueryResult, CaracError> {
        let ctx = self.run_context()?;
        Ok(QueryResult::new(self.program.clone(), ctx))
    }

    /// Evaluates a single **goal-directed query** against the program: each
    /// argument of `relation` is either [`QueryBinding::Bound`] to a
    /// constant or [`QueryBinding::Free`].  Instead of computing the full
    /// fixpoint and filtering, the engine rewrites the program around the
    /// bound arguments with the magic-set transformation
    /// ([`carac_datalog::magic::magic_rewrite`]) so only *demanded* facts
    /// are derived — a point query on a large transitive closure touches a
    /// small cone of the graph, not the whole closure.  The answers are
    /// bit-identical to filtering [`Carac::run`]'s fixpoint on the bound
    /// constants (differentially tested across every engine).
    ///
    /// Goals that cannot soundly be demand-restricted (negated or
    /// aggregated relations, goals carrying asserted facts, or an all-free
    /// pattern) fall back to full evaluation; the fallback is reported on
    /// [`QueryAnswer::fallback`] and the result's `stats().magic_fallback`.
    ///
    /// ```
    /// use carac::{Carac, QueryBinding};
    /// use carac_datalog::parser::parse;
    ///
    /// let program = parse(
    ///     "Path(x, y) :- Edge(x, y).\n\
    ///      Path(x, y) :- Path(x, z), Edge(z, y).\n\
    ///      Edge(1, 2). Edge(2, 3). Edge(5, 6).",
    /// ).unwrap();
    /// let engine = Carac::new(program);
    /// // Everything reachable from 1 — without deriving paths from 5.
    /// let answer = engine
    ///     .query("Path", &[QueryBinding::bound_int(1), QueryBinding::Free])
    ///     .unwrap();
    /// assert_eq!(answer.count(), 2);
    /// assert!(!answer.fallback());
    /// ```
    pub fn query(
        &self,
        relation: &str,
        pattern: &[QueryBinding],
    ) -> Result<QueryAnswer, CaracError> {
        let rel = self.program.relation_by_name(relation)?;
        let decl = self.program.relation(rel);
        if pattern.len() != decl.arity {
            return Err(carac_datalog::DatalogError::ArityMismatch {
                relation: decl.name.clone(),
                expected: decl.arity,
                actual: pattern.len(),
            }
            .into());
        }
        // Extensional relations need no evaluation at all: load the facts
        // and filter.
        if decl.is_edb {
            let mut ctx = ExecContext::prepare(&self.program, self.config.use_indexes)?;
            for (r, tuple) in &self.extra_facts {
                ctx.insert_fact(*r, tuple.clone())?;
            }
            let tuples = filter_pattern(ctx.derived_tuples(rel), pattern);
            let derived_facts = ctx.storage.total_derived();
            return Ok(QueryAnswer::new(
                tuples,
                ctx.stats,
                false,
                derived_facts,
                decl.name.clone(),
            ));
        }
        let extra_rels: Vec<RelId> = self.extra_facts.iter().map(|&(r, _)| r).collect();
        let rewritten = magic_rewrite(&self.program, rel, pattern, &extra_rels)?;
        let mut ctx = self.run_context_for(&rewritten.program, &rewritten.magic_relations)?;
        ctx.stats.magic_fallback = rewritten.fallback;
        let answer_rel = rewritten
            .program
            .relation_by_name(&rewritten.answer_relation)?;
        // Recursive demand can seed the goal's magic set with more than the
        // query constants, so the adorned relation may hold answers for
        // other demanded bindings too — the pattern filter trims it to
        // exactly the query's answers.
        let tuples = filter_pattern(ctx.derived_tuples(answer_rel), pattern);
        let derived_facts = ctx.storage.total_derived();
        Ok(QueryAnswer::new(
            tuples,
            ctx.stats,
            rewritten.fallback,
            derived_facts,
            rewritten.answer_relation,
        ))
    }

    /// Explains **why** a derived fact holds: returns a minimal-depth
    /// [`DerivationTree`] of rule instantiations (and aggregate folds)
    /// bottoming out at extensional / asserted base facts.
    ///
    /// The walk is goal-directed: the engine evaluates the program rewritten
    /// by the magic-set transformation for the fully bound fact, so the
    /// backward search runs over the *demanded cone* — typically far smaller
    /// than the full fixpoint.  Goals that cannot soundly be
    /// demand-restricted (aggregated or negated relations, fact-bearing
    /// heads) fall back to searching the full fixpoint; the answer is the
    /// same either way.
    ///
    /// Errors with [`CaracError::Explain`] when the fact is not derivable.
    ///
    /// ```
    /// use carac::Carac;
    /// use carac_datalog::parser::parse;
    ///
    /// let program = parse(
    ///     "Path(x, y) :- Edge(x, y).\n\
    ///      Path(x, y) :- Edge(x, z), Path(z, y).\n\
    ///      Edge(1, 2). Edge(2, 3).",
    /// ).unwrap();
    /// let engine = Carac::new(program);
    /// let tree = engine.explain("Path", &[1, 3]).unwrap();
    /// assert_eq!(tree.root().relation, "Path");
    /// assert!(tree.leaves().all(|leaf| leaf.relation == "Edge"));
    /// assert!(engine.explain("Path", &[3, 1]).is_err());
    /// ```
    pub fn explain(&self, relation: &str, values: &[u32]) -> Result<DerivationTree, CaracError> {
        self.explain_tuple(
            relation,
            Tuple::new(values.iter().copied().map(Value::int).collect()),
        )
    }

    /// [`Carac::explain`] over a pre-built tuple (for interned symbols or
    /// tuples taken from a result).
    pub fn explain_tuple(
        &self,
        relation: &str,
        tuple: Tuple,
    ) -> Result<DerivationTree, CaracError> {
        let rel = self.program.relation_by_name(relation)?;
        let decl = self.program.relation(rel);
        if tuple.values().len() != decl.arity {
            return Err(carac_datalog::DatalogError::ArityMismatch {
                relation: decl.name.clone(),
                expected: decl.arity,
                actual: tuple.values().len(),
            }
            .into());
        }
        // Restrict the search to the demanded cone of the fully bound goal.
        // EDB goals take the fallback branch inside the rewrite (extensional
        // relations are never demand-restricted) and resolve to leaves.
        let pattern: Vec<QueryBinding> = tuple
            .values()
            .iter()
            .map(|&v| QueryBinding::Bound(v))
            .collect();
        let extra_rels: Vec<RelId> = self.extra_facts.iter().map(|&(r, _)| r).collect();
        let rewritten = magic_rewrite(&self.program, rel, &pattern, &extra_rels)?;
        let ctx = self.run_context_for(&rewritten.program, &rewritten.magic_relations)?;

        // Collapse the evaluated relations back onto the original program's
        // ids: an original relation's cone is its own facts plus every
        // adorned variant's.
        let mut cone: FxHashMap<RelId, FxHashSet<Tuple>> = FxHashMap::default();
        for evaluated in rewritten.program.relations() {
            if is_magic_name(&evaluated.name) {
                continue;
            }
            let original = rewritten
                .adorned_map
                .iter()
                .find(|(adorned, _)| *adorned == evaluated.name)
                .map_or(evaluated.name.as_str(), |(_, original)| original.as_str());
            let Ok(orig_rel) = self.program.relation_by_name(original) else {
                continue;
            };
            cone.entry(orig_rel)
                .or_default()
                .extend(ctx.derived_tuples(evaluated.id));
        }

        let mut base_facts: Vec<(RelId, Tuple)> = self.program.facts().to_vec();
        base_facts.extend(self.extra_facts.iter().cloned());
        explain::build_tree(&self.program, &cone, &base_facts, rel, &tuple)
    }

    /// The analyzer options matching this engine instance: relations that
    /// received facts through the `add_*` methods are treated as non-empty
    /// even though the facts live outside `program.facts()`.
    fn analysis_options(&self, assume_edb_nonempty: bool) -> AnalysisOptions {
        AnalysisOptions {
            assume_edb_nonempty,
            extra_nonempty: self.extra_facts.iter().map(|&(r, _)| r).collect(),
        }
    }

    /// Runs the static analyzer over the program: abstract interpretation of
    /// every rule body (constant propagation plus interval analysis over the
    /// comparison constraints) and emptiness/reachability dataflow over the
    /// dependency graph.  Returns machine-readable diagnostics —
    /// unsatisfiable, dead, duplicate and subsumed rules at error level;
    /// unused relations, singleton variables and statically-decided
    /// comparisons as warnings — without modifying the program.
    ///
    /// The analysis treats the fact set as *frozen* (the program's facts
    /// plus anything added with the `add_*` methods), matching what a
    /// [`Carac::run`] call would evaluate.
    ///
    /// ```
    /// use carac::Carac;
    /// use carac_datalog::parser::parse;
    ///
    /// let program = parse(
    ///     "Path(x, y) :- Edge(x, y), x < 3, x > 7.\n\
    ///      Path(x, y) :- Edge(x, y).\n\
    ///      Edge(1, 2).",
    /// ).unwrap();
    /// let analysis = Carac::new(program).analyze();
    /// assert_eq!(analysis.error_count(), 1); // the contradiction
    /// ```
    pub fn analyze(&self) -> Analysis {
        analyze_with(&self.program, &self.analysis_options(false))
    }

    /// Runs the program to completion and returns the raw execution context
    /// (the shared engine body behind [`Carac::run`] and the live session).
    ///
    /// With [`EngineConfig::prune`] set, the analyzer runs first and the
    /// engine evaluates the pruned program (declarations kept, error-level
    /// rules dropped) with the analyzer's column-interval facts installed as
    /// optimizer hints.  The derived fact set is identical either way.
    fn run_context(&self) -> Result<ExecContext, CaracError> {
        if !self.config.prune {
            return self.run_context_for(&self.program, &[]);
        }
        let pruned = prune_with(&self.program, &self.analysis_options(false), true);
        self.run_context_hinted(&pruned.program, &[], pruned.analysis.interval_hints)
    }

    /// [`Carac::run_context`] over an explicit program: the goal-directed
    /// query path evaluates a magic-rewritten variant of `self.program`
    /// through the same engine configuration.  `program` must declare the
    /// engine's relations with their original ids (the rewrite preserves
    /// them), so the registered extra facts stay valid.  `magic` names the
    /// rewrite's demand-guard predicates — installed explicitly on the
    /// context (the optimizer scores them as high-selectivity) rather than
    /// inferred from relation names, so ordinary programs whose relations
    /// happen to share the reserved prefix are never mis-scored.
    fn run_context_for(
        &self,
        program: &Program,
        magic: &[String],
    ) -> Result<ExecContext, CaracError> {
        self.run_context_hinted(program, magic, FxHashMap::default())
    }

    /// [`Carac::run_context_for`] with column-interval facts from the static
    /// analyzer installed before evaluation begins, so every reordering the
    /// run performs sees the refined comparison selectivities.
    fn run_context_hinted(
        &self,
        program: &Program,
        magic: &[String],
        interval_hints: FxHashMap<(RelId, usize), (u32, u32)>,
    ) -> Result<ExecContext, CaracError> {
        let mut ctx = ExecContext::prepare(program, self.config.use_indexes)?;
        if !interval_hints.is_empty() {
            ctx.set_interval_hints(interval_hints);
        }
        if !magic.is_empty() {
            let rels = magic
                .iter()
                .map(|name| program.relation_by_name(name))
                .collect::<Result<_, _>>()?;
            ctx.set_magic_relations(rels);
        }
        ctx.set_parallelism(self.config.parallelism)?;
        ctx.set_verify(self.config.verify);
        for (rel, tuple) in &self.extra_facts {
            ctx.insert_fact(*rel, tuple.clone())?;
        }
        if let Some(trace) = self.config.tracing {
            ctx.stats.tracer = Tracer::new(trace);
            ctx.stats.compile_event_capacity = trace.compile_event_capacity;
        }

        let run_token = ctx.stats.tracer.begin(Phase::Run, 0);
        let run_result: Result<(), CaracError> = (|| {
            match &self.config.mode {
                ExecutionMode::Interpreted => {
                    let plan = generate_plan(program, self.config.strategy);
                    self.verify_generated_plan(&plan, program)?;
                    let started = Instant::now();
                    interpreter::interpret(&plan, &mut ctx)?;
                    ctx.stats.total_time = started.elapsed();
                }
                ExecutionMode::Jit(jit_config) => {
                    let plan = generate_plan(program, self.config.strategy);
                    self.verify_generated_plan(&plan, program)?;
                    let mut engine = JitEngine::new(plan, *jit_config);
                    engine.run(&mut ctx)?;
                }
                ExecutionMode::AheadOfTime(aot) => {
                    // The offline sort is *not* charged to execution time.
                    let (plan, _) =
                        prepare_plan(program, self.config.strategy, aot, &self.extra_facts)?;
                    self.verify_generated_plan(&plan, program)?;
                    let started = Instant::now();
                    if aot.online_reorder {
                        let jit_config = JitConfig {
                            backend: BackendKind::IrGen,
                            reorder_algorithm: ReorderAlgorithm::Sort,
                            ..JitConfig::default()
                        };
                        let mut engine = JitEngine::new(plan, jit_config);
                        engine.run(&mut ctx)?;
                        // `JitEngine::run` already accumulated its own wall
                        // time; keep that measurement.
                    } else {
                        interpreter::interpret(&plan, &mut ctx)?;
                        ctx.stats.total_time = started.elapsed();
                    }
                }
            }
            Ok(())
        })();
        let (emitted, inserted, iterations) = (
            ctx.stats.tuples_emitted,
            ctx.stats.tuples_inserted,
            ctx.stats.iterations,
        );
        ctx.stats.tracer.end(
            run_token,
            &[
                ("emitted", emitted),
                ("inserted", inserted),
                ("iterations", iterations),
            ],
        );
        run_result?;
        Ok(ctx)
    }

    /// Statically verifies a freshly generated (or ahead-of-time-optimized)
    /// plan against `program` before it executes, when
    /// [`EngineConfig::verify`] is on.  Covers the ordinary, pruned and
    /// magic-rewritten paths alike — they all flow through
    /// [`Carac::run_context_hinted`].  A rejected plan is an engine bug
    /// surfaced as a typed [`carac_exec::ExecError::Verify`] instead of a
    /// wrong answer or a crash mid-query.
    fn verify_generated_plan(&self, plan: &IRNode, program: &Program) -> Result<(), CaracError> {
        if !self.config.verify {
            return Ok(());
        }
        carac_ir::verify_plan(plan, program).map_err(|err| {
            CaracError::Exec(ExecError::Verify {
                backend: "planner".to_string(),
                reason: err.to_string(),
            })
        })
    }

    /// The update kernel implied by the configured execution mode (the
    /// backend dispatch seam of `carac_exec::backends::update_kernel`).
    pub(crate) fn live_kernel(&self) -> UpdateKernel {
        match &self.config.mode {
            ExecutionMode::Interpreted => UpdateKernel::Interpreted,
            ExecutionMode::Jit(jit) => update_kernel(jit.backend),
            ExecutionMode::AheadOfTime(_) => UpdateKernel::Specialized,
        }
    }

    /// Evaluates the program to its fixpoint and keeps the result as a
    /// *live session* that [`Carac::apply_update`] maintains incrementally.
    /// A no-op when a live session already exists.
    pub fn run_live(&mut self) -> Result<(), CaracError> {
        if self.live.is_some() {
            return Ok(());
        }
        // A live session must stay correct under arbitrary later updates, so
        // the pruning analysis runs in its update-independent mode: every
        // EDB relation is assumed potentially non-empty and only rules that
        // can never fire under *any* fact set are dropped.  The incremental
        // maintenance then operates on the same pruned rule set the initial
        // fixpoint evaluated.
        let (ctx, incremental) = if self.config.prune {
            let pruned = prune_with(&self.program, &self.analysis_options(true), true);
            let ctx = self.run_context_hinted(
                &pruned.program,
                &[],
                pruned.analysis.interval_hints.clone(),
            )?;
            let incremental =
                Incremental::new(&pruned.program, &self.extra_facts, self.live_kernel());
            (ctx, incremental)
        } else {
            let ctx = self.run_context_for(&self.program, &[])?;
            let incremental =
                Incremental::new(&self.program, &self.extra_facts, self.live_kernel());
            (ctx, incremental)
        };
        self.live = Some(LiveSession { ctx, incremental });
        Ok(())
    }

    /// Whether a live session is currently held.
    pub fn is_live(&self) -> bool {
        self.live.is_some()
    }

    /// Discards the live session (the next [`Carac::apply_update`] or
    /// [`Carac::run_live`] re-evaluates from scratch).  Any attached
    /// write-ahead journal is detached with it: the journal describes the
    /// update history of the session being discarded, not the fresh one.
    pub fn invalidate_live(&mut self) {
        self.discard_session();
    }

    /// Drops the live session together with its journal (the shared body of
    /// every invalidation path — a journal must never outlive the session
    /// lineage it records).
    pub(crate) fn discard_session(&mut self) {
        self.live = None;
        self.journal = None;
    }

    /// Applies a batch of EDB insertions and retractions to the live
    /// session, maintaining every derived stratum incrementally (counted
    /// semi-naive for non-recursive strata, delete/re-derive for recursive
    /// ones).  Opens the live session first if none exists.  The resulting
    /// fact sets are identical to re-evaluating the updated EDB from
    /// scratch.
    ///
    /// When a write-ahead journal is attached ([`Carac::journal_to`]), the
    /// batch is appended to it — and fsync'd to disk — *before* any
    /// in-memory state changes, so a crash at any point leaves the journal a
    /// superset of the applied batches and [`Carac::recover`] replays the
    /// suffix deterministically.  A batch the maintenance layer rejects is
    /// rolled back out of the journal again, keeping the log exactly the
    /// sequence of successfully applied batches.
    pub fn apply_update(&mut self, batch: UpdateBatch) -> Result<UpdateReport, CaracError> {
        self.run_live()?;
        // Write-ahead: journal first, apply second.
        let rollback = match self.journal.as_mut() {
            Some(journal) => {
                let mark = (journal.byte_len(), journal.next_seq());
                journal.append(&batch.encode())?;
                Some(mark)
            }
            None => None,
        };
        let live = self.live.as_mut().expect("run_live just succeeded");
        let token = live
            .ctx
            .stats
            .tracer
            .begin(Phase::UpdateBatch, batch.ops().len() as u32);
        let outcome = live.incremental.apply(&mut live.ctx, &batch);
        let counters = match &outcome {
            Ok(report) => [
                ("edb_inserted", report.stats.edb_inserted),
                ("edb_retracted", report.stats.edb_retracted),
            ],
            Err(_) => [("edb_inserted", 0), ("edb_retracted", 0)],
        };
        live.ctx.stats.tracer.end(token, &counters);
        match outcome {
            Ok(report) => Ok(report),
            Err(err) => {
                // The batch did not apply; take it back out of the journal
                // so the log stays exactly the applied-batch sequence.  If
                // even the rollback fails the journal is no longer coherent
                // with the session and is detached — recovery from it could
                // otherwise replay a batch the live run rejected.
                if let (Some(journal), Some((len, seq))) = (self.journal.as_mut(), rollback) {
                    if journal.truncate_to(len, seq).is_err() {
                        self.journal = None;
                    }
                }
                Err(err.into())
            }
        }
    }

    /// Convenience wrapper over [`Carac::apply_update`] for the common
    /// binary-edge shape: applies `retracts` and `inserts` to `relation` in
    /// one batch.
    pub fn apply_edge_updates(
        &mut self,
        relation: &str,
        inserts: &[(u32, u32)],
        retracts: &[(u32, u32)],
    ) -> Result<UpdateReport, CaracError> {
        let rel = self.program.relation_by_name(relation)?;
        let mut batch = UpdateBatch::new();
        for &(a, b) in retracts {
            batch.retract(rel, Tuple::pair(a, b));
        }
        for &(a, b) in inserts {
            batch.insert(rel, Tuple::pair(a, b));
        }
        self.apply_update(batch)
    }

    /// Number of derived tuples of `relation` in the live session
    /// (evaluating first if needed).
    pub fn live_count(&mut self, relation: &str) -> Result<usize, CaracError> {
        self.run_live()?;
        let rel = self.program.relation_by_name(relation)?;
        Ok(self.live.as_ref().expect("live").ctx.derived_count(rel))
    }

    /// All derived tuples of `relation` in the live session (evaluating
    /// first if needed).
    pub fn live_tuples(&mut self, relation: &str) -> Result<Vec<Tuple>, CaracError> {
        self.run_live()?;
        let rel = self.program.relation_by_name(relation)?;
        Ok(self.live.as_ref().expect("live").ctx.derived_tuples(rel))
    }

    /// The live session's accumulated run statistics (including the
    /// `update` block), if a session is open.
    pub fn live_stats(&self) -> Option<&RunStats> {
        self.live.as_ref().map(|l| &l.ctx.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use carac_datalog::parser::parse;
    use carac_datalog::DiagnosticCode;
    use carac_exec::BackendKind;

    fn tc() -> Program {
        parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n\
             Edge(1, 2). Edge(2, 3). Edge(3, 4).",
        )
        .unwrap()
    }

    #[test]
    fn default_engine_runs_transitive_closure() {
        let result = Carac::new(tc()).run().unwrap();
        assert_eq!(result.count("Path").unwrap(), 6);
        assert!(result.stats().total_time.as_nanos() > 0);
    }

    #[test]
    fn all_execution_modes_agree() {
        let program = tc();
        let expected = 6;
        let configs = vec![
            EngineConfig::interpreted(),
            EngineConfig::interpreted_unindexed(),
            EngineConfig::jit(BackendKind::Lambda, false),
            EngineConfig::jit(BackendKind::Lambda, true),
            EngineConfig::jit(BackendKind::Bytecode, false),
            EngineConfig::jit(BackendKind::IrGen, false),
            EngineConfig::ahead_of_time(true, true),
            EngineConfig::ahead_of_time(true, false),
            EngineConfig::ahead_of_time(false, true),
            EngineConfig::ahead_of_time(false, false),
        ];
        for config in configs {
            let label = config.label();
            let result = Carac::new(program.clone())
                .with_config(config)
                .run()
                .unwrap();
            assert_eq!(result.count("Path").unwrap(), expected, "{label} diverged");
        }
    }

    #[test]
    fn extra_facts_are_included_in_the_run() {
        let mut engine = Carac::new(tc()).with_config(EngineConfig::interpreted());
        engine.add_edge_facts("Edge", &[(4, 5), (5, 6)]).unwrap();
        engine.add_fact_ints("Edge", &[6, 7]).unwrap();
        assert_eq!(engine.extra_fact_count(), 3);
        let result = engine.run().unwrap();
        // Chain 1..=7: 6+5+4+3+2+1 = 21 paths.
        assert_eq!(result.count("Path").unwrap(), 21);
    }

    #[test]
    fn adding_facts_to_unknown_relations_errors() {
        let mut engine = Carac::new(tc());
        assert!(engine.add_fact_ints("Nope", &[1]).is_err());
    }

    #[test]
    fn live_session_applies_update_streams() {
        // Every execution mode maps to an update kernel; spot-check the
        // three representative ones.
        for config in [
            EngineConfig::interpreted(),
            EngineConfig::jit(BackendKind::Lambda, false),
            EngineConfig::jit(BackendKind::Bytecode, false), // VM → interpreter fallback
        ] {
            let mut engine = Carac::new(tc()).with_config(config);
            assert!(!engine.is_live());
            assert_eq!(engine.live_count("Path").unwrap(), 6);
            assert!(engine.is_live());
            // Grow the chain, then cut its head, in separate batches.
            engine.apply_edge_updates("Edge", &[(4, 5)], &[]).unwrap();
            assert_eq!(engine.live_count("Path").unwrap(), 10);
            engine.apply_edge_updates("Edge", &[], &[(1, 2)]).unwrap();
            // Chain 2..=5: 3+2+1 = 6 paths.
            assert_eq!(engine.live_count("Path").unwrap(), 6);
            // The session matches a scratch evaluation of the final EDB.
            let mut scratch = Carac::new(
                parse(
                    "Path(x, y) :- Edge(x, y).\n\
                     Path(x, y) :- Edge(x, z), Path(z, y).\n\
                     Edge(2, 3). Edge(3, 4). Edge(4, 5).",
                )
                .unwrap(),
            );
            let mut live = engine.live_tuples("Path").unwrap();
            let mut from_scratch = scratch.live_tuples("Path").unwrap();
            live.sort();
            from_scratch.sort();
            assert_eq!(live, from_scratch);
            assert!(engine.live_stats().unwrap().update.batches >= 2);
        }
    }

    #[test]
    fn adding_facts_invalidates_the_live_session() {
        let mut engine = Carac::new(tc()).with_config(EngineConfig::interpreted());
        assert_eq!(engine.live_count("Path").unwrap(), 6);
        engine.add_edge_facts("Edge", &[(4, 5)]).unwrap();
        assert!(!engine.is_live());
        assert_eq!(engine.live_count("Path").unwrap(), 10);
    }

    #[test]
    fn goal_directed_query_matches_filtered_fixpoint() {
        // Two disjoint chains: the point query must not derive the other
        // chain's paths.
        let program = parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n\
             Edge(1, 2). Edge(2, 3). Edge(3, 4). Edge(10, 11). Edge(11, 12).",
        )
        .unwrap();
        let engine = Carac::new(program.clone()).with_config(EngineConfig::interpreted());
        let full = engine.run().unwrap();
        let answer = engine
            .query("Path", &[QueryBinding::bound_int(1), QueryBinding::Free])
            .unwrap();
        assert!(!answer.fallback());
        assert!(!answer.stats().magic_fallback);
        // 1 reaches 2, 3, 4.
        assert_eq!(answer.count(), 3);
        let mut expected: Vec<Tuple> = full
            .tuples("Path")
            .unwrap()
            .into_iter()
            .filter(|t| t.get(0) == Some(Value::int(1)))
            .collect();
        let mut got = answer.into_tuples();
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn goal_directed_query_derives_fewer_facts() {
        let program = parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Path(x, z), Edge(z, y).\n\
             Edge(1, 2). Edge(2, 3). Edge(3, 4). Edge(4, 5). Edge(5, 6).",
        )
        .unwrap();
        let engine = Carac::new(program).with_config(EngineConfig::interpreted());
        let full = engine.run().unwrap();
        let answer = engine
            .query("Path", &[QueryBinding::bound_int(4), QueryBinding::Free])
            .unwrap();
        assert_eq!(answer.count(), 2); // 4 -> 5, 4 -> 6
        assert!(
            answer.derived_facts() < full.total_tuples(),
            "demanded subset ({}) must be smaller than the full fixpoint ({})",
            answer.derived_facts(),
            full.total_tuples()
        );
    }

    #[test]
    fn query_on_edb_relations_skips_evaluation() {
        let mut engine = Carac::new(tc()).with_config(EngineConfig::interpreted());
        engine.add_edge_facts("Edge", &[(9, 9)]).unwrap();
        let answer = engine
            .query("Edge", &[QueryBinding::bound_int(9), QueryBinding::Free])
            .unwrap();
        assert_eq!(answer.count(), 1);
        assert_eq!(answer.stats().iterations, 0);
        assert!(!answer.fallback());
    }

    #[test]
    fn all_free_query_falls_back_to_full_evaluation() {
        let engine = Carac::new(tc()).with_config(EngineConfig::interpreted());
        let answer = engine
            .query("Path", &[QueryBinding::Free, QueryBinding::Free])
            .unwrap();
        assert!(answer.fallback());
        assert!(answer.stats().magic_fallback);
        assert_eq!(answer.count(), 6);
        assert_eq!(answer.answer_relation(), "Path");
    }

    #[test]
    fn query_pattern_arity_is_checked() {
        let engine = Carac::new(tc());
        assert!(engine.query("Path", &[QueryBinding::bound_int(1)]).is_err());
        assert!(engine.query("Nope", &[QueryBinding::Free]).is_err());
    }

    #[test]
    fn query_agrees_across_execution_modes() {
        let program = parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n\
             Edge(1, 2). Edge(2, 3). Edge(3, 1). Edge(7, 8).",
        )
        .unwrap();
        let pattern = [QueryBinding::bound_int(2), QueryBinding::Free];
        let reference: Vec<Tuple> = {
            let mut t = Carac::new(program.clone())
                .with_config(EngineConfig::interpreted())
                .query("Path", &pattern)
                .unwrap()
                .into_tuples();
            t.sort();
            t
        };
        assert_eq!(reference.len(), 3); // 2 reaches 3, 1, 2
        for config in [
            EngineConfig::interpreted_unindexed(),
            EngineConfig::jit(BackendKind::Lambda, false),
            EngineConfig::jit(BackendKind::Bytecode, false),
            EngineConfig::jit(BackendKind::IrGen, false),
            EngineConfig::ahead_of_time(true, true),
            EngineConfig::interpreted().with_parallelism(2),
            EngineConfig::interpreted().with_parallelism(8),
        ] {
            let label = config.label();
            let mut got = Carac::new(program.clone())
                .with_config(config)
                .query("Path", &pattern)
                .unwrap()
                .into_tuples();
            got.sort();
            assert_eq!(
                got, reference,
                "{label} diverged on the goal-directed query"
            );
        }
    }

    /// A transitive closure padded with one unsatisfiable rule, one rule
    /// over a factless (dead) relation, and one duplicate rule.
    fn defective_tc() -> Program {
        parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n\
             Path(x, y) :- Edge(x, y), x < 2, x > 9.\n\
             Path(x, y) :- Ghost(x, z), Edge(z, y).\n\
             Path(a, b) :- Edge(a, b).\n\
             Edge(1, 2). Edge(2, 3). Edge(3, 4).",
        )
        .unwrap()
    }

    #[test]
    fn analyze_reports_defects_without_modifying_the_program() {
        let engine = Carac::new(defective_tc());
        let analysis = engine.analyze();
        assert!(analysis.has_errors());
        assert_eq!(
            analysis
                .with_code(DiagnosticCode::UnsatisfiableRule)
                .count(),
            1
        );
        assert_eq!(analysis.with_code(DiagnosticCode::DeadRule).count(), 1);
        assert_eq!(analysis.with_code(DiagnosticCode::DuplicateRule).count(), 1);
        assert_eq!(engine.program().rules().len(), 5);
    }

    #[test]
    fn pruned_runs_match_unpruned_across_modes() {
        let program = defective_tc();
        for config in [
            EngineConfig::interpreted(),
            EngineConfig::jit(BackendKind::Lambda, false),
            EngineConfig::jit(BackendKind::Bytecode, false),
            EngineConfig::interpreted().with_parallelism(4),
        ] {
            let label = config.label();
            let plain = Carac::new(program.clone())
                .with_config(config)
                .run()
                .unwrap();
            let pruned = Carac::new(program.clone())
                .with_config(config.with_prune())
                .run()
                .unwrap();
            let mut a = plain.tuples("Path").unwrap();
            let mut b = pruned.tuples("Path").unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{label} diverged under pruning");
        }
    }

    #[test]
    fn pruned_live_session_matches_unpruned_under_updates() {
        let program = defective_tc();
        let mut plain = Carac::new(program.clone()).with_config(EngineConfig::interpreted());
        let mut pruned = Carac::new(program).with_config(EngineConfig::interpreted().with_prune());
        for engine in [&mut plain, &mut pruned] {
            engine.apply_edge_updates("Edge", &[(4, 5)], &[]).unwrap();
            engine.apply_edge_updates("Edge", &[], &[(1, 2)]).unwrap();
            // The dead relation coming alive mid-stream must still derive:
            // live pruning may only drop update-independent defects.
            engine.apply_edge_updates("Ghost", &[(0, 2)], &[]).unwrap();
        }
        let mut a = plain.live_tuples("Path").unwrap();
        let mut b = pruned.live_tuples("Path").unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b, "live pruning diverged under updates");
    }

    #[test]
    fn extra_facts_keep_their_relations_alive_for_the_analyzer() {
        let mut engine = Carac::new(defective_tc()).with_config(EngineConfig::interpreted());
        engine.add_edge_facts("Ghost", &[(0, 2)]).unwrap();
        let analysis = engine.analyze();
        // Ghost now has facts, so the rule over it is no longer dead.
        assert!(analysis
            .with_code(DiagnosticCode::DeadRule)
            .next()
            .is_none());
        let plain = engine.run().unwrap();
        let pruned = Carac::new(engine.program().clone())
            .with_config(EngineConfig::interpreted().with_prune());
        let mut with_prune = pruned;
        with_prune.add_edge_facts("Ghost", &[(0, 2)]).unwrap();
        let pruned_result = with_prune.run().unwrap();
        assert_eq!(
            plain.count("Path").unwrap(),
            pruned_result.count("Path").unwrap()
        );
    }

    #[test]
    fn pruning_leaves_goal_directed_queries_untouched() {
        let engine =
            Carac::new(defective_tc()).with_config(EngineConfig::interpreted().with_prune());
        let answer = engine
            .query("Path", &[QueryBinding::bound_int(1), QueryBinding::Free])
            .unwrap();
        assert_eq!(answer.count(), 3);
    }

    #[test]
    fn runs_are_repeatable() {
        let engine = Carac::new(tc()).with_config(EngineConfig::interpreted());
        let a = engine.run().unwrap();
        let b = engine.run().unwrap();
        assert_eq!(a.count("Path").unwrap(), b.count("Path").unwrap());
    }

    #[test]
    fn naive_strategy_matches_semi_naive() {
        let program = tc();
        let semi = Carac::new(program.clone())
            .with_config(EngineConfig::interpreted())
            .run()
            .unwrap();
        let naive = Carac::new(program)
            .with_config(EngineConfig::interpreted().with_strategy(carac_ir::EvalStrategy::Naive))
            .run()
            .unwrap();
        assert_eq!(semi.count("Path").unwrap(), naive.count("Path").unwrap());
    }
}
