//! The Carac engine facade.

use std::time::Instant;

use carac_datalog::Program;
use carac_exec::{interpreter, BackendKind, ExecContext, JitConfig, JitEngine};
use carac_ir::generate_plan;
use carac_optimizer::ReorderAlgorithm;
use carac_storage::{RelId, Tuple, Value};

use crate::aot::prepare_plan;
use crate::config::{EngineConfig, ExecutionMode};
use crate::error::CaracError;
use crate::result::QueryResult;

/// The user-facing engine: a validated [`Program`] plus an
/// [`EngineConfig`], with facts optionally added incrementally before the
/// run (paper §V-A: "Carac facts and rules can be defined at compile-time or
/// incrementally added at runtime").
///
/// ```
/// use carac::{Carac, EngineConfig};
/// use carac_datalog::parser::parse;
///
/// let program = parse(
///     "Path(x, y) :- Edge(x, y).\n\
///      Path(x, y) :- Edge(x, z), Path(z, y).\n\
///      Edge(1, 2). Edge(2, 3).",
/// ).unwrap();
/// let result = Carac::new(program).run().unwrap();
/// assert_eq!(result.count("Path").unwrap(), 3);
/// ```
#[derive(Debug)]
pub struct Carac {
    program: Program,
    config: EngineConfig,
    extra_facts: Vec<(RelId, Tuple)>,
}

impl Carac {
    /// Creates an engine with the default configuration (adaptive JIT with
    /// the lambda backend, indexes enabled).
    pub fn new(program: Program) -> Self {
        Carac {
            program,
            config: EngineConfig::default(),
            extra_facts: Vec::new(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// The current configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Adds a ground fact of integer constants to `relation` before the run.
    pub fn add_fact_ints(&mut self, relation: &str, values: &[u32]) -> Result<(), CaracError> {
        let rel = self.program.relation_by_name(relation)?;
        self.extra_facts
            .push((rel, Tuple::new(values.iter().copied().map(Value::int).collect())));
        Ok(())
    }

    /// Adds many binary integer facts at once (the common shape for graph
    /// workloads).
    pub fn add_edge_facts(
        &mut self,
        relation: &str,
        edges: &[(u32, u32)],
    ) -> Result<(), CaracError> {
        let rel = self.program.relation_by_name(relation)?;
        self.extra_facts
            .extend(edges.iter().map(|&(a, b)| (rel, Tuple::pair(a, b))));
        Ok(())
    }

    /// Adds a pre-built tuple to `relation`.
    pub fn add_fact_tuple(&mut self, relation: &str, tuple: Tuple) -> Result<(), CaracError> {
        let rel = self.program.relation_by_name(relation)?;
        self.extra_facts.push((rel, tuple));
        Ok(())
    }

    /// Number of facts added on top of the program's own facts.
    pub fn extra_fact_count(&self) -> usize {
        self.extra_facts.len()
    }

    /// Runs the program to completion and returns the result.
    ///
    /// Each call starts from a fresh database built from the program facts
    /// plus any facts added with the `add_*` methods, so the engine can be
    /// reused for repeated measurements.
    ///
    /// ```
    /// use carac::{Carac, EngineConfig};
    /// use carac_datalog::parser::parse;
    ///
    /// let program = parse(
    ///     "Path(x, y) :- Edge(x, y).\n\
    ///      Path(x, y) :- Edge(x, z), Path(z, y).\n\
    ///      Edge(1, 2). Edge(2, 3).",
    /// ).unwrap();
    /// // Serial and 4-thread parallel evaluation derive the same fixpoint.
    /// let serial = Carac::new(program.clone())
    ///     .with_config(EngineConfig::interpreted())
    ///     .run().unwrap();
    /// let parallel = Carac::new(program)
    ///     .with_config(EngineConfig::interpreted().with_parallelism(4))
    ///     .run().unwrap();
    /// assert_eq!(serial.count("Path").unwrap(), parallel.count("Path").unwrap());
    /// ```
    pub fn run(&self) -> Result<QueryResult, CaracError> {
        let mut ctx = ExecContext::prepare(&self.program, self.config.use_indexes)?;
        ctx.set_parallelism(self.config.parallelism)?;
        for (rel, tuple) in &self.extra_facts {
            ctx.insert_fact(*rel, tuple.clone())?;
        }

        match &self.config.mode {
            ExecutionMode::Interpreted => {
                let plan = generate_plan(&self.program, self.config.strategy);
                let started = Instant::now();
                interpreter::interpret(&plan, &mut ctx)?;
                ctx.stats.total_time = started.elapsed();
            }
            ExecutionMode::Jit(jit_config) => {
                let plan = generate_plan(&self.program, self.config.strategy);
                let mut engine = JitEngine::new(plan, *jit_config);
                engine.run(&mut ctx)?;
            }
            ExecutionMode::AheadOfTime(aot) => {
                // The offline sort is *not* charged to execution time.
                let (plan, _) =
                    prepare_plan(&self.program, self.config.strategy, aot, &self.extra_facts)?;
                let started = Instant::now();
                if aot.online_reorder {
                    let jit_config = JitConfig {
                        backend: BackendKind::IrGen,
                        reorder_algorithm: ReorderAlgorithm::Sort,
                        ..JitConfig::default()
                    };
                    let mut engine = JitEngine::new(plan, jit_config);
                    engine.run(&mut ctx)?;
                    // `JitEngine::run` already accumulated its own wall time;
                    // keep that measurement.
                } else {
                    interpreter::interpret(&plan, &mut ctx)?;
                    ctx.stats.total_time = started.elapsed();
                }
            }
        }
        Ok(QueryResult::new(self.program.clone(), ctx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use carac_datalog::parser::parse;
    use carac_exec::BackendKind;

    fn tc() -> Program {
        parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n\
             Edge(1, 2). Edge(2, 3). Edge(3, 4).",
        )
        .unwrap()
    }

    #[test]
    fn default_engine_runs_transitive_closure() {
        let result = Carac::new(tc()).run().unwrap();
        assert_eq!(result.count("Path").unwrap(), 6);
        assert!(result.stats().total_time.as_nanos() > 0);
    }

    #[test]
    fn all_execution_modes_agree() {
        let program = tc();
        let expected = 6;
        let configs = vec![
            EngineConfig::interpreted(),
            EngineConfig::interpreted_unindexed(),
            EngineConfig::jit(BackendKind::Lambda, false),
            EngineConfig::jit(BackendKind::Lambda, true),
            EngineConfig::jit(BackendKind::Bytecode, false),
            EngineConfig::jit(BackendKind::IrGen, false),
            EngineConfig::ahead_of_time(true, true),
            EngineConfig::ahead_of_time(true, false),
            EngineConfig::ahead_of_time(false, true),
            EngineConfig::ahead_of_time(false, false),
        ];
        for config in configs {
            let label = config.label();
            let result = Carac::new(program.clone()).with_config(config).run().unwrap();
            assert_eq!(result.count("Path").unwrap(), expected, "{label} diverged");
        }
    }

    #[test]
    fn extra_facts_are_included_in_the_run() {
        let mut engine = Carac::new(tc()).with_config(EngineConfig::interpreted());
        engine.add_edge_facts("Edge", &[(4, 5), (5, 6)]).unwrap();
        engine.add_fact_ints("Edge", &[6, 7]).unwrap();
        assert_eq!(engine.extra_fact_count(), 3);
        let result = engine.run().unwrap();
        // Chain 1..=7: 6+5+4+3+2+1 = 21 paths.
        assert_eq!(result.count("Path").unwrap(), 21);
    }

    #[test]
    fn adding_facts_to_unknown_relations_errors() {
        let mut engine = Carac::new(tc());
        assert!(engine.add_fact_ints("Nope", &[1]).is_err());
    }

    #[test]
    fn runs_are_repeatable() {
        let engine = Carac::new(tc()).with_config(EngineConfig::interpreted());
        let a = engine.run().unwrap();
        let b = engine.run().unwrap();
        assert_eq!(a.count("Path").unwrap(), b.count("Path").unwrap());
    }

    #[test]
    fn naive_strategy_matches_semi_naive() {
        let program = tc();
        let semi = Carac::new(program.clone())
            .with_config(EngineConfig::interpreted())
            .run()
            .unwrap();
        let naive = Carac::new(program)
            .with_config(
                EngineConfig::interpreted().with_strategy(carac_ir::EvalStrategy::Naive),
            )
            .run()
            .unwrap();
        assert_eq!(
            semi.count("Path").unwrap(),
            naive.count("Path").unwrap()
        );
    }
}
