//! Provenance: *why* does a derived fact hold?
//!
//! [`Carac::explain`] reconstructs a derivation of one fact as a
//! [`DerivationTree`]: a proof DAG whose internal nodes are rule
//! instantiations (or aggregate folds) and whose leaves are extensional or
//! asserted base facts.  The reconstruction is **goal-directed**: the
//! engine first evaluates the program rewritten by the magic-set transform
//! for the fully bound goal ([`carac_datalog::magic::magic_rewrite`]), so
//! the backward search runs over the *demanded cone* of the fact — a small
//! subset of the full fixpoint — and falls back to the full fixpoint only
//! when the goal cannot soundly be demand-restricted (aggregated or negated
//! relations, fact-bearing heads).
//!
//! Trees are **minimal-depth**: facts are labeled in breadth-first rounds
//! (round 0 holds the base facts, round `k` everything derivable from
//! rounds `< k`), and each fact records the first justification that
//! labeled it.  Shared premises appear once — the tree is an arena-backed
//! DAG with children stored before their parents.
//!
//! [`Carac::explain`]: crate::engine::Carac::explain

use std::fmt;

use carac_datalog::hasher::{FxHashMap, FxHashSet};
use carac_datalog::{Program, Rule, RuleId, Term};
use carac_storage::{AggFunc, RelId, Tuple, Value};

use crate::error::CaracError;

/// Index of a node within its [`DerivationTree`] arena.
pub type NodeId = usize;

/// How one fact of a derivation tree came to hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Derivation {
    /// An extensional or asserted base fact — a leaf.
    Fact,
    /// An instantiation of a program rule: the premises are the positive
    /// body literals' facts, in body order.
    Rule {
        /// The instantiated rule.
        rule: RuleId,
        /// Human-readable rendering of the rule.
        display: String,
        /// One node per positive body literal, in body order.
        premises: Vec<NodeId>,
    },
    /// An aggregate fold over the hidden input relation.  For `min`/`max`
    /// the witness is the input row achieving the optimum; for `count`/
    /// `sum` the witnesses are the whole group (every row contributes).
    Aggregate {
        /// The fold function.
        func: AggFunc,
        /// Name of the hidden input relation.
        input: String,
        /// Input rows justifying the folded value.
        witnesses: Vec<NodeId>,
    },
}

/// One fact of a [`DerivationTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerivationNode {
    /// Relation the fact belongs to.
    pub relation: String,
    /// The fact itself.
    pub tuple: Tuple,
    /// The fact rendered through the program's symbol table.
    pub row: Vec<String>,
    /// Breadth-first round in which the fact became derivable (0 for base
    /// facts).
    pub depth: usize,
    /// The justification.
    pub derivation: Derivation,
}

impl DerivationNode {
    /// Whether this node is a base-fact leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.derivation, Derivation::Fact)
    }

    /// The child node ids (premises or witnesses), empty for leaves.
    pub fn children(&self) -> &[NodeId] {
        match &self.derivation {
            Derivation::Fact => &[],
            Derivation::Rule { premises, .. } => premises,
            Derivation::Aggregate { witnesses, .. } => witnesses,
        }
    }
}

/// A minimal-depth derivation of one fact: an arena of nodes (children
/// stored before parents, each shared fact appearing once) plus the root.
#[derive(Debug, Clone)]
pub struct DerivationTree {
    nodes: Vec<DerivationNode>,
    root: NodeId,
}

impl DerivationTree {
    /// The root node — the explained fact.
    pub fn root(&self) -> &DerivationNode {
        &self.nodes[self.root]
    }

    /// The root's node id.
    pub fn root_id(&self) -> NodeId {
        self.root
    }

    /// A node by id.
    pub fn node(&self, id: NodeId) -> &DerivationNode {
        &self.nodes[id]
    }

    /// All nodes, children before parents.
    pub fn nodes(&self) -> &[DerivationNode] {
        &self.nodes
    }

    /// Number of distinct facts in the proof DAG.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true for a built tree).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Depth of the root: the number of breadth-first rounds needed to
    /// derive the explained fact.
    pub fn depth(&self) -> usize {
        self.root().depth
    }

    /// The leaf nodes: every extensional / asserted fact the derivation
    /// bottoms out at.
    pub fn leaves(&self) -> impl Iterator<Item = &DerivationNode> {
        self.nodes.iter().filter(|n| n.is_leaf())
    }

    /// Structural validation: children precede parents, leaves are base
    /// facts, every child is strictly shallower than its parent, and every
    /// node is reachable from the root.  Returns an error description on
    /// the first violation.
    pub fn check(&self) -> Result<(), String> {
        let mut reachable = vec![false; self.nodes.len()];
        reachable[self.root] = true;
        for (id, node) in self.nodes.iter().enumerate().rev() {
            if !reachable[id] {
                continue;
            }
            for &child in node.children() {
                if child >= id {
                    return Err(format!(
                        "child {child} of node {id} does not precede its parent"
                    ));
                }
                if self.nodes[child].depth >= node.depth {
                    return Err(format!(
                        "child {child} (depth {}) is not shallower than node {id} (depth {})",
                        self.nodes[child].depth, node.depth
                    ));
                }
                reachable[child] = true;
            }
            if node.children().is_empty() && !node.is_leaf() {
                return Err(format!("internal node {id} has no premises"));
            }
        }
        if let Some(unreachable) = reachable.iter().position(|&r| !r) {
            return Err(format!("node {unreachable} is not reachable from the root"));
        }
        Ok(())
    }

    fn render_into(&self, id: NodeId, indent: usize, out: &mut String) {
        let node = &self.nodes[id];
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push_str(&node.relation);
        out.push('(');
        out.push_str(&node.row.join(", "));
        out.push(')');
        match &node.derivation {
            Derivation::Fact => out.push_str("  [fact]"),
            Derivation::Rule { display, .. } => {
                out.push_str("  [");
                out.push_str(display);
                out.push(']');
            }
            Derivation::Aggregate { func, input, .. } => {
                out.push_str(&format!("  [{} over {input}]", func.name()));
            }
        }
        out.push('\n');
        for &child in self.nodes[id].children() {
            self.render_into(child, indent + 1, out);
        }
    }
}

impl fmt::Display for DerivationTree {
    /// Indented rendering, one fact per line, premises nested under their
    /// conclusion (shared premises re-printed in place).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.render_into(self.root, 0, &mut out);
        f.write_str(out.trim_end())
    }
}

/// How a fact was first labeled during the breadth-first rounds.
enum Just {
    Fact,
    Rule {
        rule: RuleId,
        premises: Vec<(RelId, Tuple)>,
    },
    Aggregate {
        func: AggFunc,
        witnesses: Vec<Tuple>,
    },
}

/// The labeling state: every fact known derivable so far, its round, and
/// its first justification.
struct Labeling {
    depth: FxHashMap<(RelId, Tuple), usize>,
    just: FxHashMap<(RelId, Tuple), Just>,
    /// Labeled facts per relation, for the instantiation joins.
    by_rel: FxHashMap<RelId, Vec<Tuple>>,
}

/// Backtracking instantiation of `rule` over the labeled facts: extends
/// `bindings` literal by literal, and for every complete match whose head
/// lands in `cone` (and is not yet labeled) records a round-`round`
/// justification in `fresh`.
fn instantiate(
    rule: &Rule,
    labeling: &Labeling,
    cone: &FxHashMap<RelId, FxHashSet<Tuple>>,
    fresh: &mut Vec<((RelId, Tuple), Just)>,
    seen_fresh: &mut FxHashSet<(RelId, Tuple)>,
) {
    let search = Instantiation {
        positives: rule.positive_body().collect(),
        rule,
        labeling,
        cone,
    };
    let mut bindings: Vec<Option<Value>> = vec![None; rule.num_vars()];
    let mut premises: Vec<(RelId, Tuple)> = Vec::with_capacity(search.positives.len());
    search.go(0, &mut bindings, &mut premises, fresh, seen_fresh);
}

/// The read-only context of one rule instantiation, so the backtracking
/// recursion only threads its mutable search state.
struct Instantiation<'a> {
    positives: Vec<&'a carac_datalog::Literal>,
    rule: &'a Rule,
    labeling: &'a Labeling,
    cone: &'a FxHashMap<RelId, FxHashSet<Tuple>>,
}

impl Instantiation<'_> {
    fn go(
        &self,
        level: usize,
        bindings: &mut Vec<Option<Value>>,
        premises: &mut Vec<(RelId, Tuple)>,
        fresh: &mut Vec<((RelId, Tuple), Just)>,
        seen_fresh: &mut FxHashSet<(RelId, Tuple)>,
    ) {
        let Instantiation {
            positives,
            rule,
            labeling,
            cone,
        } = self;
        if level == positives.len() {
            // All positive literals matched: check constraints, then
            // negation (against the cone sets, which are complete for
            // negated relations — demand never restricts them).
            for c in &rule.constraints {
                let value = |t: &Term| match t {
                    Term::Const(v) => *v,
                    Term::Var(v) => bindings[v.index()].expect("constraint var bound"),
                };
                if !c.op.eval(value(&c.lhs), value(&c.rhs)) {
                    return;
                }
            }
            for literal in rule.negative_body() {
                let probe = Tuple::new(
                    literal
                        .atom
                        .terms
                        .iter()
                        .map(|t| match t {
                            Term::Const(v) => *v,
                            Term::Var(v) => bindings[v.index()].expect("negated var bound"),
                        })
                        .collect(),
                );
                if cone
                    .get(&literal.atom.rel)
                    .is_some_and(|set| set.contains(&probe))
                {
                    return;
                }
            }
            let head = Tuple::new(
                rule.head
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(v) => *v,
                        Term::Var(v) => bindings[v.index()].expect("head var bound"),
                    })
                    .collect(),
            );
            let key = (rule.head.rel, head);
            if cone.get(&key.0).is_some_and(|set| set.contains(&key.1))
                && !labeling.depth.contains_key(&key)
                && seen_fresh.insert(key.clone())
            {
                fresh.push((
                    key,
                    Just::Rule {
                        rule: rule.id,
                        premises: premises.clone(),
                    },
                ));
            }
            return;
        }
        let atom = &positives[level].atom;
        let Some(facts) = labeling.by_rel.get(&atom.rel) else {
            return;
        };
        for tuple in facts {
            let mut bound_here: Vec<usize> = Vec::new();
            let mut ok = true;
            for (col, term) in atom.terms.iter().enumerate() {
                let v = tuple.get(col).expect("arity validated");
                match term {
                    Term::Const(c) => {
                        if *c != v {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(var) => match bindings[var.index()] {
                        Some(b) => {
                            if b != v {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            bindings[var.index()] = Some(v);
                            bound_here.push(var.index());
                        }
                    },
                }
            }
            if ok {
                premises.push((atom.rel, tuple.clone()));
                self.go(level + 1, bindings, premises, fresh, seen_fresh);
                premises.pop();
            }
            for var in bound_here {
                bindings[var] = None;
            }
        }
    }
}

/// Labels every aggregate-output fact in `cone` whose witnesses are already
/// labeled: `min`/`max` outputs need one input row equal to the output (the
/// optimum is itself an input row), `count`/`sum` outputs need the whole
/// input group.
fn label_aggregates(
    program: &Program,
    labeling: &Labeling,
    cone: &FxHashMap<RelId, FxHashSet<Tuple>>,
    fresh: &mut Vec<((RelId, Tuple), Just)>,
    seen_fresh: &mut FxHashSet<(RelId, Tuple)>,
) {
    for spec in program.aggregates() {
        let Some(outputs) = cone.get(&spec.output) else {
            continue;
        };
        let agg_cols: FxHashSet<usize> = spec.aggs.iter().map(|&(c, _)| c).collect();
        // Labeled input rows per group key.
        let mut groups: FxHashMap<Vec<Value>, Vec<Tuple>> = FxHashMap::default();
        if let Some(inputs) = labeling.by_rel.get(&spec.input) {
            for tuple in inputs {
                let key: Vec<Value> = tuple
                    .values()
                    .iter()
                    .enumerate()
                    .filter(|(c, _)| !agg_cols.contains(c))
                    .map(|(_, &v)| v)
                    .collect();
                groups.entry(key).or_default().push(tuple.clone());
            }
        }
        // Total input group sizes (labeled or not), to detect completeness
        // for count/sum.
        let mut totals: FxHashMap<Vec<Value>, usize> = FxHashMap::default();
        if let Some(all_inputs) = cone.get(&spec.input) {
            for tuple in all_inputs {
                let key: Vec<Value> = tuple
                    .values()
                    .iter()
                    .enumerate()
                    .filter(|(c, _)| !agg_cols.contains(c))
                    .map(|(_, &v)| v)
                    .collect();
                *totals.entry(key).or_default() += 1;
            }
        }
        let exact = spec
            .aggs
            .iter()
            .all(|&(_, f)| matches!(f, AggFunc::Min | AggFunc::Max));
        for out in outputs {
            let key = (spec.output, out.clone());
            if labeling.depth.contains_key(&key) || seen_fresh.contains(&key) {
                continue;
            }
            let group_key: Vec<Value> = out
                .values()
                .iter()
                .enumerate()
                .filter(|(c, _)| !agg_cols.contains(c))
                .map(|(_, &v)| v)
                .collect();
            let Some(members) = groups.get(&group_key) else {
                continue;
            };
            // A pure min/max fold's output is itself an input row of the
            // group — that single row witnesses the folded value.  Count,
            // sum, and multi-function folds combine the whole group, so the
            // justification waits until every group row is labeled.
            let optimum = exact.then(|| members.iter().find(|t| *t == out)).flatten();
            let witnesses: Vec<Tuple> = match optimum {
                Some(w) => vec![w.clone()],
                None => {
                    if totals.get(&group_key).copied().unwrap_or(0) != members.len() {
                        continue;
                    }
                    members.clone()
                }
            };
            seen_fresh.insert(key.clone());
            fresh.push((
                key,
                Just::Aggregate {
                    func: spec.aggs[0].1,
                    witnesses,
                },
            ));
        }
    }
}

/// Builds the minimal-depth derivation of `(goal, tuple)` from the cone
/// fact sets: breadth-first labeling rounds, then memoized tree extraction.
pub(crate) fn build_tree(
    program: &Program,
    cone: &FxHashMap<RelId, FxHashSet<Tuple>>,
    base_facts: &[(RelId, Tuple)],
    goal: RelId,
    tuple: &Tuple,
) -> Result<DerivationTree, CaracError> {
    let goal_name = &program.relation(goal).name;
    if !cone.get(&goal).is_some_and(|set| set.contains(tuple)) {
        return Err(CaracError::Explain(format!(
            "{goal_name}({}) is not derivable from the current database",
            tuple
                .values()
                .iter()
                .map(|&v| program.symbols().display(v))
                .collect::<Vec<_>>()
                .join(", ")
        )));
    }

    let mut labeling = Labeling {
        depth: FxHashMap::default(),
        just: FxHashMap::default(),
        by_rel: FxHashMap::default(),
    };
    // Round 0: extensional relations (all their cone facts are base) plus
    // asserted base facts on intensional relations.
    for decl in program.relations() {
        if !decl.is_edb {
            continue;
        }
        if let Some(set) = cone.get(&decl.id) {
            for t in set {
                let key = (decl.id, t.clone());
                labeling.depth.insert(key.clone(), 0);
                labeling.just.insert(key, Just::Fact);
                labeling.by_rel.entry(decl.id).or_default().push(t.clone());
            }
        }
    }
    for (rel, t) in base_facts {
        if program.relation(*rel).is_edb {
            continue; // already covered above
        }
        if !cone.get(rel).is_some_and(|set| set.contains(t)) {
            continue;
        }
        let key = (*rel, t.clone());
        if labeling.depth.contains_key(&key) {
            continue;
        }
        labeling.depth.insert(key.clone(), 0);
        labeling.just.insert(key, Just::Fact);
        labeling.by_rel.entry(*rel).or_default().push(t.clone());
    }

    // Breadth-first rounds until the goal is labeled (or no progress —
    // impossible for cone facts, kept as a safety net).
    let target = (goal, tuple.clone());
    let mut round = 0;
    while !labeling.depth.contains_key(&target) {
        round += 1;
        let mut fresh: Vec<((RelId, Tuple), Just)> = Vec::new();
        let mut seen_fresh: FxHashSet<(RelId, Tuple)> = FxHashSet::default();
        for rule in program.rules() {
            if !cone.contains_key(&rule.head.rel) {
                continue;
            }
            instantiate(rule, &labeling, cone, &mut fresh, &mut seen_fresh);
        }
        label_aggregates(program, &labeling, cone, &mut fresh, &mut seen_fresh);
        if fresh.is_empty() {
            return Err(CaracError::Explain(format!(
                "no derivation found for {goal_name} after {round} rounds \
                 (the fact is in the fixpoint but could not be re-derived)"
            )));
        }
        for (key, just) in fresh {
            labeling.depth.insert(key.clone(), round);
            labeling.just.insert(key.clone(), just);
            labeling.by_rel.entry(key.0).or_default().push(key.1);
        }
    }

    // Memoized extraction: depth-first, emitting children before parents so
    // the arena is topologically ordered.
    let mut nodes: Vec<DerivationNode> = Vec::new();
    let mut memo: FxHashMap<(RelId, Tuple), NodeId> = FxHashMap::default();
    let root = extract(program, &labeling, &target, &mut nodes, &mut memo);
    Ok(DerivationTree { nodes, root })
}

/// Recursively materializes the node for `key`, memoizing shared facts.
fn extract(
    program: &Program,
    labeling: &Labeling,
    key: &(RelId, Tuple),
    nodes: &mut Vec<DerivationNode>,
    memo: &mut FxHashMap<(RelId, Tuple), NodeId>,
) -> NodeId {
    if let Some(&id) = memo.get(key) {
        return id;
    }
    let just = labeling.just.get(key).expect("labeled fact has a just");
    let derivation = match just {
        Just::Fact => Derivation::Fact,
        Just::Rule { rule, premises } => {
            let ids = premises
                .iter()
                .map(|p| extract(program, labeling, p, nodes, memo))
                .collect();
            let rule_ast = program.rule(*rule);
            Derivation::Rule {
                rule: *rule,
                display: program.display_rule(rule_ast),
                premises: ids,
            }
        }
        Just::Aggregate { func, witnesses } => {
            let spec = program
                .aggregate_for(key.0)
                .expect("aggregate just on aggregate output");
            let ids = witnesses
                .iter()
                .map(|w| extract(program, labeling, &(spec.input, w.clone()), nodes, memo))
                .collect();
            Derivation::Aggregate {
                func: *func,
                input: program.relation(spec.input).name.clone(),
                witnesses: ids,
            }
        }
    };
    let id = nodes.len();
    nodes.push(DerivationNode {
        relation: program.relation(key.0).name.clone(),
        row: key
            .1
            .values()
            .iter()
            .map(|&v| program.symbols().display(v))
            .collect(),
        tuple: key.1.clone(),
        depth: *labeling.depth.get(key).expect("labeled"),
        derivation,
    });
    memo.insert(key.clone(), id);
    id
}
