//! Engine configuration.
//!
//! The configuration space mirrors the axes of the paper's evaluation
//! (§VI): execution mode (pure interpretation, adaptive JIT, ahead-of-time
//! "macro" compilation), backend, blocking vs. asynchronous compilation,
//! compilation granularity, indexed vs. unindexed storage, and the
//! semi-naive vs. naive evaluation strategy.

use carac_exec::{BackendKind, CompileMode, JitConfig, TraceConfig};
use carac_ir::EvalStrategy;
use carac_optimizer::OptimizerConfig;

/// How the engine executes a program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionMode {
    /// Pure interpretation of the plan with the atom orders exactly as the
    /// rules were written (the paper's "unoptimized"/"hand-optimized"
    /// baselines, depending on how the input program is formulated).
    Interpreted,
    /// The adaptive JIT: runtime re-optimization plus code generation with
    /// one of the backends.
    Jit(JitConfig),
    /// Ahead-of-time ("macro") optimization: the plan's join orders are
    /// sorted before execution begins, using whatever facts are available at
    /// that point; optionally the online IRGenerator optimization is also
    /// injected.
    AheadOfTime(AotConfig),
}

/// Ahead-of-time optimization configuration (paper §VI-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AotConfig {
    /// Whether the facts known at compile time contribute cardinalities
    /// ("Macro Facts+rules") or only the rule schema is used
    /// ("Macro Rules").
    pub use_fact_cardinalities: bool,
    /// Whether the generated code also reorders online during execution
    /// (the "(online)" variants in Fig. 10), implemented with the
    /// IRGenerator backend.
    pub online_reorder: bool,
    /// Optimizer parameters used for the offline sort.
    pub optimizer: OptimizerConfig,
}

impl Default for AotConfig {
    fn default() -> Self {
        AotConfig {
            use_fact_cardinalities: true,
            online_reorder: true,
            optimizer: OptimizerConfig::ahead_of_time(),
        }
    }
}

/// Complete engine configuration.
///
/// Constructors cover the paper's experiment grid (interpretation, the JIT
/// backends, ahead-of-time optimization); builder methods toggle the
/// orthogonal axes (indexes, evaluation strategy, parallelism):
///
/// ```
/// use carac::EngineConfig;
/// use carac::knobs::{BackendKind, EvalStrategy};
///
/// let jit = EngineConfig::jit(BackendKind::Bytecode, true);
/// assert_eq!(jit.label(), "JIT Bytecode Async");
///
/// let config = EngineConfig::interpreted()
///     .without_indexes()
///     .with_strategy(EvalStrategy::Naive)
///     .with_parallelism(4);
/// assert!(!config.use_indexes);
/// assert_eq!(config.parallelism, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Execution mode.
    pub mode: ExecutionMode,
    /// Whether join-key/filter hash indexes are built (the indexed vs.
    /// unindexed axis of Figures 6–9).
    pub use_indexes: bool,
    /// Evaluation strategy used when generating the plan.
    pub strategy: EvalStrategy,
    /// Worker threads available to the join kernels.  `1` (the default)
    /// evaluates serially; larger values shard each relation's tuple store
    /// and partition rule-body evaluation across a fork-join pool, with
    /// per-shard results merged deterministically before the delta swap —
    /// parallel runs derive exactly the serial fact set.  Works with both
    /// [`EvalStrategy::Naive`] and [`EvalStrategy::SemiNaive`] and with
    /// every execution mode (the bytecode VM itself stays serial; its
    /// interpreted fallbacks parallelize).
    pub parallelism: usize,
    /// Whether the engine runs the static analyzer before planning and
    /// evaluates the pruned program: rules convicted at error level
    /// (unsatisfiable, dead, duplicate, subsumed) are dropped and the
    /// analyzer's column-interval facts feed the cost model as refined
    /// comparison selectivities.  Pruning is semantics-preserving — the
    /// derived fact set is bit-identical with and without it.  One-shot
    /// runs prune against the program's frozen facts (plus any facts
    /// inserted before the run); live (incremental) sessions prune only
    /// update-independent defects so later updates stay sound.  Off by
    /// default.
    pub prune: bool,
    /// Whether artifacts are statically verified before first execution:
    /// generated plans run through `carac_ir::verify_plan` (stratum
    /// ordering, binding safety, arity agreement, loop sanity) and every
    /// JIT-compiled artifact through the backend verifier (for the bytecode
    /// target: jump bounds, def-before-use, cursor discipline, termination).
    /// A failing artifact is rejected with a typed error instead of being
    /// installed.  Defaults to the build's `debug_assertions` setting — on
    /// in debug/CI builds, off in release; [`EngineConfig::with_verify`]
    /// opts release builds in.
    pub verify: bool,
    /// Span tracing.  `None` (the default) disables the tracer — every
    /// instrumentation site then pays a single branch.  `Some(config)`
    /// records begin/end events for run/stratum/iteration/subquery/
    /// aggregate/compile/update-batch/checkpoint/recover phases into a
    /// bounded ring, exported with [`carac_exec::chrome_trace_json`] /
    /// [`carac_exec::metrics_json`].  Per-rule profiles
    /// (`RunStats::rule_profiles`) are always on regardless of this knob.
    pub tracing: Option<TraceConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: ExecutionMode::Jit(JitConfig::default()),
            use_indexes: true,
            strategy: EvalStrategy::SemiNaive,
            parallelism: 1,
            prune: false,
            verify: cfg!(debug_assertions),
            tracing: None,
        }
    }
}

impl EngineConfig {
    /// Pure interpretation with indexes.
    pub fn interpreted() -> Self {
        EngineConfig {
            mode: ExecutionMode::Interpreted,
            ..EngineConfig::default()
        }
    }

    /// Pure interpretation without indexes.
    pub fn interpreted_unindexed() -> Self {
        EngineConfig {
            mode: ExecutionMode::Interpreted,
            use_indexes: false,
            ..EngineConfig::default()
        }
    }

    /// The paper's six JIT configurations: `(backend, async)` with the
    /// default granularity, full compilation.
    pub fn jit(backend: BackendKind, async_compile: bool) -> Self {
        EngineConfig {
            mode: ExecutionMode::Jit(JitConfig::labelled(backend, async_compile)),
            ..EngineConfig::default()
        }
    }

    /// A JIT configuration with full control over the JIT knobs.
    pub fn jit_with(config: JitConfig) -> Self {
        EngineConfig {
            mode: ExecutionMode::Jit(config),
            ..EngineConfig::default()
        }
    }

    /// Ahead-of-time ("macro") configuration.
    pub fn ahead_of_time(use_fact_cardinalities: bool, online_reorder: bool) -> Self {
        EngineConfig {
            mode: ExecutionMode::AheadOfTime(AotConfig {
                use_fact_cardinalities,
                online_reorder,
                optimizer: OptimizerConfig::ahead_of_time(),
            }),
            ..EngineConfig::default()
        }
    }

    /// Disables index construction.
    pub fn without_indexes(mut self) -> Self {
        self.use_indexes = false;
        self
    }

    /// Switches the evaluation strategy (semi-naive by default).
    pub fn with_strategy(mut self, strategy: EvalStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the worker-thread budget for the join kernels (see
    /// [`EngineConfig::parallelism`]).  `0` is treated as `1`.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism.max(1);
        self
    }

    /// Enables analyzer-driven pruning before planning (see
    /// [`EngineConfig::prune`]).
    pub fn with_prune(mut self) -> Self {
        self.prune = true;
        self
    }

    /// Enables span tracing (see [`EngineConfig::tracing`]).
    pub fn with_tracing(mut self, config: TraceConfig) -> Self {
        self.tracing = Some(config);
        self
    }

    /// Sets whether artifacts are statically verified before first
    /// execution (see [`EngineConfig::verify`]).  Use `with_verify(true)`
    /// to opt a release build in, `with_verify(false)` to silence the
    /// debug-build default in a benchmark.
    pub fn with_verify(mut self, verify: bool) -> Self {
        self.verify = verify;
        self
    }

    /// Human-readable label matching the paper's legends ("JIT Lambda
    /// Blocking", "Interpreted", "Macro Facts+Rules (online)", ...).
    pub fn label(&self) -> String {
        match &self.mode {
            ExecutionMode::Interpreted => "Interpreted".to_string(),
            ExecutionMode::Jit(jit) => {
                let backend = match jit.backend {
                    BackendKind::Quotes => "Quotes",
                    BackendKind::Bytecode => "Bytecode",
                    BackendKind::Lambda => "Lambda",
                    BackendKind::IrGen => "IRGenerator",
                };
                let sync = if jit.async_compile {
                    "Async"
                } else {
                    "Blocking"
                };
                let mode = match jit.mode {
                    CompileMode::Full => "",
                    CompileMode::Snippet => " Snippet",
                };
                if jit.backend == BackendKind::IrGen {
                    format!("JIT {backend}")
                } else {
                    format!("JIT {backend} {sync}{mode}")
                }
            }
            ExecutionMode::AheadOfTime(aot) => {
                let facts = if aot.use_fact_cardinalities {
                    "Facts+Rules"
                } else {
                    "Rules"
                };
                let online = if aot.online_reorder { " (online)" } else { "" };
                format!("Macro {facts}{online}")
            }
        }
    }
}

/// Re-exported knobs so downstream crates only need `carac` for common use.
pub mod knobs {
    pub use carac_exec::{BackendKind, CompileMode, StagingCostModel, TraceConfig};
    pub use carac_ir::{EvalStrategy, OpKind};
    pub use carac_optimizer::{OptimizerConfig, ReorderAlgorithm};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_papers_legends() {
        assert_eq!(EngineConfig::interpreted().label(), "Interpreted");
        assert_eq!(
            EngineConfig::jit(BackendKind::Lambda, false).label(),
            "JIT Lambda Blocking"
        );
        assert_eq!(
            EngineConfig::jit(BackendKind::Quotes, true).label(),
            "JIT Quotes Async"
        );
        assert_eq!(
            EngineConfig::jit(BackendKind::IrGen, false).label(),
            "JIT IRGenerator"
        );
        assert_eq!(
            EngineConfig::ahead_of_time(true, true).label(),
            "Macro Facts+Rules (online)"
        );
        assert_eq!(
            EngineConfig::ahead_of_time(false, false).label(),
            "Macro Rules"
        );
    }

    #[test]
    fn builders_compose() {
        let config = EngineConfig::jit(BackendKind::Bytecode, true).without_indexes();
        assert!(!config.use_indexes);
        assert_eq!(config.strategy, EvalStrategy::SemiNaive);
        let naive = EngineConfig::interpreted().with_strategy(EvalStrategy::Naive);
        assert_eq!(naive.strategy, EvalStrategy::Naive);
    }

    #[test]
    fn parallelism_defaults_to_serial_and_clamps() {
        assert_eq!(EngineConfig::default().parallelism, 1);
        assert_eq!(
            EngineConfig::interpreted().with_parallelism(8).parallelism,
            8
        );
        assert_eq!(
            EngineConfig::interpreted().with_parallelism(0).parallelism,
            1
        );
        // The knob composes with every mode without changing the label.
        let parallel = EngineConfig::jit(BackendKind::Lambda, false).with_parallelism(4);
        assert_eq!(parallel.label(), "JIT Lambda Blocking");
    }

    #[test]
    fn prune_is_off_by_default_and_composes() {
        assert!(!EngineConfig::default().prune);
        let pruned = EngineConfig::interpreted().with_prune().with_parallelism(2);
        assert!(pruned.prune);
        assert_eq!(pruned.parallelism, 2);
        assert_eq!(pruned.label(), "Interpreted");
    }

    #[test]
    fn verify_follows_debug_assertions_and_composes() {
        assert_eq!(EngineConfig::default().verify, cfg!(debug_assertions));
        let on = EngineConfig::interpreted().with_verify(true).with_prune();
        assert!(on.verify);
        assert!(on.prune);
        let off = EngineConfig::jit(BackendKind::Bytecode, false).with_verify(false);
        assert!(!off.verify);
        assert_eq!(off.label(), "JIT Bytecode Blocking");
    }

    #[test]
    fn tracing_is_off_by_default_and_composes() {
        assert!(EngineConfig::default().tracing.is_none());
        let traced = EngineConfig::interpreted()
            .with_tracing(TraceConfig::default().with_span_capacity(1024))
            .with_parallelism(2);
        assert_eq!(traced.tracing.unwrap().span_capacity, 1024);
        assert_eq!(traced.parallelism, 2);
        assert_eq!(traced.label(), "Interpreted");
    }
}
