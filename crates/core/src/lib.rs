//! # carac
//!
//! Carac-rs: **adaptive recursive query optimization** in Rust — a
//! reproduction of the ICDE 2024 paper *"Adaptive Recursive Query
//! Optimization"* (Herlihy, Martres, Ailamaki, Odersky).
//!
//! Carac is a Datalog engine whose join orders are not fixed at query
//! compile time: the engine re-optimizes the conjunctive subqueries of the
//! semi-naive evaluation *while the query runs*, using the live relation
//! cardinalities instead of cross-iteration cardinality estimates, and
//! regenerates executable code for the re-optimized subqueries through a
//! set of runtime compilation backends.
//!
//! ## Quick start
//!
//! ```
//! use carac::{Carac, EngineConfig};
//! use carac::knobs::BackendKind;
//! use carac_datalog::parser::parse;
//!
//! let program = parse(
//!     "Path(x, y) :- Edge(x, y).\n\
//!      Path(x, y) :- Edge(x, z), Path(z, y).\n\
//!      Edge(1, 2). Edge(2, 3). Edge(3, 4).",
//! ).unwrap();
//!
//! // Adaptive JIT with the lambda backend (the default).
//! let result = Carac::new(program.clone()).run().unwrap();
//! assert_eq!(result.count("Path").unwrap(), 6);
//!
//! // Pure interpretation, or any of the paper's JIT configurations.
//! let interpreted = Carac::new(program.clone())
//!     .with_config(EngineConfig::interpreted())
//!     .run().unwrap();
//! let bytecode = Carac::new(program)
//!     .with_config(EngineConfig::jit(BackendKind::Bytecode, true))
//!     .run().unwrap();
//! assert_eq!(interpreted.count("Path").unwrap(), bytecode.count("Path").unwrap());
//! ```
//!
//! ## Crate layout
//!
//! This crate is the facade; the heavy lifting lives in the substrate
//! crates, all re-exported here for convenience:
//!
//! * [`carac_datalog`] — AST, parser, builder DSL, stratification,
//! * [`carac_ir`] — the IROp logical plan and its generation,
//! * [`carac_optimizer`] — the cardinality/selectivity/index cost model and
//!   the greedy & sort-based reordering algorithms,
//! * [`carac_exec`] — interpreter, JIT controller, compilation backends,
//! * [`carac_vm`] — the relational bytecode VM behind the bytecode backend,
//! * [`carac_storage`] — tuples, relations, indexes and the semi-naive
//!   evaluation databases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aot;
pub mod config;
pub mod engine;
pub mod error;
pub mod explain;
pub mod persist;
pub mod result;

pub use config::knobs;
pub use config::{AotConfig, EngineConfig, ExecutionMode};
pub use engine::Carac;
pub use error::CaracError;
pub use explain::{Derivation, DerivationNode, DerivationTree, NodeId};
pub use result::{QueryAnswer, QueryResult};

// Incremental maintenance surface (see `Carac::apply_update`).
pub use carac_exec::{RunStats, UpdateBatch, UpdateOp, UpdateReport, UpdateStats};
pub use carac_storage::DeltaSign;

// Durable-storage surface (see `Carac::checkpoint` / `Carac::recover`).
pub use carac_storage::PersistError;
pub use persist::RecoveryReport;

// Observability surface (see `EngineConfig::with_tracing`).
pub use carac_exec::{
    chrome_trace_json, metrics_json, write_chrome_trace, write_metrics_snapshot, EventKind, Phase,
    ProfileTable, RuleProfile, TraceConfig, TraceEvent,
};

// Goal-directed query surface (see `Carac::query`).
pub use carac_datalog::magic::QueryBinding;

// Static-analysis surface (see `Carac::analyze` and `EngineConfig::prune`).
pub use carac_datalog::{
    analyze, analyze_with, prune, prune_with, Analysis, AnalysisOptions, Diagnostic,
    DiagnosticCode, DropReason, PrunedProgram, Severity,
};

// Re-export the substrate crates under stable names.
pub use carac_datalog as datalog;
pub use carac_exec as exec;
pub use carac_ir as ir;
pub use carac_optimizer as optimizer;
pub use carac_storage as storage;
pub use carac_vm as vm;
