//! Top-level error type of the `carac` facade.

use std::fmt;

/// Any error the engine can produce, from parsing to execution.
#[derive(Debug, Clone, PartialEq)]
pub enum CaracError {
    /// Frontend (parsing, validation, stratification) error.
    Datalog(carac_datalog::DatalogError),
    /// Execution error.
    Exec(carac_exec::ExecError),
    /// Storage error outside the execution path (e.g. loading facts).
    Storage(carac_storage::StorageError),
    /// Provenance reconstruction failure: the fact handed to
    /// [`Carac::explain`] is not derivable, or (internal invariant
    /// violation) its derivation could not be rebuilt.
    ///
    /// [`Carac::explain`]: crate::engine::Carac::explain
    Explain(String),
    /// Durable-storage failure: a checkpoint, journal or recovery operation
    /// hit an I/O error or detected on-disk corruption.  Corrupt files are
    /// *rejected* with this variant, never deserialized into a session.
    Persist(carac_storage::PersistError),
}

impl fmt::Display for CaracError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaracError::Datalog(err) => write!(f, "{err}"),
            CaracError::Exec(err) => write!(f, "{err}"),
            CaracError::Storage(err) => write!(f, "{err}"),
            CaracError::Explain(msg) => write!(f, "explain: {msg}"),
            CaracError::Persist(err) => write!(f, "{err}"),
        }
    }
}

impl std::error::Error for CaracError {}

impl From<carac_datalog::DatalogError> for CaracError {
    fn from(err: carac_datalog::DatalogError) -> Self {
        CaracError::Datalog(err)
    }
}

impl From<carac_exec::ExecError> for CaracError {
    fn from(err: carac_exec::ExecError) -> Self {
        CaracError::Exec(err)
    }
}

impl From<carac_storage::StorageError> for CaracError {
    fn from(err: carac_storage::StorageError) -> Self {
        CaracError::Storage(err)
    }
}

impl From<carac_storage::PersistError> for CaracError {
    fn from(err: carac_storage::PersistError) -> Self {
        CaracError::Persist(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_frontend_errors() {
        let err: CaracError =
            carac_datalog::DatalogError::UnknownRelation("Foo".to_string()).into();
        assert!(err.to_string().contains("Foo"));
    }

    #[test]
    fn wraps_exec_errors() {
        let err: CaracError = carac_exec::ExecError::Internal("boom".to_string()).into();
        assert!(err.to_string().contains("boom"));
    }
}
