//! Precedence graph, strongly connected components, and stratification.
//!
//! The precedence graph has one node per relation and an edge `B → A`
//! whenever `B` occurs in the body of a rule with head `A` ("A depends on
//! B").  Relations in the same strongly connected component are mutually
//! recursive and must be evaluated together in one fixpoint; the condensation
//! of the graph, topologically ordered, yields the evaluation *strata*
//! (paper §V-A: "generation of a precedence graph so that relations that
//! rely on other relations will be calculated only after their dependencies
//! are calculated").
//!
//! Stratified negation additionally requires that a negated dependency never
//! stays inside one SCC: `A :- ..., !B, ...` with `A` and `B` mutually
//! recursive has no least fixpoint and is rejected.

use carac_storage::hasher::FxHashSet;
use carac_storage::RelId;

use crate::ast::{AggregateSpec, RelationDecl, Rule, RuleId};
use crate::error::DatalogError;

/// One stratum: a set of relations evaluated in a single semi-naive fixpoint
/// together with the rules that define them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stratum {
    /// Relations computed by this stratum (IDB relations only).
    pub relations: Vec<RelId>,
    /// Rules whose head belongs to this stratum.
    pub rules: Vec<RuleId>,
    /// Whether any rule in the stratum is recursive (its body mentions a
    /// relation of the same stratum).  Non-recursive strata need a single
    /// pass rather than a fixpoint loop.
    pub recursive: bool,
}

/// The full stratification of a program, in evaluation order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Stratification {
    strata: Vec<Stratum>,
}

impl Stratification {
    /// Strata in evaluation order (dependencies first).
    pub fn strata(&self) -> &[Stratum] {
        &self.strata
    }

    /// Number of strata.
    pub fn len(&self) -> usize {
        self.strata.len()
    }

    /// Whether there are no strata (a facts-only program).
    pub fn is_empty(&self) -> bool {
        self.strata.is_empty()
    }

    /// Computes the stratification of `rules` (and `aggregates`) over
    /// `decls`.  An aggregation contributes a dependency edge from its
    /// output to its input.  When that edge crosses strata the aggregate is
    /// stratified — like negation, the input is fully computed before the
    /// fold runs once.  When output and input land in the same SCC the
    /// aggregate is recursive; because all four aggregation functions are
    /// monotone over growing input sets (min/max over the value lattice,
    /// sum/count over saturating naturals), it is classified as a monotone
    /// *lattice* fold (`spec.lattice = true`) that re-runs inside the
    /// stratum's fixpoint loop instead of being rejected.
    pub fn compute(
        decls: &[RelationDecl],
        rules: &[Rule],
        aggregates: &mut [AggregateSpec],
    ) -> Result<Self, DatalogError> {
        let n = decls.len();

        // adjacency: dependencies[a] = set of relations a's rules read.
        let mut deps: Vec<FxHashSet<usize>> = vec![FxHashSet::default(); n];
        let mut negative_deps: Vec<FxHashSet<usize>> = vec![FxHashSet::default(); n];
        for rule in rules {
            let head = rule.head.rel.index();
            for literal in &rule.body {
                let body_rel = literal.atom.rel.index();
                deps[head].insert(body_rel);
                if literal.negated {
                    negative_deps[head].insert(body_rel);
                }
            }
        }
        for spec in aggregates.iter() {
            deps[spec.output.index()].insert(spec.input.index());
        }

        let sccs = tarjan_sccs(n, &deps);

        // Map each relation to its SCC index.
        let mut scc_of = vec![usize::MAX; n];
        for (scc_idx, members) in sccs.iter().enumerate() {
            for &m in members {
                scc_of[m] = scc_idx;
            }
        }

        // Reject negation inside an SCC.
        for rule in rules {
            let head = rule.head.rel.index();
            for literal in rule.negative_body() {
                let body_rel = literal.atom.rel.index();
                if scc_of[head] == scc_of[body_rel] {
                    return Err(DatalogError::NotStratifiable {
                        head: decls[head].name.clone(),
                        negated: decls[body_rel].name.clone(),
                    });
                }
            }
        }
        // Classify each aggregate: output and input in the same SCC means
        // the fold participates in that stratum's fixpoint (monotone lattice
        // mode); otherwise it is an ordinary stratified aggregate whose
        // input is finalized before the fold runs once.
        for spec in aggregates.iter_mut() {
            spec.lattice = scc_of[spec.output.index()] == scc_of[spec.input.index()];
        }

        // Tarjan emits SCCs in reverse topological order of the condensation
        // when edges point from dependent to dependency... Our `deps` edges
        // go head -> body (head depends on body), and Tarjan's algorithm
        // emits an SCC only after all SCCs reachable from it have been
        // emitted — i.e. dependencies are emitted first.  That is exactly
        // evaluation order.
        let mut strata = Vec::new();
        for members in &sccs {
            // Only intensional relations form strata worth evaluating.
            let relations: Vec<RelId> = members
                .iter()
                .copied()
                .filter(|&m| !decls[m].is_edb)
                .map(|m| RelId(m as u32))
                .collect();
            if relations.is_empty() {
                continue;
            }
            let member_set: FxHashSet<usize> = members.iter().copied().collect();
            let stratum_rules: Vec<RuleId> = rules
                .iter()
                .filter(|r| member_set.contains(&r.head.rel.index()))
                .map(|r| r.id)
                .collect();
            let recursive = rules.iter().any(|r| {
                member_set.contains(&r.head.rel.index())
                    && r.body
                        .iter()
                        .any(|l| member_set.contains(&l.atom.rel.index()))
            });
            strata.push(Stratum {
                relations,
                rules: stratum_rules,
                recursive,
            });
        }

        Ok(Stratification { strata })
    }
}

/// Iterative Tarjan SCC over a graph given as adjacency sets.
///
/// Returns the SCCs in an order where every SCC appears after all SCCs it
/// has edges into (i.e. dependencies first, given edges point from dependent
/// to dependency).
fn tarjan_sccs(n: usize, adj: &[FxHashSet<usize>]) -> Vec<Vec<usize>> {
    #[derive(Clone, Copy)]
    struct NodeState {
        index: u32,
        lowlink: u32,
        on_stack: bool,
        visited: bool,
    }

    let mut state = vec![
        NodeState {
            index: 0,
            lowlink: 0,
            on_stack: false,
            visited: false,
        };
        n
    ];
    let mut next_index: u32 = 0;
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, iterator position over its deps).
    for start in 0..n {
        if state[start].visited {
            continue;
        }
        let mut call_stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
        let neighbors: Vec<usize> = adj[start].iter().copied().collect();
        state[start].visited = true;
        state[start].index = next_index;
        state[start].lowlink = next_index;
        next_index += 1;
        stack.push(start);
        state[start].on_stack = true;
        call_stack.push((start, neighbors, 0));

        while let Some((node, neighbors, mut pos)) = call_stack.pop() {
            let mut descended = false;
            while pos < neighbors.len() {
                let next = neighbors[pos];
                pos += 1;
                if !state[next].visited {
                    // Descend.
                    state[next].visited = true;
                    state[next].index = next_index;
                    state[next].lowlink = next_index;
                    next_index += 1;
                    stack.push(next);
                    state[next].on_stack = true;
                    let next_neighbors: Vec<usize> = adj[next].iter().copied().collect();
                    call_stack.push((node, neighbors, pos));
                    call_stack.push((next, next_neighbors, 0));
                    descended = true;
                    break;
                } else if state[next].on_stack {
                    state[node].lowlink = state[node].lowlink.min(state[next].index);
                }
            }
            if descended {
                continue;
            }
            // Node finished.
            if state[node].lowlink == state[node].index {
                let mut scc = Vec::new();
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    state[w].on_stack = false;
                    scc.push(w);
                    if w == node {
                        break;
                    }
                }
                scc.sort_unstable();
                sccs.push(scc);
            }
            // Propagate lowlink to parent.
            if let Some((parent, _, _)) = call_stack.last() {
                let parent = *parent;
                state[parent].lowlink = state[parent].lowlink.min(state[node].lowlink);
            }
        }
    }
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    #[test]
    fn single_recursive_stratum() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Path", 2);
        b.rule("Path", &["x", "y"]).when("Edge", &["x", "y"]).end();
        b.rule("Path", &["x", "y"])
            .when("Edge", &["x", "z"])
            .when("Path", &["z", "y"])
            .end();
        let p = b.build().unwrap();
        let strat = p.stratification();
        assert_eq!(strat.len(), 1);
        assert!(strat.strata()[0].recursive);
        assert_eq!(strat.strata()[0].rules.len(), 2);
    }

    #[test]
    fn dependencies_evaluate_before_dependents() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Path", 2);
        b.relation("Reachable", 1);
        b.rule("Path", &["x", "y"]).when("Edge", &["x", "y"]).end();
        b.rule("Path", &["x", "y"])
            .when("Edge", &["x", "z"])
            .when("Path", &["z", "y"])
            .end();
        b.rule("Reachable", &["y"]).when("Path", &["x", "y"]).end();
        let p = b.build().unwrap();
        let strat = p.stratification();
        assert_eq!(strat.len(), 2);
        let path = p.relation_by_name("Path").unwrap();
        let reach = p.relation_by_name("Reachable").unwrap();
        assert_eq!(strat.strata()[0].relations, vec![path]);
        assert_eq!(strat.strata()[1].relations, vec![reach]);
        assert!(!strat.strata()[1].recursive);
    }

    #[test]
    fn mutual_recursion_lands_in_one_stratum() {
        let mut b = ProgramBuilder::new();
        b.relation("Base", 2);
        b.relation("A", 2);
        b.relation("B", 2);
        b.rule("A", &["x", "y"]).when("Base", &["x", "y"]).end();
        b.rule("A", &["x", "y"]).when("B", &["x", "y"]).end();
        b.rule("B", &["x", "y"]).when("A", &["y", "x"]).end();
        let p = b.build().unwrap();
        assert_eq!(p.stratification().len(), 1);
        assert_eq!(p.stratification().strata()[0].relations.len(), 2);
    }

    #[test]
    fn stratified_negation_is_accepted() {
        let mut b = ProgramBuilder::new();
        b.relation("Num", 1);
        b.relation("Composite", 1);
        b.relation("Prime", 1);
        b.rule("Composite", &["x"]).when("Num", &["x"]).end();
        b.rule("Prime", &["x"])
            .when("Num", &["x"])
            .when_not("Composite", &["x"])
            .end();
        let p = b.build().unwrap();
        assert_eq!(p.stratification().len(), 2);
    }

    #[test]
    fn negation_through_recursion_is_rejected() {
        let mut b = ProgramBuilder::new();
        b.relation("Base", 1);
        b.relation("Win", 1);
        b.relation("Lose", 1);
        b.rule("Win", &["x"])
            .when("Base", &["x"])
            .when_not("Lose", &["x"])
            .end();
        b.rule("Lose", &["x"])
            .when("Base", &["x"])
            .when_not("Win", &["x"])
            .end();
        assert!(matches!(
            b.build(),
            Err(DatalogError::NotStratifiable { .. })
        ));
    }

    #[test]
    fn tarjan_on_diamond_graph() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 ; no cycles, 4 singleton SCCs, with
        // 3 (the sink / dependency) emitted before 0.
        let mut adj = vec![FxHashSet::default(); 4];
        adj[0].insert(1);
        adj[0].insert(2);
        adj[1].insert(3);
        adj[2].insert(3);
        let sccs = tarjan_sccs(4, &adj);
        assert_eq!(sccs.len(), 4);
        let pos = |x: usize| sccs.iter().position(|s| s.contains(&x)).unwrap();
        assert!(pos(3) < pos(1));
        assert!(pos(3) < pos(2));
        assert!(pos(1) < pos(0));
    }

    #[test]
    fn tarjan_detects_cycles() {
        // 0 <-> 1, 2 alone depending on the cycle.
        let mut adj = vec![FxHashSet::default(); 3];
        adj[0].insert(1);
        adj[1].insert(0);
        adj[2].insert(0);
        let sccs = tarjan_sccs(3, &adj);
        assert_eq!(sccs.len(), 2);
        assert_eq!(sccs[0], vec![0, 1]);
        assert_eq!(sccs[1], vec![2]);
    }
}
