//! Abstract syntax of Datalog programs.
//!
//! A program is a set of relation declarations, ground facts, and rules of
//! the form `R0(v...) :- L1, ..., Ln` where each literal `Li` is a possibly
//! negated atom (paper §II-A).  Variables are normalized per rule to dense
//! [`VarId`]s by the builder/parser; the original names are retained for
//! diagnostics and display.

use std::fmt;

use carac_storage::{AggFunc, CmpOp, RelId, Value};

/// A rule identifier, dense per program in definition order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RuleId(pub u32);

impl RuleId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rule#{}", self.0)
    }
}

/// A rule-local variable, dense in order of first occurrence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A term: either a rule-local variable or a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// Rule-local variable.
    Var(VarId),
    /// Ground constant (interned).
    Const(Value),
}

impl Term {
    /// The variable id, if this term is a variable.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant value, if this term is a constant.
    pub fn as_const(self) -> Option<Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }
}

/// An atom `R(t1, ..., tk)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Relation referenced by the atom.
    pub rel: RelId,
    /// Terms, one per column of the relation.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(rel: RelId, terms: Vec<Term>) -> Self {
        Atom { rel, terms }
    }

    /// Number of terms.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterator over the variables of the atom together with their column
    /// positions.
    pub fn variables(&self) -> impl Iterator<Item = (usize, VarId)> + '_ {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_var().map(|v| (i, v)))
    }

    /// Iterator over constant positions.
    pub fn constants(&self) -> impl Iterator<Item = (usize, Value)> + '_ {
        self.terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_const().map(|c| (i, c)))
    }
}

/// A possibly negated atom in a rule body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Literal {
    /// The underlying atom.
    pub atom: Atom,
    /// Whether the literal is negated (`!R(...)`).
    pub negated: bool,
}

impl Literal {
    /// A positive literal.
    pub fn positive(atom: Atom) -> Self {
        Literal {
            atom,
            negated: false,
        }
    }

    /// A negated literal.
    pub fn negative(atom: Atom) -> Self {
        Literal {
            atom,
            negated: true,
        }
    }
}

/// A comparison constraint in a rule body: `lhs op rhs` where each operand
/// is a variable or a constant (`x < y`, `d <= 10`, `a != b`, ...).
///
/// Constraints are filters, not generators: every variable they mention must
/// be bound by a positive body literal (enforced by validation), and the
/// engines evaluate them at the earliest join level that binds both
/// operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Constraint {
    /// The comparison operator.
    pub op: CmpOp,
    /// Left operand.
    pub lhs: Term,
    /// Right operand.
    pub rhs: Term,
}

impl Constraint {
    /// The variables mentioned by the constraint (0, 1 or 2).
    pub fn variables(&self) -> impl Iterator<Item = VarId> {
        [self.lhs, self.rhs].into_iter().filter_map(Term::as_var)
    }

    /// Evaluates the constraint when both operands are constants.  Returns
    /// `None` when a variable is involved.
    pub fn eval_const(&self) -> Option<bool> {
        match (self.lhs, self.rhs) {
            (Term::Const(a), Term::Const(b)) => Some(self.op.eval(a, b)),
            _ => None,
        }
    }
}

/// A stratified aggregation attached to a program: the rows of `input`
/// (fully computed in a lower stratum) are grouped by every column *not*
/// listed in `aggs`, the listed columns are folded with their aggregation
/// functions, and one row per group is inserted into `output`.
///
/// The frontend materializes one spec per aggregated output relation:
/// writing `Dist(y, min d) :- Body` declares a hidden input relation holding
/// the raw `(y, d)` projections of `Body` and records the `(column 1, Min)`
/// spec against `Dist`.
///
/// When input and output end up in *different* strata the aggregate is
/// stratified: it crosses strata exactly like negation and the fold runs
/// once, after the input stratum reaches its fixpoint.  When they share a
/// recursive stratum (`Dist(y, min d) :- Dist(x, d1), ...`) the aggregate is
/// a **monotone lattice fold** (`lattice` is set by stratification): the
/// fold re-runs inside the stratum's fixpoint loop and a group re-enters the
/// delta only when its folded value strictly improves.  All four functions
/// are monotone over growing input sets (min/max over the value lattice,
/// sum/count over naturals), so the fixpoint still terminates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregateSpec {
    /// Relation receiving the aggregated rows.
    pub output: RelId,
    /// Hidden relation holding the raw (pre-aggregation) rows.
    pub input: RelId,
    /// `(column, function)` pairs; every other column is a group key.
    pub aggs: Vec<(usize, AggFunc)>,
    /// `true` when input and output share a recursive stratum and the fold
    /// runs inside that stratum's fixpoint loop (monotone lattice mode);
    /// `false` for ordinary stratified aggregation.
    pub lattice: bool,
}

/// Where a rule came from, for diagnostics: an optional builder-side label
/// and the optional 1-based `(line, column)` of the rule head in the parsed
/// source.  Both are empty for rules synthesized by rewrites (aggregation
/// inputs, magic sets) unless the rewrite forwards the original origin.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleOrigin {
    /// Human-readable label attached via `RuleBuilder::label`.
    pub label: Option<String>,
    /// 1-based `(line, column)` of the rule head in the source text.
    pub position: Option<(usize, usize)>,
}

impl RuleOrigin {
    /// `true` when neither a label nor a position is recorded.
    pub fn is_empty(&self) -> bool {
        self.label.is_none() && self.position.is_none()
    }

    /// Renders the origin for diagnostics (`"tc-step" at 3:1`, `at 3:1`,
    /// `"tc-step"`), or `None` when nothing is recorded.
    pub fn describe(&self) -> Option<String> {
        match (&self.label, self.position) {
            (Some(label), Some((line, col))) => Some(format!("\"{label}\" at {line}:{col}")),
            (Some(label), None) => Some(format!("\"{label}\"")),
            (None, Some((line, col))) => Some(format!("at {line}:{col}")),
            (None, None) => None,
        }
    }
}

/// A Datalog rule `head :- body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Identifier of the rule within its program.
    pub id: RuleId,
    /// Head atom (always positive, relation must be intensional).
    pub head: Atom,
    /// Body literals.  The order is semantically irrelevant but is the
    /// "input order" the join-order optimizer starts from.
    pub body: Vec<Literal>,
    /// Comparison constraints between body-bound variables and constants.
    pub constraints: Vec<Constraint>,
    /// Variable names in [`VarId`] order, kept for diagnostics.
    pub var_names: Vec<String>,
    /// Source provenance (label and/or parser position), kept for
    /// diagnostics.
    pub origin: RuleOrigin,
}

impl Rule {
    /// Number of distinct variables in the rule.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// The positive body literals, in order.
    pub fn positive_body(&self) -> impl Iterator<Item = &Literal> {
        self.body.iter().filter(|l| !l.negated)
    }

    /// The negated body literals, in order.
    pub fn negative_body(&self) -> impl Iterator<Item = &Literal> {
        self.body.iter().filter(|l| l.negated)
    }

    /// Returns a copy of the rule with its *positive* body atoms permuted
    /// according to `order` (indices into the positive body).  Negated
    /// literals keep their relative order and stay at the end.
    ///
    /// Reordering atoms does not change Datalog semantics (paper §IV), so
    /// this is the primitive used both by the "hand-optimized" program
    /// variants and by the optimizer when rewriting rules statically.
    pub fn with_positive_order(&self, order: &[usize]) -> Rule {
        let positives: Vec<&Literal> = self.positive_body().collect();
        assert_eq!(
            order.len(),
            positives.len(),
            "permutation must cover every positive literal"
        );
        let mut body: Vec<Literal> = order.iter().map(|&i| positives[i].clone()).collect();
        body.extend(self.negative_body().cloned());
        Rule {
            id: self.id,
            head: self.head.clone(),
            body,
            constraints: self.constraints.clone(),
            var_names: self.var_names.clone(),
            origin: self.origin.clone(),
        }
    }
}

/// A relation declaration as seen by the frontend.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationDecl {
    /// Id assigned in declaration order.
    pub id: RelId,
    /// Relation name.
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// Whether the relation is extensional (cannot appear in rule heads).
    /// This is computed: a relation is intensional iff it appears in at
    /// least one rule head.
    pub is_edb: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(rel: u32, terms: Vec<Term>) -> Atom {
        Atom::new(RelId(rel), terms)
    }

    #[test]
    fn atom_variable_and_constant_iteration() {
        let a = atom(
            0,
            vec![
                Term::Var(VarId(0)),
                Term::Const(Value::int(7)),
                Term::Var(VarId(1)),
            ],
        );
        let vars: Vec<_> = a.variables().collect();
        assert_eq!(vars, vec![(0, VarId(0)), (2, VarId(1))]);
        let consts: Vec<_> = a.constants().collect();
        assert_eq!(consts, vec![(1, Value::int(7))]);
        assert_eq!(a.arity(), 3);
    }

    #[test]
    fn with_positive_order_permutes_only_positive_literals() {
        let rule = Rule {
            id: RuleId(0),
            head: atom(0, vec![Term::Var(VarId(0))]),
            body: vec![
                Literal::positive(atom(1, vec![Term::Var(VarId(0))])),
                Literal::negative(atom(3, vec![Term::Var(VarId(0))])),
                Literal::positive(atom(2, vec![Term::Var(VarId(0))])),
            ],
            constraints: vec![],
            var_names: vec!["x".into()],
            origin: RuleOrigin::default(),
        };
        let reordered = rule.with_positive_order(&[1, 0]);
        let rels: Vec<RelId> = reordered.body.iter().map(|l| l.atom.rel).collect();
        assert_eq!(rels, vec![RelId(2), RelId(1), RelId(3)]);
        assert!(reordered.body[2].negated);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn with_positive_order_rejects_short_permutation() {
        let rule = Rule {
            id: RuleId(0),
            head: atom(0, vec![Term::Var(VarId(0))]),
            body: vec![
                Literal::positive(atom(1, vec![Term::Var(VarId(0))])),
                Literal::positive(atom(2, vec![Term::Var(VarId(0))])),
            ],
            constraints: vec![],
            var_names: vec!["x".into()],
            origin: RuleOrigin::default(),
        };
        let _ = rule.with_positive_order(&[0]);
    }

    #[test]
    fn rule_origin_describe_renders_label_and_position() {
        assert_eq!(RuleOrigin::default().describe(), None);
        assert!(RuleOrigin::default().is_empty());
        let labelled = RuleOrigin {
            label: Some("tc-step".into()),
            position: None,
        };
        assert_eq!(labelled.describe().as_deref(), Some("\"tc-step\""));
        let placed = RuleOrigin {
            label: None,
            position: Some((3, 1)),
        };
        assert_eq!(placed.describe().as_deref(), Some("at 3:1"));
        let both = RuleOrigin {
            label: Some("tc-step".into()),
            position: Some((3, 1)),
        };
        assert_eq!(both.describe().as_deref(), Some("\"tc-step\" at 3:1"));
    }

    #[test]
    fn term_accessors() {
        assert_eq!(Term::Var(VarId(3)).as_var(), Some(VarId(3)));
        assert_eq!(Term::Var(VarId(3)).as_const(), None);
        assert_eq!(Term::Const(Value::int(1)).as_const(), Some(Value::int(1)));
    }
}
