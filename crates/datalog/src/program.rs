//! The validated, fully resolved Datalog program.

use carac_storage::{RelId, SymbolTable, Tuple};

use crate::ast::{AggregateSpec, RelationDecl, Rule, RuleId};
use crate::error::DatalogError;
use crate::precedence::Stratification;

/// A complete, validated Datalog program: relation declarations, rules,
/// ground facts, stratified aggregations, interned symbols, and its
/// stratification.
///
/// `Program` is immutable once built; the engine owns its own mutable
/// storage and treats the program purely as a query description.
#[derive(Debug, Clone)]
pub struct Program {
    relations: Vec<RelationDecl>,
    rules: Vec<Rule>,
    facts: Vec<(RelId, Tuple)>,
    aggregates: Vec<AggregateSpec>,
    symbols: SymbolTable,
    stratification: Stratification,
}

impl Program {
    /// Assembles a program from its parts.  Intended to be called by the
    /// builder after validation; library users normally go through
    /// [`ProgramBuilder`](crate::builder::ProgramBuilder) or the parser.
    pub(crate) fn new(
        relations: Vec<RelationDecl>,
        rules: Vec<Rule>,
        facts: Vec<(RelId, Tuple)>,
        aggregates: Vec<AggregateSpec>,
        symbols: SymbolTable,
        stratification: Stratification,
    ) -> Self {
        Program {
            relations,
            rules,
            facts,
            aggregates,
            symbols,
            stratification,
        }
    }

    /// All relation declarations in id order.
    pub fn relations(&self) -> &[RelationDecl] {
        &self.relations
    }

    /// Declaration of a single relation.
    pub fn relation(&self, id: RelId) -> &RelationDecl {
        &self.relations[id.index()]
    }

    /// Looks a relation up by name.
    pub fn relation_by_name(&self, name: &str) -> Result<RelId, DatalogError> {
        self.relations
            .iter()
            .find(|r| r.name == name)
            .map(|r| r.id)
            .ok_or_else(|| DatalogError::UnknownRelation(name.to_string()))
    }

    /// All rules in definition order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// A single rule.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.index()]
    }

    /// Rules whose head is `rel`.
    pub fn rules_for(&self, rel: RelId) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(move |r| r.head.rel == rel)
    }

    /// Ground facts attached to the program (facts can also be inserted into
    /// the engine at runtime; these are the statically known ones).
    pub fn facts(&self) -> &[(RelId, Tuple)] {
        &self.facts
    }

    /// The stratified aggregations of the program, one per aggregate rule.
    pub fn aggregates(&self) -> &[AggregateSpec] {
        &self.aggregates
    }

    /// The aggregation producing `rel`, if `rel` is an aggregated relation.
    pub fn aggregate_for(&self, rel: RelId) -> Option<&AggregateSpec> {
        self.aggregates.iter().find(|a| a.output == rel)
    }

    /// The symbol table used to intern string constants.
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// The stratification (strata in evaluation order).
    pub fn stratification(&self) -> &Stratification {
        &self.stratification
    }

    /// Ids of all intensional relations.
    pub fn idb_relations(&self) -> Vec<RelId> {
        self.relations
            .iter()
            .filter(|r| !r.is_edb)
            .map(|r| r.id)
            .collect()
    }

    /// Ids of all extensional relations.
    pub fn edb_relations(&self) -> Vec<RelId> {
        self.relations
            .iter()
            .filter(|r| r.is_edb)
            .map(|r| r.id)
            .collect()
    }

    /// Returns a copy of the program with the positive body atoms of every
    /// rule permuted by `permute(rule) -> order`.  Used to derive the
    /// "unoptimized" and "hand-optimized" formulations of a workload and by
    /// the ahead-of-time ("macro") optimizer.
    pub fn map_rule_orders<F>(&self, mut permute: F) -> Program
    where
        F: FnMut(&Rule) -> Option<Vec<usize>>,
    {
        let rules = self
            .rules
            .iter()
            .map(|r| match permute(r) {
                Some(order) => r.with_positive_order(&order),
                None => r.clone(),
            })
            .collect();
        Program {
            relations: self.relations.clone(),
            rules,
            facts: self.facts.clone(),
            aggregates: self.aggregates.clone(),
            symbols: self.symbols.clone(),
            stratification: self.stratification.clone(),
        }
    }

    /// Human-readable rendering of a rule (used in error messages and the
    /// `Display` of plans).
    pub fn display_rule(&self, rule: &Rule) -> String {
        let atom = |a: &crate::ast::Atom| {
            let terms: Vec<String> = a
                .terms
                .iter()
                .map(|t| match t {
                    crate::ast::Term::Var(v) => rule
                        .var_names
                        .get(v.index())
                        .cloned()
                        .unwrap_or_else(|| format!("{v:?}")),
                    crate::ast::Term::Const(c) => self.symbols.display(*c),
                })
                .collect();
            format!("{}({})", self.relation(a.rel).name, terms.join(", "))
        };
        let term = |t: &crate::ast::Term| match t {
            crate::ast::Term::Var(v) => rule
                .var_names
                .get(v.index())
                .cloned()
                .unwrap_or_else(|| format!("{v:?}")),
            crate::ast::Term::Const(c) => self.symbols.display(*c),
        };
        let mut body: Vec<String> = rule
            .body
            .iter()
            .map(|l| {
                if l.negated {
                    format!("!{}", atom(&l.atom))
                } else {
                    atom(&l.atom)
                }
            })
            .collect();
        body.extend(
            rule.constraints
                .iter()
                .map(|c| format!("{} {} {}", term(&c.lhs), c.op.symbol(), term(&c.rhs))),
        );
        if body.is_empty() {
            format!("{}.", atom(&rule.head))
        } else {
            format!("{} :- {}.", atom(&rule.head), body.join(", "))
        }
    }

    /// Human-readable rendering of a stratified aggregation, e.g.
    /// `Dist(_, min _) <- Dist__agg_input`.
    pub fn display_aggregate(&self, spec: &AggregateSpec) -> String {
        let arity = self.relation(spec.output).arity;
        let cols: Vec<String> = (0..arity)
            .map(|c| match spec.aggs.iter().find(|(col, _)| *col == c) {
                Some((_, func)) => format!("{} _", func.name()),
                None => "_".to_string(),
            })
            .collect();
        format!(
            "{}({}) <- {}",
            self.relation(spec.output).name,
            cols.join(", "),
            self.relation(spec.input).name
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn transitive_closure() -> Program {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Path", 2);
        b.rule("Path", &["x", "y"]).when("Edge", &["x", "y"]).end();
        b.rule("Path", &["x", "y"])
            .when("Edge", &["x", "z"])
            .when("Path", &["z", "y"])
            .end();
        b.fact_ints("Edge", &[1, 2]);
        b.build().unwrap()
    }

    #[test]
    fn relations_are_classified_by_rule_heads() {
        let p = transitive_closure();
        let edge = p.relation_by_name("Edge").unwrap();
        let path = p.relation_by_name("Path").unwrap();
        assert!(p.relation(edge).is_edb);
        assert!(!p.relation(path).is_edb);
        assert_eq!(p.idb_relations(), vec![path]);
        assert_eq!(p.edb_relations(), vec![edge]);
    }

    #[test]
    fn rules_for_filters_by_head() {
        let p = transitive_closure();
        let path = p.relation_by_name("Path").unwrap();
        assert_eq!(p.rules_for(path).count(), 2);
        let edge = p.relation_by_name("Edge").unwrap();
        assert_eq!(p.rules_for(edge).count(), 0);
    }

    #[test]
    fn display_rule_round_trips_names() {
        let p = transitive_closure();
        let shown = p.display_rule(&p.rules()[1]);
        assert_eq!(shown, "Path(x, y) :- Edge(x, z), Path(z, y).");
    }

    #[test]
    fn map_rule_orders_swaps_atoms() {
        let p = transitive_closure();
        let swapped = p.map_rule_orders(|r| {
            if r.positive_body().count() == 2 {
                Some(vec![1, 0])
            } else {
                None
            }
        });
        let shown = swapped.display_rule(&swapped.rules()[1]);
        assert_eq!(shown, "Path(x, y) :- Path(z, y), Edge(x, z).");
        // Original program untouched.
        assert_eq!(
            p.display_rule(&p.rules()[1]),
            "Path(x, y) :- Edge(x, z), Path(z, y)."
        );
    }

    #[test]
    fn facts_are_recorded() {
        let p = transitive_closure();
        assert_eq!(p.facts().len(), 1);
    }
}
