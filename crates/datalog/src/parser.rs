//! Textual Datalog parser.
//!
//! The engine is primarily driven through the embedded builder DSL, but a
//! small concrete syntax makes examples, tests and ad-hoc experimentation
//! much more pleasant.  The grammar is deliberately close to the paper's
//! notation:
//!
//! ```text
//! // transitive closure
//! Path(x, y) :- Edge(x, y).
//! Path(x, y) :- Edge(x, z), Path(z, y).
//! Edge(1, 2).
//! Edge(2, 3).
//! InvFuns("deserialize", "serialize").
//! Prime(x) :- Num(x), !Composite(x).
//! ```
//!
//! * clauses end with `.`,
//! * a clause without `:-` whose terms are all constants is a fact,
//! * numbers are integer constants, double-quoted strings are string
//!   constants, bare identifiers in term position are variables,
//! * `!` negates a body literal,
//! * `%`, `#` and `//` start line comments,
//! * relations are declared implicitly by use; arities must be consistent.

use crate::builder::{ProgramBuilder, TermSpec};
use crate::error::DatalogError;
use crate::program::Program;

/// Parses a Datalog program from text.
pub fn parse(source: &str) -> Result<Program, DatalogError> {
    Parser::new(source).parse_program()
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(u32),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Bang,
    Turnstile, // :-
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> DatalogError {
        DatalogError::Parse {
            line: self.line,
            column: self.column,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if let Some(c) = c {
            if c == '\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
        c
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('%') | Some('#') => {
                    while let Some(&c) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') => {
                    // Only treat as a comment if followed by another '/'.
                    let mut clone = self.chars.clone();
                    clone.next();
                    if clone.peek() == Some(&'/') {
                        while let Some(&c) = self.chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize, usize)>, DatalogError> {
        self.skip_trivia();
        let (line, column) = (self.line, self.column);
        let Some(&c) = self.chars.peek() else {
            return Ok(None);
        };
        let token = match c {
            '(' => {
                self.bump();
                Token::LParen
            }
            ')' => {
                self.bump();
                Token::RParen
            }
            ',' => {
                self.bump();
                Token::Comma
            }
            '.' => {
                self.bump();
                Token::Dot
            }
            '!' => {
                self.bump();
                Token::Bang
            }
            ':' => {
                self.bump();
                match self.chars.peek() {
                    Some('-') => {
                        self.bump();
                        Token::Turnstile
                    }
                    _ => return Err(self.error("expected `-` after `:`")),
                }
            }
            '"' => {
                self.bump();
                let mut text = String::new();
                loop {
                    match self.bump() {
                        Some('"') => break,
                        Some(ch) => text.push(ch),
                        None => return Err(self.error("unterminated string literal")),
                    }
                }
                Token::Str(text)
            }
            c if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(&d) = self.chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        n = n * 10 + digit as u64;
                        if n > u32::MAX as u64 {
                            return Err(self.error("integer literal too large"));
                        }
                        self.bump();
                    } else {
                        break;
                    }
                }
                Token::Int(n as u32)
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&ch) = self.chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        ident.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Token::Ident(ident)
            }
            other => return Err(self.error(format!("unexpected character `{other}`"))),
        };
        Ok(Some((token, line, column)))
    }
}

struct Parser {
    tokens: Vec<(Token, usize, usize)>,
    pos: usize,
}

/// A parsed atom before classification into fact/rule pieces.
struct ParsedAtom {
    rel: String,
    terms: Vec<TermSpec>,
    negated: bool,
}

impl Parser {
    fn new(source: &str) -> Self {
        // Tokenize eagerly; errors surface during `parse_program`.
        let mut lexer = Lexer::new(source);
        let mut tokens = Vec::new();
        loop {
            match lexer.next_token() {
                Ok(Some(t)) => tokens.push(t),
                Ok(None) => break,
                Err(err) => {
                    // Store a poison marker by re-raising later: simplest is
                    // to stash the error as a pseudo token; instead we keep
                    // the error by storing it in the struct.
                    tokens.push((Token::Ident(format!("\u{0}lex-error:{err}")), 0, 0));
                    break;
                }
            }
        }
        Parser { tokens, pos: 0 }
    }

    fn error_at(&self, message: impl Into<String>) -> DatalogError {
        let (line, column) = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|&(_, l, c)| (l, c))
            .unwrap_or((0, 0));
        DatalogError::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _, _)| t)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), DatalogError> {
        match self.bump() {
            Some(t) if &t == expected => Ok(()),
            Some(t) => Err(self.error_at(format!("expected {what}, found {t:?}"))),
            None => Err(self.error_at(format!("expected {what}, found end of input"))),
        }
    }

    fn parse_program(mut self) -> Result<Program, DatalogError> {
        // Surface lexer errors.
        for (token, _, _) in &self.tokens {
            if let Token::Ident(text) = token {
                if let Some(rest) = text.strip_prefix('\u{0}') {
                    let message = rest.trim_start_matches("lex-error:").to_string();
                    return Err(DatalogError::Parse {
                        line: 0,
                        column: 0,
                        message,
                    });
                }
            }
        }

        let mut builder = ProgramBuilder::new();
        // Relations are declared implicitly; remember first-seen arities and
        // declare them all before building.
        let mut clauses: Vec<(ParsedAtom, Vec<ParsedAtom>)> = Vec::new();
        while self.peek().is_some() {
            let clause = self.parse_clause()?;
            clauses.push(clause);
        }

        // Declare relations with their first-seen arity; the builder's
        // validation catches inconsistent later uses.
        let mut declared: Vec<(String, usize)> = Vec::new();
        {
            let mut declare = |atom: &ParsedAtom| {
                if !declared.iter().any(|(n, _)| n == &atom.rel) {
                    declared.push((atom.rel.clone(), atom.terms.len()));
                }
            };
            for (head, body) in &clauses {
                declare(head);
                for atom in body {
                    declare(atom);
                }
            }
        }
        for (name, arity) in &declared {
            builder.relation(name, *arity);
        }

        for (head, body) in clauses {
            let is_fact = body.is_empty()
                && head
                    .terms
                    .iter()
                    .all(|t| !matches!(t, TermSpec::Var(_)));
            if is_fact {
                builder.fact(&head.rel, &head.terms);
            } else {
                let mut rb = builder.rule(&head.rel, &head.terms);
                for atom in body {
                    rb = if atom.negated {
                        rb.when_not(&atom.rel, &atom.terms)
                    } else {
                        rb.when(&atom.rel, &atom.terms)
                    };
                }
                rb.end();
            }
        }
        builder.build()
    }

    fn parse_clause(&mut self) -> Result<(ParsedAtom, Vec<ParsedAtom>), DatalogError> {
        let head = self.parse_atom(false)?;
        let mut body = Vec::new();
        match self.peek() {
            Some(Token::Dot) => {
                self.bump();
            }
            Some(Token::Turnstile) => {
                self.bump();
                loop {
                    let negated = if matches!(self.peek(), Some(Token::Bang)) {
                        self.bump();
                        true
                    } else {
                        false
                    };
                    let atom = self.parse_atom(negated)?;
                    body.push(atom);
                    match self.bump() {
                        Some(Token::Comma) => continue,
                        Some(Token::Dot) => break,
                        other => {
                            return Err(self.error_at(format!(
                                "expected `,` or `.` after body literal, found {other:?}"
                            )))
                        }
                    }
                }
            }
            other => {
                return Err(self.error_at(format!(
                    "expected `.` or `:-` after clause head, found {other:?}"
                )))
            }
        }
        Ok((head, body))
    }

    fn parse_atom(&mut self, negated: bool) -> Result<ParsedAtom, DatalogError> {
        let rel = match self.bump() {
            Some(Token::Ident(name)) => name,
            other => return Err(self.error_at(format!("expected relation name, found {other:?}"))),
        };
        self.expect(&Token::LParen, "`(`")?;
        let mut terms = Vec::new();
        loop {
            match self.bump() {
                Some(Token::Ident(name)) => terms.push(TermSpec::Var(name)),
                Some(Token::Int(n)) => terms.push(TermSpec::Int(n)),
                Some(Token::Str(text)) => terms.push(TermSpec::Str(text)),
                other => return Err(self.error_at(format!("expected term, found {other:?}"))),
            }
            match self.bump() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => {
                    return Err(self.error_at(format!("expected `,` or `)`, found {other:?}")))
                }
            }
        }
        Ok(ParsedAtom {
            rel,
            terms,
            negated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_transitive_closure() {
        let program = parse(
            r#"
            % transitive closure
            Path(x, y) :- Edge(x, y).
            Path(x, y) :- Edge(x, z), Path(z, y).
            Edge(1, 2).
            Edge(2, 3).
            "#,
        )
        .unwrap();
        assert_eq!(program.rules().len(), 2);
        assert_eq!(program.facts().len(), 2);
        let edge = program.relation_by_name("Edge").unwrap();
        assert!(program.relation(edge).is_edb);
    }

    #[test]
    fn parses_string_facts_and_negation() {
        let program = parse(
            r#"
            InvFuns("deserialize", "serialize").
            Prime(x) :- Num(x), !Composite(x).
            Composite(x) :- NonTrivialDivisor(x, d).
            Num(2). Num(3). Num(4).
            NonTrivialDivisor(4, 2).
            "#,
        )
        .unwrap();
        assert_eq!(program.facts().len(), 5);
        let prime_rule = &program.rules()[0];
        assert_eq!(prime_rule.negative_body().count(), 1);
    }

    #[test]
    fn fact_with_variable_is_a_rule_error() {
        // `Edge(x, 2).` has a variable in a bodyless clause: it is parsed as
        // a rule with an empty body, which then fails the safety check.
        let err = parse("Edge(x, 2).").unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeHeadVariable { .. }));
    }

    #[test]
    fn comment_styles_are_ignored() {
        let program = parse(
            "% percent comment\n# hash comment\n// slash comment\nEdge(1, 2).\n",
        )
        .unwrap();
        assert_eq!(program.facts().len(), 1);
    }

    #[test]
    fn reports_missing_dot() {
        let err = parse("Edge(1, 2)").unwrap_err();
        assert!(matches!(err, DatalogError::Parse { .. }));
    }

    #[test]
    fn reports_unterminated_string() {
        let err = parse("Name(\"abc).").unwrap_err();
        assert!(matches!(err, DatalogError::Parse { .. }));
    }

    #[test]
    fn reports_bad_character() {
        let err = parse("Edge(1, 2) & Edge(2, 3).").unwrap_err();
        assert!(matches!(err, DatalogError::Parse { .. }));
    }

    #[test]
    fn inconsistent_arity_across_uses_is_rejected() {
        let err = parse("Edge(1, 2).\nEdge(1, 2, 3).").unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn roundtrips_through_display() {
        let program = parse("Path(x, y) :- Edge(x, z), Path(z, y).").unwrap();
        let shown = program.display_rule(&program.rules()[0]);
        assert_eq!(shown, "Path(x, y) :- Edge(x, z), Path(z, y).");
    }
}
