//! Textual Datalog parser.
//!
//! The engine is primarily driven through the embedded builder DSL, but a
//! small concrete syntax makes examples, tests and ad-hoc experimentation
//! much more pleasant.  The grammar is deliberately close to the paper's
//! notation:
//!
//! ```text
//! // transitive closure
//! Path(x, y) :- Edge(x, y).
//! Path(x, y) :- Edge(x, z), Path(z, y).
//! Edge(1, 2).
//! Edge(2, 3).
//! InvFuns("deserialize", "serialize").
//! Prime(x) :- Num(x), !Composite(x).
//! ```
//!
//! * clauses end with `.`,
//! * a clause without `:-` whose terms are all constants is a fact,
//! * numbers are integer constants (at most `2^31 - 1`), double-quoted
//!   strings are string constants, bare identifiers in term position are
//!   variables,
//! * `!` negates a body literal,
//! * body positions may hold comparison constraints between terms:
//!   `Near(y) :- Dist(y, d), d < 10.` (operators `<`, `<=`, `>`, `>=`,
//!   `=`, `!=`),
//! * head positions may hold aggregate terms `count v`, `sum v`, `min v`,
//!   `max v`: `Deg(x, count y) :- Edge(x, y).` groups by the plain head
//!   columns and aggregates the marked ones.  Non-recursive aggregates are
//!   stratified like negation; an aggregate whose rules recurse through the
//!   aggregated head (`Dist(y, min d2) :- Dist(x, d1), ...`) runs as a
//!   monotone lattice fold inside the recursion,
//! * `%`, `#` and `//` start line comments,
//! * relations are declared implicitly by use; arities must be consistent.

use carac_storage::{AggFunc, CmpOp, Value};

use crate::builder::{ProgramBuilder, TermSpec};
use crate::error::DatalogError;
use crate::program::Program;

/// Parses a Datalog program from text.
pub fn parse(source: &str) -> Result<Program, DatalogError> {
    Parser::new(source).parse_program()
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(u32),
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Bang,
    Turnstile, // :-
    Cmp(CmpOp),
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().peekable(),
            line: 1,
            column: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> DatalogError {
        DatalogError::Parse {
            line: self.line,
            column: self.column,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next();
        if let Some(c) = c {
            if c == '\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
        c
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.chars.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('%') | Some('#') => {
                    while let Some(&c) = self.chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') => {
                    // Only treat as a comment if followed by another '/'.
                    let mut clone = self.chars.clone();
                    clone.next();
                    if clone.peek() == Some(&'/') {
                        while let Some(&c) = self.chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            self.bump();
                        }
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<(Token, usize, usize)>, DatalogError> {
        self.skip_trivia();
        let (line, column) = (self.line, self.column);
        let Some(&c) = self.chars.peek() else {
            return Ok(None);
        };
        let token = match c {
            '(' => {
                self.bump();
                Token::LParen
            }
            ')' => {
                self.bump();
                Token::RParen
            }
            ',' => {
                self.bump();
                Token::Comma
            }
            '.' => {
                self.bump();
                Token::Dot
            }
            '!' => {
                self.bump();
                match self.chars.peek() {
                    Some('=') => {
                        self.bump();
                        Token::Cmp(CmpOp::Ne)
                    }
                    _ => Token::Bang,
                }
            }
            '<' => {
                self.bump();
                match self.chars.peek() {
                    Some('=') => {
                        self.bump();
                        Token::Cmp(CmpOp::Le)
                    }
                    _ => Token::Cmp(CmpOp::Lt),
                }
            }
            '>' => {
                self.bump();
                match self.chars.peek() {
                    Some('=') => {
                        self.bump();
                        Token::Cmp(CmpOp::Ge)
                    }
                    _ => Token::Cmp(CmpOp::Gt),
                }
            }
            '=' => {
                self.bump();
                Token::Cmp(CmpOp::Eq)
            }
            ':' => {
                self.bump();
                match self.chars.peek() {
                    Some('-') => {
                        self.bump();
                        Token::Turnstile
                    }
                    _ => return Err(self.error("expected `-` after `:`")),
                }
            }
            '"' => {
                self.bump();
                let mut text = String::new();
                loop {
                    match self.bump() {
                        Some('"') => break,
                        Some(ch) => text.push(ch),
                        None => return Err(self.error("unterminated string literal")),
                    }
                }
                Token::Str(text)
            }
            c if c.is_ascii_digit() => {
                // Plain integers share the 32-bit value space with interned
                // symbols, so literals must stay below `Value::SYMBOL_BASE`
                // (2^31); larger literals would corrupt into symbol ids.
                let mut n: u64 = 0;
                while let Some(&d) = self.chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        n = n * 10 + digit as u64;
                        if n >= Value::SYMBOL_BASE as u64 {
                            return Err(self.error(format!(
                                "integer literal out of range (max {})",
                                Value::SYMBOL_BASE - 1
                            )));
                        }
                        self.bump();
                    } else {
                        break;
                    }
                }
                Token::Int(n as u32)
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&ch) = self.chars.peek() {
                    if ch.is_alphanumeric() || ch == '_' {
                        ident.push(ch);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Token::Ident(ident)
            }
            other => return Err(self.error(format!("unexpected character `{other}`"))),
        };
        Ok(Some((token, line, column)))
    }
}

struct Parser {
    tokens: Vec<(Token, usize, usize)>,
    pos: usize,
}

/// A parsed atom before classification into fact/rule pieces.
struct ParsedAtom {
    rel: String,
    terms: Vec<TermSpec>,
    negated: bool,
}

/// A parsed comparison constraint in a rule body.
struct ParsedConstraint {
    lhs: TermSpec,
    op: CmpOp,
    rhs: TermSpec,
}

/// A parsed clause: head, body atoms, body constraints, plus the 1-based
/// source position of the head token (threaded into [`Rule`] provenance so
/// diagnostics can cite the offending line).
///
/// [`Rule`]: crate::ast::Rule
struct ParsedClause {
    head: ParsedAtom,
    body: Vec<ParsedAtom>,
    constraints: Vec<ParsedConstraint>,
    pos: (usize, usize),
}

impl Parser {
    fn new(source: &str) -> Self {
        // Tokenize eagerly; errors surface during `parse_program`.
        let mut lexer = Lexer::new(source);
        let mut tokens = Vec::new();
        loop {
            match lexer.next_token() {
                Ok(Some(t)) => tokens.push(t),
                Ok(None) => break,
                Err(err) => {
                    // Store a poison marker by re-raising later: simplest is
                    // to stash the error as a pseudo token; instead we keep
                    // the error by storing it in the struct.
                    tokens.push((Token::Ident(format!("\u{0}lex-error:{err}")), 0, 0));
                    break;
                }
            }
        }
        Parser { tokens, pos: 0 }
    }

    fn error_at(&self, message: impl Into<String>) -> DatalogError {
        let (line, column) = self
            .tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or((0, 0), |&(_, l, c)| (l, c));
        DatalogError::Parse {
            line,
            column,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _, _)| t)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, expected: &Token, what: &str) -> Result<(), DatalogError> {
        match self.bump() {
            Some(t) if &t == expected => Ok(()),
            Some(t) => Err(self.error_at(format!("expected {what}, found {t:?}"))),
            None => Err(self.error_at(format!("expected {what}, found end of input"))),
        }
    }

    fn parse_program(mut self) -> Result<Program, DatalogError> {
        // Surface lexer errors.
        for (token, _, _) in &self.tokens {
            if let Token::Ident(text) = token {
                if let Some(rest) = text.strip_prefix('\u{0}') {
                    let message = rest.trim_start_matches("lex-error:").to_string();
                    return Err(DatalogError::Parse {
                        line: 0,
                        column: 0,
                        message,
                    });
                }
            }
        }

        let mut builder = ProgramBuilder::new();
        // Relations are declared implicitly; remember first-seen arities and
        // declare them all before building.
        let mut clauses: Vec<ParsedClause> = Vec::new();
        while self.peek().is_some() {
            let clause = self.parse_clause()?;
            clauses.push(clause);
        }

        // Declare relations with their first-seen arity; the builder's
        // validation catches inconsistent later uses.
        let mut declared: Vec<(String, usize)> = Vec::new();
        {
            let mut declare = |atom: &ParsedAtom| {
                if !declared.iter().any(|(n, _)| n == &atom.rel) {
                    declared.push((atom.rel.clone(), atom.terms.len()));
                }
            };
            for clause in &clauses {
                declare(&clause.head);
                for atom in &clause.body {
                    declare(atom);
                }
            }
        }
        for (name, arity) in &declared {
            builder.relation(name, *arity);
        }

        for clause in clauses {
            let ParsedClause {
                head,
                body,
                constraints,
                pos,
            } = clause;
            let is_fact = body.is_empty()
                && constraints.is_empty()
                && head
                    .terms
                    .iter()
                    .all(|t| !matches!(t, TermSpec::Var(_) | TermSpec::Agg(..)));
            if is_fact {
                builder.fact(&head.rel, &head.terms);
            } else {
                let mut rb = builder.rule(&head.rel, &head.terms);
                for atom in body {
                    rb = if atom.negated {
                        rb.when_not(&atom.rel, &atom.terms)
                    } else {
                        rb.when(&atom.rel, &atom.terms)
                    };
                }
                for c in constraints {
                    rb = rb.constrain(c.lhs, c.op, c.rhs);
                }
                rb.at(pos.0, pos.1).end();
            }
        }
        builder.build()
    }

    /// Peeks `offset` tokens ahead without consuming.
    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset).map(|(t, _, _)| t)
    }

    fn parse_clause(&mut self) -> Result<ParsedClause, DatalogError> {
        let pos = self
            .tokens
            .get(self.pos)
            .map_or((0, 0), |&(_, line, col)| (line, col));
        let head = self.parse_atom(false, true)?;
        let mut body = Vec::new();
        let mut constraints = Vec::new();
        match self.peek() {
            Some(Token::Dot) => {
                self.bump();
            }
            Some(Token::Turnstile) => {
                self.bump();
                loop {
                    let negated = if matches!(self.peek(), Some(Token::Bang)) {
                        self.bump();
                        true
                    } else {
                        false
                    };
                    // `Ident (` starts an atom; anything else in a (positive)
                    // body position must be a comparison constraint.
                    let is_atom = matches!(self.peek(), Some(Token::Ident(_)))
                        && matches!(self.peek_at(1), Some(Token::LParen));
                    if negated || is_atom {
                        body.push(self.parse_atom(negated, false)?);
                    } else {
                        constraints.push(self.parse_constraint()?);
                    }
                    match self.bump() {
                        Some(Token::Comma) => {}
                        Some(Token::Dot) => break,
                        other => {
                            return Err(self.error_at(format!(
                                "expected `,` or `.` after body literal, found {other:?}"
                            )))
                        }
                    }
                }
            }
            other => {
                return Err(self.error_at(format!(
                    "expected `.` or `:-` after clause head, found {other:?}"
                )))
            }
        }
        Ok(ParsedClause {
            head,
            body,
            constraints,
            pos,
        })
    }

    /// Parses one operand of a comparison constraint.
    fn parse_cmp_operand(&mut self) -> Result<TermSpec, DatalogError> {
        match self.bump() {
            Some(Token::Ident(name)) => Ok(TermSpec::Var(name)),
            Some(Token::Int(n)) => Ok(TermSpec::Int(n)),
            Some(Token::Str(text)) => Ok(TermSpec::Str(text)),
            other => Err(self.error_at(format!(
                "expected a constraint operand (variable or constant), found {other:?}"
            ))),
        }
    }

    /// Parses a comparison constraint `term op term`.
    fn parse_constraint(&mut self) -> Result<ParsedConstraint, DatalogError> {
        let lhs = self.parse_cmp_operand()?;
        let op = match self.bump() {
            Some(Token::Cmp(op)) => op,
            other => {
                return Err(self.error_at(format!(
                "expected a comparison operator (`<`, `<=`, `>`, `>=`, `=`, `!=`), found {other:?}"
            )))
            }
        };
        let rhs = self.parse_cmp_operand()?;
        Ok(ParsedConstraint { lhs, op, rhs })
    }

    fn parse_atom(&mut self, negated: bool, is_head: bool) -> Result<ParsedAtom, DatalogError> {
        let rel = match self.bump() {
            Some(Token::Ident(name)) => name,
            other => return Err(self.error_at(format!("expected relation name, found {other:?}"))),
        };
        self.expect(&Token::LParen, "`(`")?;
        let mut terms = Vec::new();
        loop {
            match self.bump() {
                Some(Token::Ident(name)) => {
                    // In head positions, `count v` / `sum v` / `min v` /
                    // `max v` is an aggregate term; a bare agg keyword stays
                    // an ordinary variable.
                    let agg = if is_head {
                        AggFunc::from_name(&name)
                    } else {
                        None
                    };
                    match (agg, self.peek()) {
                        (Some(func), Some(Token::Ident(_))) => {
                            let Some(Token::Ident(var)) = self.bump() else {
                                unreachable!("peeked an identifier");
                            };
                            terms.push(TermSpec::Agg(func, var));
                        }
                        _ => terms.push(TermSpec::Var(name)),
                    }
                }
                Some(Token::Int(n)) => terms.push(TermSpec::Int(n)),
                Some(Token::Str(text)) => terms.push(TermSpec::Str(text)),
                other => return Err(self.error_at(format!("expected term, found {other:?}"))),
            }
            match self.bump() {
                Some(Token::Comma) => {}
                Some(Token::RParen) => break,
                other => return Err(self.error_at(format!("expected `,` or `)`, found {other:?}"))),
            }
        }
        Ok(ParsedAtom {
            rel,
            terms,
            negated,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_transitive_closure() {
        let program = parse(
            r#"
            % transitive closure
            Path(x, y) :- Edge(x, y).
            Path(x, y) :- Edge(x, z), Path(z, y).
            Edge(1, 2).
            Edge(2, 3).
            "#,
        )
        .unwrap();
        assert_eq!(program.rules().len(), 2);
        assert_eq!(program.facts().len(), 2);
        let edge = program.relation_by_name("Edge").unwrap();
        assert!(program.relation(edge).is_edb);
    }

    #[test]
    fn rules_carry_their_source_position() {
        let program = parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n\
             Edge(1, 2).",
        )
        .unwrap();
        assert_eq!(program.rules()[0].origin.position, Some((1, 1)));
        assert_eq!(program.rules()[1].origin.position, Some((2, 1)));
        assert_eq!(
            program.rules()[1].origin.describe().as_deref(),
            Some("at 2:1")
        );
    }

    #[test]
    fn parses_string_facts_and_negation() {
        let program = parse(
            r#"
            InvFuns("deserialize", "serialize").
            Prime(x) :- Num(x), !Composite(x).
            Composite(x) :- NonTrivialDivisor(x, d).
            Num(2). Num(3). Num(4).
            NonTrivialDivisor(4, 2).
            "#,
        )
        .unwrap();
        assert_eq!(program.facts().len(), 5);
        let prime_rule = &program.rules()[0];
        assert_eq!(prime_rule.negative_body().count(), 1);
    }

    #[test]
    fn fact_with_variable_is_a_rule_error() {
        // `Edge(x, 2).` has a variable in a bodyless clause: it is parsed as
        // a rule with an empty body, which then fails the safety check.
        let err = parse("Edge(x, 2).").unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeHeadVariable { .. }));
    }

    #[test]
    fn comment_styles_are_ignored() {
        let program =
            parse("% percent comment\n# hash comment\n// slash comment\nEdge(1, 2).\n").unwrap();
        assert_eq!(program.facts().len(), 1);
    }

    #[test]
    fn reports_missing_dot() {
        let err = parse("Edge(1, 2)").unwrap_err();
        assert!(matches!(err, DatalogError::Parse { .. }));
    }

    #[test]
    fn reports_unterminated_string() {
        let err = parse("Name(\"abc).").unwrap_err();
        assert!(matches!(err, DatalogError::Parse { .. }));
    }

    #[test]
    fn reports_bad_character() {
        let err = parse("Edge(1, 2) & Edge(2, 3).").unwrap_err();
        assert!(matches!(err, DatalogError::Parse { .. }));
    }

    #[test]
    fn inconsistent_arity_across_uses_is_rejected() {
        let err = parse("Edge(1, 2).\nEdge(1, 2, 3).").unwrap_err();
        assert!(matches!(err, DatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn roundtrips_through_display() {
        let program = parse("Path(x, y) :- Edge(x, z), Path(z, y).").unwrap();
        let shown = program.display_rule(&program.rules()[0]);
        assert_eq!(shown, "Path(x, y) :- Edge(x, z), Path(z, y).");
    }

    #[test]
    fn out_of_range_integer_literal_is_a_parse_error_not_a_panic() {
        // Regression: 3_000_000_000 fits u32 but collides with the interned
        // symbol range; this used to abort via `Value::int`'s assert.
        let err = parse("Edge(3000000000, 1).").unwrap_err();
        assert!(matches!(err, DatalogError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("out of range"));
        // The maximum plain integer still parses.
        let program = parse("Edge(2147483647, 1).").unwrap();
        assert_eq!(program.facts().len(), 1);
        // One past it does not.
        assert!(matches!(
            parse("Edge(2147483648, 1)."),
            Err(DatalogError::Parse { .. })
        ));
    }

    #[test]
    fn parses_comparison_constraints() {
        let program = parse(
            "Near(y, d) :- Dist(y, d), d < 10, y != 3.\n\
             Dist(1, 5). Dist(2, 12). Dist(3, 4).",
        )
        .unwrap();
        let rule = &program.rules()[0];
        assert_eq!(rule.constraints.len(), 2);
        assert_eq!(rule.constraints[0].op, CmpOp::Lt);
        assert_eq!(rule.constraints[1].op, CmpOp::Ne);
        let shown = program.display_rule(rule);
        assert_eq!(shown, "Near(y, d) :- Dist(y, d), d < 10, y != 3.");
    }

    #[test]
    fn parses_all_comparison_operators() {
        let program =
            parse("Out(x, y) :- R(x, y), x < y, x <= y, y > x, y >= x, x = x, x != y.").unwrap();
        let ops: Vec<CmpOp> = program.rules()[0]
            .constraints
            .iter()
            .map(|c| c.op)
            .collect();
        assert_eq!(
            ops,
            vec![
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge,
                CmpOp::Eq,
                CmpOp::Ne
            ]
        );
    }

    #[test]
    fn unbound_constraint_variable_is_rejected() {
        let err = parse("Out(x) :- R(x), x < w.").unwrap_err();
        assert!(matches!(err, DatalogError::UnsafeConstraintVariable { .. }));
    }

    #[test]
    fn parses_aggregate_heads() {
        let program = parse(
            "Deg(x, count y) :- Edge(x, y).\n\
             Edge(1, 2). Edge(1, 3). Edge(2, 3).",
        )
        .unwrap();
        assert_eq!(program.aggregates().len(), 1);
        let spec = &program.aggregates()[0];
        assert_eq!(spec.aggs, vec![(1, AggFunc::Count)]);
        let deg = program.relation_by_name("Deg").unwrap();
        assert_eq!(spec.output, deg);
        assert!(!program.relation(deg).is_edb);
        // The hidden input relation carries the rewritten rule.
        let input = program.relation(spec.input);
        assert!(input.name.contains("__agg_input"));
        assert_eq!(program.rules_for(spec.input).count(), 1);
        // Aggregation crosses strata: input stratum before output stratum.
        assert!(program.stratification().len() >= 2);
    }

    #[test]
    fn aggregate_keywords_remain_ordinary_variables_elsewhere() {
        // `min` in body position (and alone in a head without a following
        // identifier) is a plain variable name.
        let program = parse("Out(min) :- R(min).").unwrap();
        assert!(program.aggregates().is_empty());
        assert_eq!(program.rules()[0].var_names, vec!["min".to_string()]);
    }

    #[test]
    fn recursion_through_aggregate_is_a_lattice_fold() {
        // A single-rule shortest path: the aggregated relation participates
        // in its own input's recursion, so the spec is classified as a
        // monotone lattice fold rather than rejected.
        let program = parse(
            "Dist(v, min d) :- Start(v), Zero(d).\n\
             Dist(y, min d2) :- Dist(x, d1), Edge(x, y), Succ(d1, d2).\n\
             Start(0). Zero(0). Succ(0, 1). Succ(1, 2). Edge(0, 1).",
        )
        .unwrap();
        assert_eq!(program.aggregates().len(), 1);
        let spec = &program.aggregates()[0];
        assert!(spec.lattice);
        // Both aggregate rules feed one shared hidden input.
        assert_eq!(program.rules_for(spec.input).count(), 2);
        // Input and output share one recursive stratum.
        let strat = program.stratification();
        let stratum = strat
            .strata()
            .iter()
            .find(|s| s.relations.contains(&spec.output))
            .unwrap();
        assert!(stratum.relations.contains(&spec.input));
        assert!(stratum.recursive);
    }

    #[test]
    fn mixed_aggregate_signatures_on_one_head_are_rejected() {
        let err = parse(
            "Dist(v, min d) :- Start(v), Zero(d).\n\
             Dist(v, max d) :- Start(v), Zero(d).\n\
             Start(0). Zero(0).",
        )
        .unwrap_err();
        assert!(matches!(err, DatalogError::AggregateConflict { .. }));
    }
}
