//! Embedded DSL for constructing Datalog programs programmatically.
//!
//! This is the Rust analogue of the paper's Scala-embedded DSL (§V-A): rules
//! and facts are first-class values constructed with ordinary function
//! calls, so workloads can be generated, transformed and composed by host
//! code.
//!
//! ```
//! use carac_datalog::builder::{ProgramBuilder, TermSpec};
//!
//! let mut b = ProgramBuilder::new();
//! b.relation("Edge", 2);
//! b.relation("Path", 2);
//! b.rule("Path", &["x", "y"]).when("Edge", &["x", "y"]).end();
//! b.rule("Path", &["x", "y"])
//!     .when("Edge", &["x", "z"])
//!     .when("Path", &["z", "y"])
//!     .end();
//! b.fact_ints("Edge", &[1, 2]);
//! b.fact_ints("Edge", &[2, 3]);
//! let program = b.build().unwrap();
//! assert_eq!(program.rules().len(), 2);
//! ```

use carac_storage::{AggFunc, CmpOp, RelId, SymbolTable, Tuple, Value};

use crate::ast::{
    AggregateSpec, Atom, Constraint, Literal, RelationDecl, Rule, RuleId, RuleOrigin, Term, VarId,
};
use crate::error::DatalogError;
use carac_storage::hasher::FxHashMap;

use crate::precedence::Stratification;
use crate::program::Program;
use crate::validate;

/// A term as written by the user: a named variable, an integer constant, a
/// string constant, a pre-resolved raw value, or (in rule heads only) an
/// aggregate over a variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermSpec {
    /// A named variable ("x", "y", ...).
    Var(String),
    /// A small integer constant.
    Int(u32),
    /// A string constant, interned on build.
    Str(String),
    /// A raw, already-interned value.  Used when rebuilding programs (e.g.
    /// alias elimination) so constants round-trip bit-identically; the
    /// builder takes the value as-is without re-interning.
    Value(Value),
    /// An aggregate over a variable (`min d`, `count y`, ...).  Only valid
    /// in rule-head positions.
    Agg(AggFunc, String),
}

impl From<&str> for TermSpec {
    /// Bare strings in rule positions are variables — the common case when
    /// writing analysis rules.  Use [`TermSpec::Str`] (or the [`s`] helper)
    /// for string constants.
    fn from(name: &str) -> Self {
        TermSpec::Var(name.to_string())
    }
}

impl From<u32> for TermSpec {
    fn from(n: u32) -> Self {
        TermSpec::Int(n)
    }
}

/// Helper constructing a variable term.
pub fn v(name: &str) -> TermSpec {
    TermSpec::Var(name.to_string())
}

/// Helper constructing an integer constant term.
pub fn c(n: u32) -> TermSpec {
    TermSpec::Int(n)
}

/// Helper constructing a string constant term.
pub fn s(text: &str) -> TermSpec {
    TermSpec::Str(text.to_string())
}

/// Helper constructing an aggregate head term (`agg(AggFunc::Min, "d")`).
pub fn agg(func: AggFunc, var: &str) -> TermSpec {
    TermSpec::Agg(func, var.to_string())
}

/// Helper constructing a `count` head term.
pub fn count_of(var: &str) -> TermSpec {
    agg(AggFunc::Count, var)
}

/// Helper constructing a `sum` head term.
pub fn sum_of(var: &str) -> TermSpec {
    agg(AggFunc::Sum, var)
}

/// Helper constructing a `min` head term.
pub fn min_of(var: &str) -> TermSpec {
    agg(AggFunc::Min, var)
}

/// Helper constructing a `max` head term.
pub fn max_of(var: &str) -> TermSpec {
    agg(AggFunc::Max, var)
}

/// Partially built rule; finish with [`RuleBuilder::end`].
#[must_use = "call .end() to add the rule to the program"]
pub struct RuleBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    head_rel: String,
    head_terms: Vec<TermSpec>,
    body: Vec<(String, Vec<TermSpec>, bool)>,
    constraints: Vec<(TermSpec, CmpOp, TermSpec)>,
    origin: RuleOrigin,
}

impl<'a> RuleBuilder<'a> {
    /// Adds a positive body literal.
    pub fn when<T: Into<TermSpec> + Clone>(mut self, rel: &str, terms: &[T]) -> Self {
        self.body.push((
            rel.to_string(),
            terms.iter().cloned().map(Into::into).collect(),
            false,
        ));
        self
    }

    /// Adds a negated body literal.
    pub fn when_not<T: Into<TermSpec> + Clone>(mut self, rel: &str, terms: &[T]) -> Self {
        self.body.push((
            rel.to_string(),
            terms.iter().cloned().map(Into::into).collect(),
            true,
        ));
        self
    }

    /// Adds a comparison constraint `lhs op rhs` to the rule body.  Both
    /// operands may be variables or constants; every variable must be bound
    /// by a positive body literal.
    pub fn constrain<L: Into<TermSpec>, R: Into<TermSpec>>(
        mut self,
        lhs: L,
        op: CmpOp,
        rhs: R,
    ) -> Self {
        self.constraints.push((lhs.into(), op, rhs.into()));
        self
    }

    /// Adds a `lhs < rhs` constraint.
    pub fn lt<L: Into<TermSpec>, R: Into<TermSpec>>(self, lhs: L, rhs: R) -> Self {
        self.constrain(lhs, CmpOp::Lt, rhs)
    }

    /// Adds a `lhs <= rhs` constraint.
    pub fn le<L: Into<TermSpec>, R: Into<TermSpec>>(self, lhs: L, rhs: R) -> Self {
        self.constrain(lhs, CmpOp::Le, rhs)
    }

    /// Adds a `lhs > rhs` constraint.
    pub fn gt<L: Into<TermSpec>, R: Into<TermSpec>>(self, lhs: L, rhs: R) -> Self {
        self.constrain(lhs, CmpOp::Gt, rhs)
    }

    /// Adds a `lhs >= rhs` constraint.
    pub fn ge<L: Into<TermSpec>, R: Into<TermSpec>>(self, lhs: L, rhs: R) -> Self {
        self.constrain(lhs, CmpOp::Ge, rhs)
    }

    /// Adds a `lhs != rhs` constraint.
    pub fn ne<L: Into<TermSpec>, R: Into<TermSpec>>(self, lhs: L, rhs: R) -> Self {
        self.constrain(lhs, CmpOp::Ne, rhs)
    }

    /// Attaches a human-readable label to the rule, cited by validation
    /// errors and analyzer diagnostics instead of the bare rule number.
    pub fn label(mut self, label: &str) -> Self {
        self.origin.label = Some(label.to_string());
        self
    }

    /// Records the 1-based source `(line, column)` of the rule head (used by
    /// the parser; host programs normally use [`RuleBuilder::label`]).
    pub fn at(mut self, line: usize, column: usize) -> Self {
        self.origin.position = Some((line, column));
        self
    }

    /// Finishes the rule and records it in the program builder.
    pub fn end(self) {
        self.builder.raw_rules.push(RawRule {
            head_rel: self.head_rel,
            head_terms: self.head_terms,
            body: self.body,
            constraints: self.constraints,
            origin: self.origin,
        });
    }
}

/// An aggregation before name resolution: output relation, input relation,
/// `(column, function)` pairs.
type RawAggregate = (String, String, Vec<(usize, AggFunc)>);

/// A rule before name resolution.
#[derive(Debug, Clone)]
struct RawRule {
    head_rel: String,
    head_terms: Vec<TermSpec>,
    body: Vec<(String, Vec<TermSpec>, bool)>,
    constraints: Vec<(TermSpec, CmpOp, TermSpec)>,
    origin: RuleOrigin,
}

/// Incremental program builder.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    relations: Vec<(String, usize)>,
    raw_rules: Vec<RawRule>,
    raw_facts: Vec<(String, Vec<TermSpec>)>,
    raw_aggregates: Vec<RawAggregate>,
    symbols: SymbolTable,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Declares a relation with the given arity.  Declaring the same
    /// relation twice with the same arity is a no-op; conflicting arities
    /// are reported at [`build`](ProgramBuilder::build) time.
    pub fn relation(&mut self, name: &str, arity: usize) -> &mut Self {
        self.relations.push((name.to_string(), arity));
        self
    }

    /// Starts a rule with the given head.  Head terms may include aggregate
    /// specs ([`TermSpec::Agg`], built with [`agg`]/[`min_of`]/...): such a
    /// rule defines its head relation by stratified aggregation.
    pub fn rule<T: Into<TermSpec> + Clone>(&mut self, head: &str, terms: &[T]) -> RuleBuilder<'_> {
        RuleBuilder {
            head_rel: head.to_string(),
            head_terms: terms.iter().cloned().map(Into::into).collect(),
            body: Vec::new(),
            constraints: Vec::new(),
            origin: RuleOrigin::default(),
            builder: self,
        }
    }

    /// Registers a pre-resolved aggregation: `output` receives the rows of
    /// `input` grouped on the non-aggregated columns.  This is the low-level
    /// form used when rebuilding programs (alias elimination); writing an
    /// aggregate head term via [`ProgramBuilder::rule`] creates the hidden
    /// input relation and this registration automatically.
    pub fn aggregate(&mut self, output: &str, input: &str, aggs: &[(usize, AggFunc)]) -> &mut Self {
        self.raw_aggregates
            .push((output.to_string(), input.to_string(), aggs.to_vec()));
        self
    }

    /// Seeds the builder's symbol table (used when rebuilding a program so
    /// that previously interned constants keep their exact bit patterns).
    pub fn with_symbols(&mut self, symbols: SymbolTable) -> &mut Self {
        self.symbols = symbols;
        self
    }

    /// Adds a ground fact with arbitrary term specs (must all be constants).
    pub fn fact(&mut self, rel: &str, terms: &[TermSpec]) -> &mut Self {
        self.raw_facts.push((rel.to_string(), terms.to_vec()));
        self
    }

    /// Adds a ground fact of integer constants.
    pub fn fact_ints(&mut self, rel: &str, ints: &[u32]) -> &mut Self {
        let terms = ints.iter().map(|&n| TermSpec::Int(n)).collect::<Vec<_>>();
        self.raw_facts.push((rel.to_string(), terms));
        self
    }

    /// Interns a string constant eagerly (useful when the same value must be
    /// referenced both in facts and by host code inspecting results).
    pub fn intern(&mut self, text: &str) -> Value {
        self.symbols.intern(text)
    }

    /// Resolves names, validates the program, computes the stratification
    /// and returns the immutable [`Program`].
    pub fn build(mut self) -> Result<Program, DatalogError> {
        // 0. Rewrite aggregate rules: `Dist(y, min d) :- Body` becomes an
        //    ordinary rule `Dist__agg_input(y, d) :- Body` plus an
        //    aggregation registration from the hidden input to `Dist`.
        self.rewrite_aggregate_rules()?;

        // 1. Deduplicate relation declarations, checking arities.
        let mut decls: Vec<RelationDecl> = Vec::new();
        let mut by_name: FxHashMap<String, RelId> = FxHashMap::default();
        for (name, arity) in &self.relations {
            if let Some(&existing) = by_name.get(name) {
                let prev = &decls[existing.index()];
                if prev.arity != *arity {
                    return Err(DatalogError::ConflictingDeclaration {
                        name: name.clone(),
                        first: prev.arity,
                        second: *arity,
                    });
                }
                continue;
            }
            let id = RelId(decls.len() as u32);
            by_name.insert(name.clone(), id);
            decls.push(RelationDecl {
                id,
                name: name.clone(),
                arity: *arity,
                is_edb: true, // refined below once rules are known
            });
        }

        let lookup =
            |name: &str, by_name: &FxHashMap<String, RelId>| -> Result<RelId, DatalogError> {
                by_name
                    .get(name)
                    .copied()
                    .ok_or_else(|| DatalogError::UnknownRelation(name.to_string()))
            };

        // 2. Resolve rules: map names to RelIds and variable names to dense
        //    per-rule VarIds.
        let mut rules: Vec<Rule> = Vec::new();
        for (rule_idx, raw) in self.raw_rules.iter().enumerate() {
            let mut var_names: Vec<String> = Vec::new();
            let mut var_ids: FxHashMap<String, VarId> = FxHashMap::default();
            // The user-facing name of the rule's head: aggregate heads were
            // rewritten to the hidden input relation, so diagnostics strip
            // the reserved suffix back off.
            let display_head = raw
                .head_rel
                .strip_suffix(AGG_INPUT_SUFFIX)
                .unwrap_or(&raw.head_rel);
            // `where_` names the relation (or, for constraints, the rule
            // head) an aggregate term was illegally found in.
            let mut resolve_term = |spec: &TermSpec,
                                    symbols: &mut SymbolTable,
                                    where_: &str|
             -> Result<Term, DatalogError> {
                match spec {
                    TermSpec::Var(name) => {
                        let id = *var_ids.entry(name.clone()).or_insert_with(|| {
                            let id = VarId(var_names.len() as u32);
                            var_names.push(name.clone());
                            id
                        });
                        Ok(Term::Var(id))
                    }
                    TermSpec::Int(n) => {
                        if *n >= Value::SYMBOL_BASE {
                            return Err(DatalogError::IntegerOutOfRange { value: *n });
                        }
                        Ok(Term::Const(Value::int(*n)))
                    }
                    TermSpec::Str(text) => Ok(Term::Const(symbols.intern(text))),
                    TermSpec::Value(value) => Ok(Term::Const(*value)),
                    TermSpec::Agg(..) => Err(DatalogError::AggregateMisplaced {
                        relation: where_.to_string(),
                    }),
                }
            };
            let mut resolve_terms = |specs: &[TermSpec],
                                     symbols: &mut SymbolTable,
                                     where_: &str|
             -> Result<Vec<Term>, DatalogError> {
                specs
                    .iter()
                    .map(|s| resolve_term(s, symbols, where_))
                    .collect()
            };

            let head_rel = lookup(&raw.head_rel, &by_name)?;
            let head_terms = resolve_terms(&raw.head_terms, &mut self.symbols, display_head)?;
            let mut body = Vec::with_capacity(raw.body.len());
            for (rel_name, terms, negated) in &raw.body {
                let rel = lookup(rel_name, &by_name)?;
                let atom = Atom::new(rel, resolve_terms(terms, &mut self.symbols, rel_name)?);
                body.push(Literal {
                    atom,
                    negated: *negated,
                });
            }
            let mut constraints = Vec::with_capacity(raw.constraints.len());
            for (lhs, op, rhs) in &raw.constraints {
                constraints.push(Constraint {
                    op: *op,
                    lhs: resolve_term(lhs, &mut self.symbols, display_head)?,
                    rhs: resolve_term(rhs, &mut self.symbols, display_head)?,
                });
            }
            rules.push(Rule {
                id: RuleId(rule_idx as u32),
                head: Atom::new(head_rel, head_terms),
                body,
                constraints,
                var_names,
                origin: raw.origin.clone(),
            });
        }

        // 3. Classify relations: anything appearing in a rule head — or
        //    receiving an aggregation — is IDB.
        for rule in &rules {
            decls[rule.head.rel.index()].is_edb = false;
        }
        for (output, _, _) in &self.raw_aggregates {
            let rel = lookup(output, &by_name)?;
            decls[rel.index()].is_edb = false;
        }

        // 4. Resolve facts.
        let mut facts: Vec<(RelId, Tuple)> = Vec::new();
        for (rel_name, terms) in &self.raw_facts {
            let rel = lookup(rel_name, &by_name)?;
            let mut values = Vec::with_capacity(terms.len());
            for term in terms {
                match term {
                    TermSpec::Int(n) => {
                        if *n >= Value::SYMBOL_BASE {
                            return Err(DatalogError::IntegerOutOfRange { value: *n });
                        }
                        values.push(Value::int(*n));
                    }
                    TermSpec::Str(text) => values.push(self.symbols.intern(text)),
                    TermSpec::Value(value) => values.push(*value),
                    TermSpec::Var(_) => return Err(DatalogError::NonGroundFact(rel_name.clone())),
                    TermSpec::Agg(..) => {
                        return Err(DatalogError::AggregateMisplaced {
                            relation: rel_name.clone(),
                        })
                    }
                }
            }
            facts.push((rel, Tuple::new(values)));
        }

        // 4b. Resolve aggregations and check their shape: the output must be
        //     defined by the aggregation alone (no rules, no facts, exactly
        //     one spec) and share the input's arity.
        let mut aggregates: Vec<AggregateSpec> = Vec::new();
        for (output_name, input_name, aggs) in &self.raw_aggregates {
            let output = lookup(output_name, &by_name)?;
            let input = lookup(input_name, &by_name)?;
            if rules.iter().any(|r| r.head.rel == output)
                || facts.iter().any(|(rel, _)| *rel == output)
                || aggregates.iter().any(|a| a.output == output)
            {
                return Err(DatalogError::AggregateConflict {
                    relation: output_name.clone(),
                });
            }
            let (out_arity, in_arity) = (decls[output.index()].arity, decls[input.index()].arity);
            if out_arity != in_arity {
                return Err(DatalogError::ArityMismatch {
                    relation: output_name.clone(),
                    expected: out_arity,
                    actual: in_arity,
                });
            }
            for &(col, _) in aggs {
                if col >= out_arity {
                    return Err(DatalogError::ArityMismatch {
                        relation: output_name.clone(),
                        expected: out_arity,
                        actual: col + 1,
                    });
                }
            }
            aggregates.push(AggregateSpec {
                output,
                input,
                aggs: aggs.clone(),
                // Refined during stratification: set when input and output
                // share a recursive stratum.
                lattice: false,
            });
        }

        // 5. Validate arities, safety (including constraint safety) and fact
        //    shapes.
        validate::validate(&decls, &rules, &facts, &self.symbols)?;

        // 6. Stratify (rejects negation through recursion and classifies
        //    each aggregate as stratified or monotone-lattice).
        let stratification = Stratification::compute(&decls, &rules, &mut aggregates)?;

        Ok(Program::new(
            decls,
            rules,
            facts,
            aggregates,
            self.symbols,
            stratification,
        ))
    }

    /// Rewrites every rule whose head contains aggregate terms into an
    /// ordinary rule deriving a hidden `<head>__agg_input` relation, plus a
    /// raw aggregation registration from the hidden input to the original
    /// head.
    ///
    /// Several rules may aggregate into the same output — e.g. the base and
    /// recursive rules of a lattice fold like single-rule shortest path —
    /// as long as every rule deriving that head aggregates the same columns
    /// with the same functions; they all feed one shared hidden input and
    /// register one aggregation.  Mixing aggregate and plain rules on one
    /// head stays rejected.
    fn rewrite_aggregate_rules(&mut self) -> Result<(), DatalogError> {
        // Count rules per head so aggregate heads can insist that every
        // sibling rule is also an aggregate rule.
        let mut head_counts: FxHashMap<String, usize> = FxHashMap::default();
        for raw in &self.raw_rules {
            *head_counts.entry(raw.head_rel.clone()).or_insert(0) += 1;
        }
        // Phase 1: group the aggregate rules by output, checking signature
        // agreement, and check that each hidden name is genuinely fresh —
        // `<head>__agg_input` is reserved, so any user declaration, rule or
        // fact touching it would silently contaminate the aggregate's input
        // and is rejected instead.
        // Rule indices sharing the head, plus the agreed (column, function)
        // aggregate signature.
        type AggGroup = (Vec<usize>, Vec<(usize, AggFunc)>);
        let mut outputs: Vec<String> = Vec::new();
        let mut grouped: FxHashMap<String, AggGroup> = FxHashMap::default();
        for (idx, raw) in self.raw_rules.iter().enumerate() {
            let agg_cols: Vec<(usize, AggFunc)> = raw
                .head_terms
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t {
                    TermSpec::Agg(func, _) => Some((i, *func)),
                    _ => None,
                })
                .collect();
            if agg_cols.is_empty() {
                continue;
            }
            let output = raw.head_rel.clone();
            match grouped.get_mut(&output) {
                Some((idxs, cols)) => {
                    if *cols != agg_cols {
                        return Err(DatalogError::AggregateConflict { relation: output });
                    }
                    idxs.push(idx);
                }
                None => {
                    outputs.push(output.clone());
                    grouped.insert(output, (vec![idx], agg_cols));
                }
            }
        }
        for output in &outputs {
            let (idxs, _) = &grouped[output];
            // Every rule deriving this head must be one of the aggregate
            // rules; a plain sibling rule would bypass the fold.
            if head_counts.get(output).copied().unwrap_or(0) != idxs.len() {
                return Err(DatalogError::AggregateConflict {
                    relation: output.clone(),
                });
            }
            let hidden = format!("{output}{AGG_INPUT_SUFFIX}");
            let mentioned = self.relations.iter().any(|(n, _)| n == &hidden)
                || self.raw_facts.iter().any(|(n, _)| n == &hidden)
                || self
                    .raw_rules
                    .iter()
                    .any(|r| r.head_rel == hidden || r.body.iter().any(|(n, _, _)| n == &hidden));
            if mentioned {
                return Err(DatalogError::AggregateConflict { relation: hidden });
            }
        }
        // Phase 2: apply — declare the hidden relation once per output,
        // retarget every member rule's head at it, register the aggregation.
        for output in outputs {
            let (idxs, agg_cols) = grouped.remove(&output).expect("grouped by construction");
            let hidden = format!("{output}{AGG_INPUT_SUFFIX}");
            let arity = self.raw_rules[idxs[0]].head_terms.len();
            self.relations.push((hidden.clone(), arity));
            for idx in idxs {
                let raw = &mut self.raw_rules[idx];
                for term in &mut raw.head_terms {
                    if let TermSpec::Agg(_, var) = term {
                        *term = TermSpec::Var(std::mem::take(var));
                    }
                }
                raw.head_rel = hidden.clone();
            }
            self.raw_aggregates.push((output, hidden, agg_cols));
        }
        Ok(())
    }
}

/// Suffix of the hidden relation holding an aggregate rule's raw
/// (pre-aggregation) rows.  The name is reserved: user programs may not
/// declare, derive or assert facts into `<relation>__agg_input`.
const AGG_INPUT_SUFFIX: &str = "__agg_input";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_declaration_same_arity_is_ok() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Edge", 2);
        assert!(b.build().is_ok());
    }

    #[test]
    fn conflicting_arity_is_rejected() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Edge", 3);
        assert!(matches!(
            b.build(),
            Err(DatalogError::ConflictingDeclaration { .. })
        ));
    }

    #[test]
    fn unknown_relation_in_rule_is_rejected() {
        let mut b = ProgramBuilder::new();
        b.relation("Path", 2);
        b.rule("Path", &["x", "y"]).when("Edge", &["x", "y"]).end();
        assert!(matches!(b.build(), Err(DatalogError::UnknownRelation(_))));
    }

    #[test]
    fn string_constants_are_interned() {
        let mut b = ProgramBuilder::new();
        b.relation("InvFuns", 2);
        b.fact("InvFuns", &[s("deserialize"), s("serialize")]);
        b.fact("InvFuns", &[s("deserialize"), s("serialize")]);
        let p = b.build().unwrap();
        assert_eq!(p.facts().len(), 2);
        let (_, t) = &p.facts()[0];
        assert_eq!(p.symbols().display(t.get(0).unwrap()), "deserialize");
    }

    #[test]
    fn facts_with_variables_are_rejected() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.fact("Edge", &[v("x"), c(1)]);
        assert!(matches!(b.build(), Err(DatalogError::NonGroundFact(_))));
    }

    #[test]
    fn variables_are_shared_within_a_rule() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Path", 2);
        b.rule("Path", &["x", "y"])
            .when("Edge", &["x", "z"])
            .when("Path", &["z", "y"])
            .end();
        let p = b.build().unwrap();
        let rule = &p.rules()[0];
        // x, y, z → 3 distinct variables.
        assert_eq!(rule.num_vars(), 3);
        // The `z` in both body atoms resolves to the same VarId.
        let edge_z = rule.body[0].atom.terms[1];
        let path_z = rule.body[1].atom.terms[0];
        assert_eq!(edge_z, path_z);
    }

    #[test]
    fn out_of_range_int_term_is_an_error_not_a_panic() {
        // Regression: `TermSpec::Int` beyond the plain-integer range used to
        // abort via the `Value::int` assert inside `build()`.
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.fact("Edge", &[TermSpec::Int(3_000_000_000), c(1)]);
        assert!(matches!(
            b.build(),
            Err(DatalogError::IntegerOutOfRange {
                value: 3_000_000_000
            })
        ));

        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Out", 1);
        b.rule("Out", &[v("x")])
            .when("Edge", &[v("x"), TermSpec::Int(u32::MAX)])
            .end();
        assert!(matches!(
            b.build(),
            Err(DatalogError::IntegerOutOfRange { .. })
        ));
    }

    #[test]
    fn raw_value_terms_pass_through_unchanged() {
        let mut b = ProgramBuilder::new();
        let sym = b.intern("handler");
        b.relation("Tagged", 2);
        b.fact(
            "Tagged",
            &[TermSpec::Value(sym), TermSpec::Value(Value::int(9))],
        );
        let p = b.build().unwrap();
        let (_, t) = &p.facts()[0];
        assert_eq!(t.get(0), Some(sym));
        assert_eq!(t.get(1), Some(Value::int(9)));
    }

    #[test]
    fn constraints_are_recorded_and_validated() {
        let mut b = ProgramBuilder::new();
        b.relation("R", 2);
        b.relation("Out", 2);
        b.rule("Out", &["x", "y"])
            .when("R", &["x", "y"])
            .lt(v("x"), v("y"))
            .ge(v("y"), c(2))
            .end();
        let p = b.build().unwrap();
        assert_eq!(p.rules()[0].constraints.len(), 2);
        assert_eq!(p.rules()[0].constraints[0].op, CmpOp::Lt);

        // A constraint over a variable bound nowhere is unsafe.
        let mut b = ProgramBuilder::new();
        b.relation("R", 1);
        b.relation("Out", 1);
        b.rule("Out", &["x"])
            .when("R", &["x"])
            .lt(v("x"), v("nope"))
            .end();
        assert!(matches!(
            b.build(),
            Err(DatalogError::UnsafeConstraintVariable { .. })
        ));
    }

    #[test]
    fn aggregate_heads_create_hidden_input_and_spec() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Deg", 2);
        b.rule("Deg", &[v("x"), count_of("y")])
            .when("Edge", &["x", "y"])
            .end();
        let p = b.build().unwrap();
        assert_eq!(p.aggregates().len(), 1);
        let spec = &p.aggregates()[0];
        assert_eq!(p.relation(spec.output).name, "Deg");
        assert_eq!(p.relation(spec.input).name, "Deg__agg_input");
        assert_eq!(spec.aggs, vec![(1, AggFunc::Count)]);
        assert_eq!(p.aggregate_for(spec.output), Some(spec));
        assert!(!p.relation(spec.output).is_edb);
    }

    #[test]
    fn aggregate_misuse_is_rejected() {
        // Aggregate term in a body literal.
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Out", 2);
        b.rule("Out", &["x", "y"])
            .when("Edge", &[v("x"), min_of("y")])
            .end();
        assert!(matches!(
            b.build(),
            Err(DatalogError::AggregateMisplaced { .. })
        ));

        // Aggregated relation with a second (ordinary) rule.
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Deg", 2);
        b.rule("Deg", &[v("x"), count_of("y")])
            .when("Edge", &["x", "y"])
            .end();
        b.rule("Deg", &["x", "y"]).when("Edge", &["x", "y"]).end();
        assert!(matches!(
            b.build(),
            Err(DatalogError::AggregateConflict { .. })
        ));

        // Facts into an aggregated relation.
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Deg", 2);
        b.rule("Deg", &[v("x"), count_of("y")])
            .when("Edge", &["x", "y"])
            .end();
        b.fact_ints("Deg", &[1, 1]);
        assert!(matches!(
            b.build(),
            Err(DatalogError::AggregateConflict { .. })
        ));
    }

    #[test]
    fn hidden_aggregate_input_name_is_reserved() {
        // A fact asserted into the reserved `<rel>__agg_input` name would
        // silently contaminate the aggregate's input; it must be rejected.
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Deg", 2);
        b.relation("Deg__agg_input", 2);
        b.rule("Deg", &[v("x"), count_of("y")])
            .when("Edge", &["x", "y"])
            .end();
        b.fact_ints("Deg__agg_input", &[5, 9]);
        assert!(matches!(
            b.build(),
            Err(DatalogError::AggregateConflict { relation }) if relation == "Deg__agg_input"
        ));

        // Likewise a user rule deriving the hidden relation.
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Deg", 2);
        b.relation("Deg__agg_input", 2);
        b.rule("Deg", &[v("x"), count_of("y")])
            .when("Edge", &["x", "y"])
            .end();
        b.rule("Deg__agg_input", &["x", "y"])
            .when("Edge", &["x", "y"])
            .end();
        assert!(matches!(
            b.build(),
            Err(DatalogError::AggregateConflict { .. })
        ));
    }

    #[test]
    fn aggregate_misplaced_names_the_offending_relation() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Out", 2);
        b.rule("Out", &["x", "y"])
            .when("Edge", &[v("x"), min_of("y")])
            .end();
        match b.build() {
            Err(DatalogError::AggregateMisplaced { relation }) => {
                assert_eq!(relation, "Edge");
            }
            other => panic!("expected AggregateMisplaced, got {other:?}"),
        }
    }

    #[test]
    fn rule_labels_and_positions_reach_the_resolved_rule() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Path", 2);
        b.rule("Path", &["x", "y"])
            .when("Edge", &["x", "y"])
            .label("base-case")
            .end();
        b.rule("Path", &["x", "y"])
            .when("Edge", &["x", "z"])
            .when("Path", &["z", "y"])
            .at(2, 1)
            .end();
        let p = b.build().unwrap();
        assert_eq!(p.rules()[0].origin.label.as_deref(), Some("base-case"));
        assert_eq!(p.rules()[0].origin.position, None);
        assert_eq!(p.rules()[1].origin.position, Some((2, 1)));
        assert!(p.rules()[1].origin.label.is_none());
    }

    #[test]
    fn mixed_term_specs_via_into() {
        let mut b = ProgramBuilder::new();
        b.relation("Fact", 2);
        b.relation("Out", 1);
        // `1u32.into()` is a constant, "x" is a variable.
        b.rule("Out", &[v("x")])
            .when("Fact", &[TermSpec::Int(1), v("x")])
            .end();
        let p = b.build().unwrap();
        let body_atom = &p.rules()[0].body[0].atom;
        assert_eq!(body_atom.terms[0], Term::Const(Value::int(1)));
        assert!(matches!(body_atom.terms[1], Term::Var(_)));
    }
}
