//! Embedded DSL for constructing Datalog programs programmatically.
//!
//! This is the Rust analogue of the paper's Scala-embedded DSL (§V-A): rules
//! and facts are first-class values constructed with ordinary function
//! calls, so workloads can be generated, transformed and composed by host
//! code.
//!
//! ```
//! use carac_datalog::builder::{ProgramBuilder, TermSpec};
//!
//! let mut b = ProgramBuilder::new();
//! b.relation("Edge", 2);
//! b.relation("Path", 2);
//! b.rule("Path", &["x", "y"]).when("Edge", &["x", "y"]).end();
//! b.rule("Path", &["x", "y"])
//!     .when("Edge", &["x", "z"])
//!     .when("Path", &["z", "y"])
//!     .end();
//! b.fact_ints("Edge", &[1, 2]);
//! b.fact_ints("Edge", &[2, 3]);
//! let program = b.build().unwrap();
//! assert_eq!(program.rules().len(), 2);
//! ```

use carac_storage::{RelId, SymbolTable, Tuple, Value};

use crate::ast::{Atom, Literal, RelationDecl, Rule, RuleId, Term, VarId};
use crate::error::DatalogError;
use carac_storage::hasher::FxHashMap;

use crate::precedence::Stratification;
use crate::program::Program;
use crate::validate;

/// A term as written by the user: a named variable, an integer constant, or
/// a string constant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TermSpec {
    /// A named variable ("x", "y", ...).
    Var(String),
    /// A small integer constant.
    Int(u32),
    /// A string constant, interned on build.
    Str(String),
}

impl From<&str> for TermSpec {
    /// Bare strings in rule positions are variables — the common case when
    /// writing analysis rules.  Use [`TermSpec::Str`] (or the [`s`] helper)
    /// for string constants.
    fn from(name: &str) -> Self {
        TermSpec::Var(name.to_string())
    }
}

impl From<u32> for TermSpec {
    fn from(n: u32) -> Self {
        TermSpec::Int(n)
    }
}

/// Helper constructing a variable term.
pub fn v(name: &str) -> TermSpec {
    TermSpec::Var(name.to_string())
}

/// Helper constructing an integer constant term.
pub fn c(n: u32) -> TermSpec {
    TermSpec::Int(n)
}

/// Helper constructing a string constant term.
pub fn s(text: &str) -> TermSpec {
    TermSpec::Str(text.to_string())
}

/// Partially built rule; finish with [`RuleBuilder::end`].
#[must_use = "call .end() to add the rule to the program"]
pub struct RuleBuilder<'a> {
    builder: &'a mut ProgramBuilder,
    head_rel: String,
    head_terms: Vec<TermSpec>,
    body: Vec<(String, Vec<TermSpec>, bool)>,
}

impl<'a> RuleBuilder<'a> {
    /// Adds a positive body literal.
    pub fn when<T: Into<TermSpec> + Clone>(mut self, rel: &str, terms: &[T]) -> Self {
        self.body.push((
            rel.to_string(),
            terms.iter().cloned().map(Into::into).collect(),
            false,
        ));
        self
    }

    /// Adds a negated body literal.
    pub fn when_not<T: Into<TermSpec> + Clone>(mut self, rel: &str, terms: &[T]) -> Self {
        self.body.push((
            rel.to_string(),
            terms.iter().cloned().map(Into::into).collect(),
            true,
        ));
        self
    }

    /// Finishes the rule and records it in the program builder.
    pub fn end(self) {
        self.builder.raw_rules.push(RawRule {
            head_rel: self.head_rel,
            head_terms: self.head_terms,
            body: self.body,
        });
    }
}

/// A rule before name resolution.
#[derive(Debug, Clone)]
struct RawRule {
    head_rel: String,
    head_terms: Vec<TermSpec>,
    body: Vec<(String, Vec<TermSpec>, bool)>,
}

/// Incremental program builder.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    relations: Vec<(String, usize)>,
    raw_rules: Vec<RawRule>,
    raw_facts: Vec<(String, Vec<TermSpec>)>,
    symbols: SymbolTable,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        ProgramBuilder::default()
    }

    /// Declares a relation with the given arity.  Declaring the same
    /// relation twice with the same arity is a no-op; conflicting arities
    /// are reported at [`build`](ProgramBuilder::build) time.
    pub fn relation(&mut self, name: &str, arity: usize) -> &mut Self {
        self.relations.push((name.to_string(), arity));
        self
    }

    /// Starts a rule with the given head.
    pub fn rule<T: Into<TermSpec> + Clone>(&mut self, head: &str, terms: &[T]) -> RuleBuilder<'_> {
        RuleBuilder {
            head_rel: head.to_string(),
            head_terms: terms.iter().cloned().map(Into::into).collect(),
            body: Vec::new(),
            builder: self,
        }
    }

    /// Adds a ground fact with arbitrary term specs (must all be constants).
    pub fn fact(&mut self, rel: &str, terms: &[TermSpec]) -> &mut Self {
        self.raw_facts.push((rel.to_string(), terms.to_vec()));
        self
    }

    /// Adds a ground fact of integer constants.
    pub fn fact_ints(&mut self, rel: &str, ints: &[u32]) -> &mut Self {
        let terms = ints.iter().map(|&n| TermSpec::Int(n)).collect::<Vec<_>>();
        self.raw_facts.push((rel.to_string(), terms));
        self
    }

    /// Interns a string constant eagerly (useful when the same value must be
    /// referenced both in facts and by host code inspecting results).
    pub fn intern(&mut self, text: &str) -> Value {
        self.symbols.intern(text)
    }

    /// Resolves names, validates the program, computes the stratification
    /// and returns the immutable [`Program`].
    pub fn build(mut self) -> Result<Program, DatalogError> {
        // 1. Deduplicate relation declarations, checking arities.
        let mut decls: Vec<RelationDecl> = Vec::new();
        let mut by_name: FxHashMap<String, RelId> = FxHashMap::default();
        for (name, arity) in &self.relations {
            if let Some(&existing) = by_name.get(name) {
                let prev = &decls[existing.index()];
                if prev.arity != *arity {
                    return Err(DatalogError::ConflictingDeclaration {
                        name: name.clone(),
                        first: prev.arity,
                        second: *arity,
                    });
                }
                continue;
            }
            let id = RelId(decls.len() as u32);
            by_name.insert(name.clone(), id);
            decls.push(RelationDecl {
                id,
                name: name.clone(),
                arity: *arity,
                is_edb: true, // refined below once rules are known
            });
        }

        let lookup = |name: &str, by_name: &FxHashMap<String, RelId>| -> Result<RelId, DatalogError> {
            by_name
                .get(name)
                .copied()
                .ok_or_else(|| DatalogError::UnknownRelation(name.to_string()))
        };

        // 2. Resolve rules: map names to RelIds and variable names to dense
        //    per-rule VarIds.
        let mut rules: Vec<Rule> = Vec::new();
        for (rule_idx, raw) in self.raw_rules.iter().enumerate() {
            let mut var_names: Vec<String> = Vec::new();
            let mut var_ids: FxHashMap<String, VarId> = FxHashMap::default();
            let mut resolve_terms =
                |specs: &[TermSpec], symbols: &mut SymbolTable| -> Vec<Term> {
                    specs
                        .iter()
                        .map(|spec| match spec {
                            TermSpec::Var(name) => {
                                let id = *var_ids.entry(name.clone()).or_insert_with(|| {
                                    let id = VarId(var_names.len() as u32);
                                    var_names.push(name.clone());
                                    id
                                });
                                Term::Var(id)
                            }
                            TermSpec::Int(n) => Term::Const(Value::int(*n)),
                            TermSpec::Str(text) => Term::Const(symbols.intern(text)),
                        })
                        .collect()
                };

            let head_rel = lookup(&raw.head_rel, &by_name)?;
            let head_terms = resolve_terms(&raw.head_terms, &mut self.symbols);
            let mut body = Vec::with_capacity(raw.body.len());
            for (rel_name, terms, negated) in &raw.body {
                let rel = lookup(rel_name, &by_name)?;
                let atom = Atom::new(rel, resolve_terms(terms, &mut self.symbols));
                body.push(Literal {
                    atom,
                    negated: *negated,
                });
            }
            rules.push(Rule {
                id: RuleId(rule_idx as u32),
                head: Atom::new(head_rel, head_terms),
                body,
                var_names,
            });
        }

        // 3. Classify relations: anything appearing in a rule head is IDB.
        for rule in &rules {
            decls[rule.head.rel.index()].is_edb = false;
        }

        // 4. Resolve facts.
        let mut facts: Vec<(RelId, Tuple)> = Vec::new();
        for (rel_name, terms) in &self.raw_facts {
            let rel = lookup(rel_name, &by_name)?;
            let mut values = Vec::with_capacity(terms.len());
            for term in terms {
                match term {
                    TermSpec::Int(n) => values.push(Value::int(*n)),
                    TermSpec::Str(text) => values.push(self.symbols.intern(text)),
                    TermSpec::Var(_) => {
                        return Err(DatalogError::NonGroundFact(rel_name.clone()))
                    }
                }
            }
            facts.push((rel, Tuple::new(values)));
        }

        // 5. Validate arities, safety and fact shapes.
        validate::validate(&decls, &rules, &facts, &self.symbols)?;

        // 6. Stratify (also rejects negation through recursion).
        let stratification = Stratification::compute(&decls, &rules)?;

        Ok(Program::new(decls, rules, facts, self.symbols, stratification))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicate_declaration_same_arity_is_ok() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Edge", 2);
        assert!(b.build().is_ok());
    }

    #[test]
    fn conflicting_arity_is_rejected() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Edge", 3);
        assert!(matches!(
            b.build(),
            Err(DatalogError::ConflictingDeclaration { .. })
        ));
    }

    #[test]
    fn unknown_relation_in_rule_is_rejected() {
        let mut b = ProgramBuilder::new();
        b.relation("Path", 2);
        b.rule("Path", &["x", "y"]).when("Edge", &["x", "y"]).end();
        assert!(matches!(b.build(), Err(DatalogError::UnknownRelation(_))));
    }

    #[test]
    fn string_constants_are_interned() {
        let mut b = ProgramBuilder::new();
        b.relation("InvFuns", 2);
        b.fact("InvFuns", &[s("deserialize"), s("serialize")]);
        b.fact("InvFuns", &[s("deserialize"), s("serialize")]);
        let p = b.build().unwrap();
        assert_eq!(p.facts().len(), 2);
        let (_, t) = &p.facts()[0];
        assert_eq!(p.symbols().display(t.get(0).unwrap()), "deserialize");
    }

    #[test]
    fn facts_with_variables_are_rejected() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.fact("Edge", &[v("x"), c(1)]);
        assert!(matches!(b.build(), Err(DatalogError::NonGroundFact(_))));
    }

    #[test]
    fn variables_are_shared_within_a_rule() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Path", 2);
        b.rule("Path", &["x", "y"])
            .when("Edge", &["x", "z"])
            .when("Path", &["z", "y"])
            .end();
        let p = b.build().unwrap();
        let rule = &p.rules()[0];
        // x, y, z → 3 distinct variables.
        assert_eq!(rule.num_vars(), 3);
        // The `z` in both body atoms resolves to the same VarId.
        let edge_z = rule.body[0].atom.terms[1];
        let path_z = rule.body[1].atom.terms[0];
        assert_eq!(edge_z, path_z);
    }

    #[test]
    fn mixed_term_specs_via_into() {
        let mut b = ProgramBuilder::new();
        b.relation("Fact", 2);
        b.relation("Out", 1);
        // `1u32.into()` is a constant, "x" is a variable.
        b.rule("Out", &[v("x")])
            .when("Fact", &[TermSpec::Int(1), v("x")])
            .end();
        let p = b.build().unwrap();
        let body_atom = &p.rules()[0].body[0].atom;
        assert_eq!(body_atom.terms[0], Term::Const(Value::int(1)));
        assert!(matches!(body_atom.terms[1], Term::Var(_)));
    }
}
