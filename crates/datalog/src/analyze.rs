//! Static program analysis: abstract interpretation over comparison
//! constraints, emptiness/reachability dataflow, redundancy detection, and
//! semantics-preserving pruning.
//!
//! The analyzer runs over *validated* programs (anything a
//! [`ProgramBuilder`](crate::builder::ProgramBuilder) or the parser
//! returns) and produces machine-readable [`Diagnostic`]s:
//!
//! * **Errors** — rules and relations that provably contribute nothing:
//!   unsatisfiable rules (contradictory constraints, `x < 5, x > 9`),
//!   dead rules (bodies depending on transitively-empty relations given the
//!   program's EDB facts), never-derivable relations, and duplicate or
//!   subsumed rules (body subsumption up to variable renaming).
//! * **Warnings** — suspicious but legal patterns: relations that nothing
//!   reads, variables bound once and never read, and comparisons that are
//!   statically true because their operands are pinned constant.
//!
//! Two abstract domains drive the rule-level verdicts:
//!
//! * **Constant propagation / intervals per rule body.**  Every rule
//!   variable starts at the full value interval `[0, u32::MAX]` (raw
//!   [`Value`] order, matching [`CmpOp::eval`]) and is narrowed to a
//!   fixpoint by the rule's comparison constraints; an empty interval means
//!   the rule can never fire.  A reachability check over the strict-order
//!   digraph catches pure variable cycles (`x < y, y < x`) that interval
//!   narrowing alone converges on too slowly.
//! * **Column intervals over the stratified dependency graph.**  Extensional
//!   columns take the min/max of the program's facts; intensional columns
//!   are a least fixpoint of the rules' head projections.  The result both
//!   refines rule-level satisfiability (a constraint can be statically
//!   false under the values that actually flow) and is exported as
//!   [`Analysis::interval_hints`] — refined selectivity hints consumed by
//!   the cost model's `atom_score`.
//!
//! [`prune`] drops every rule and (optionally) relation convicted at error
//! level and rebuilds the program through the builder, so the pruned
//! program re-validates and re-stratifies from scratch.  Pruning is
//! semantics-preserving: dropped rules derive nothing (unsatisfiable /
//! dead) or derive a subset of what a kept rule derives (duplicate /
//! subsumed), and dropped relations are provably empty and unreferenced.
//!
//! For engines that accept *update streams* (incremental maintenance), the
//! fact set is not frozen: [`AnalysisOptions::assume_edb_nonempty`] makes
//! the analysis update-independent by treating every extensional relation
//! as potentially non-empty, which suppresses the data-dependent verdicts
//! and keeps only the structural ones (contradictory constraints,
//! duplicates, subsumption, relations no rule can ever derive).

use std::fmt;

use carac_storage::hasher::{FxHashMap, FxHashSet};
use carac_storage::{AggFunc, CmpOp, RelId, Value};

use crate::ast::{Rule, RuleId, Term};
use crate::program::Program;

/// How serious a [`Diagnostic`] is.  `Error` diagnostics identify rules or
/// relations that provably contribute nothing to any result (and are what
/// [`prune`] removes); `Warning` diagnostics flag legal but suspicious
/// patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but legal; evaluation is unaffected.
    Warning,
    /// Provably useless work: the subject can be pruned without changing
    /// any result.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Machine-readable diagnostic codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiagnosticCode {
    /// The rule's comparison constraints are contradictory (or statically
    /// false under propagated constants): it can never fire.
    UnsatisfiableRule,
    /// A positive body literal reads a relation that is provably empty, so
    /// the rule can never fire.
    DeadRule,
    /// An intensional relation that can never hold a tuple.
    UnreachableRelation,
    /// The rule is identical (up to variable renaming) to an earlier rule.
    DuplicateRule,
    /// Everything the rule derives, an earlier/more-general rule already
    /// derives (body subsumption up to variable renaming).
    SubsumedRule,
    /// An extensional relation that no rule body reads.
    UnusedRelation,
    /// A variable bound once and never read (no join, head, negation or
    /// constraint uses it).
    SingletonVariable,
    /// A comparison that is statically true because its operands are
    /// pinned constant (by `=` constraints or constant columns).
    ConstantComparison,
    /// An ordered comparison (`<`, `<=`, `>`, `>=`) over an operand the
    /// type inference proves to be a symbol, or a comparison whose operand
    /// types are disjoint (one always int, one always symbol): the interned
    /// symbol order is meaningless, so the result is arbitrary.
    TypeConfusedComparison,
    /// A `sum`/`min`/`max` fold over a column the type inference proves to
    /// be a symbol: folding interned ids is meaningless (`count` is fine).
    TypeConfusedAggregate,
}

impl DiagnosticCode {
    /// The stable kebab-case code string (used in rendered diagnostics and
    /// CI assertions).
    pub fn as_str(self) -> &'static str {
        match self {
            DiagnosticCode::UnsatisfiableRule => "unsat-rule",
            DiagnosticCode::DeadRule => "dead-rule",
            DiagnosticCode::UnreachableRelation => "unreachable-relation",
            DiagnosticCode::DuplicateRule => "duplicate-rule",
            DiagnosticCode::SubsumedRule => "subsumed-rule",
            DiagnosticCode::UnusedRelation => "unused-relation",
            DiagnosticCode::SingletonVariable => "singleton-variable",
            DiagnosticCode::ConstantComparison => "constant-comparison",
            DiagnosticCode::TypeConfusedComparison => "type-confused-comparison",
            DiagnosticCode::TypeConfusedAggregate => "type-confused-aggregate",
        }
    }

    /// The severity this code is always reported at.
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticCode::UnsatisfiableRule
            | DiagnosticCode::DeadRule
            | DiagnosticCode::UnreachableRelation
            | DiagnosticCode::DuplicateRule
            | DiagnosticCode::SubsumedRule => Severity::Error,
            DiagnosticCode::UnusedRelation
            | DiagnosticCode::SingletonVariable
            | DiagnosticCode::ConstantComparison
            | DiagnosticCode::TypeConfusedComparison
            | DiagnosticCode::TypeConfusedAggregate => Severity::Warning,
        }
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Machine-readable code.
    pub code: DiagnosticCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// The rule the finding is about, if any.
    pub rule: Option<RuleId>,
    /// The relation the finding is about, if any.
    pub relation: Option<RelId>,
    /// Human-readable message citing the rule's source label/position when
    /// available.
    pub message: String,
}

impl Diagnostic {
    /// Renders the diagnostic as one self-contained JSON object with the
    /// stable keys `code`, `severity`, `rule`, `relation`, `message`
    /// (`rule`/`relation` are `null` when the finding has no subject of
    /// that kind).  The code strings are the registry documented in
    /// `docs/DIAGNOSTICS.md`, so CI and editors can match on them.
    pub fn to_json(&self) -> String {
        let opt = |id: Option<u32>| match id {
            Some(id) => id.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"rule\":{},\"relation\":{},\"message\":\"{}\"}}",
            self.code.as_str(),
            self.severity,
            opt(self.rule.map(|r| r.0)),
            opt(self.relation.map(|r| r.0)),
            escape_json(&self.message)
        )
    }
}

/// Escapes a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity,
            self.code.as_str(),
            self.message
        )
    }
}

/// Abstract type of one relation column: the lattice
/// `⊥ ⊑ {int, symbol} ⊑ ⊤` over the [`Value`] tagging scheme (interned
/// symbols live above `SYMBOL_BASE`, ints below), propagated from facts and
/// head constants through rule bodies and aggregates to a least fixpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// No value can ever flow here (bottom).
    #[default]
    Never,
    /// Every value that can flow here is a plain integer.
    Int,
    /// Every value that can flow here is an interned symbol.
    Symbol,
    /// Both kinds of value can flow here (top).
    Any,
}

impl ColumnType {
    /// The type of one concrete value.
    pub fn of(value: Value) -> ColumnType {
        if value.is_symbol() {
            ColumnType::Symbol
        } else {
            ColumnType::Int
        }
    }

    /// Least upper bound: what a column may hold given both inputs flow in.
    pub fn join(self, other: ColumnType) -> ColumnType {
        match (self, other) {
            (a, b) if a == b => a,
            (ColumnType::Never, x) | (x, ColumnType::Never) => x,
            _ => ColumnType::Any,
        }
    }

    /// Greatest lower bound: what a variable may hold given it must match
    /// both inputs.  `Int ⊓ Symbol = Never` — the value kinds are disjoint.
    pub fn meet(self, other: ColumnType) -> ColumnType {
        match (self, other) {
            (a, b) if a == b => a,
            (ColumnType::Any, x) | (x, ColumnType::Any) => x,
            _ => ColumnType::Never,
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Never => write!(f, "never"),
            ColumnType::Int => write!(f, "int"),
            ColumnType::Symbol => write!(f, "symbol"),
            ColumnType::Any => write!(f, "any"),
        }
    }
}

/// Inferred type per `(relation, column)`, for every declared column.
pub type ColumnTypes = FxHashMap<(RelId, usize), ColumnType>;

/// Why [`prune`] drops a rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Contradictory or statically-false constraints.
    Unsatisfiable,
    /// A positive body literal reads a provably-empty relation.
    Dead,
    /// Identical (up to renaming) to the cited kept rule.
    Duplicate(RuleId),
    /// Subsumed by the cited kept rule.
    Subsumed(RuleId),
}

/// Analysis knobs.  The default analyzes the program's fact set as frozen
/// (one-shot evaluation).
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptions {
    /// Treat every extensional relation as potentially non-empty.  Set for
    /// programs that will receive update streams: emptiness then depends
    /// only on the rule/dependency structure, so every verdict stays valid
    /// under any sequence of EDB inserts and deletes.
    pub assume_edb_nonempty: bool,
    /// Additional relations to treat as non-empty (facts the caller will
    /// supply at run time, outside `program.facts()`).
    pub extra_nonempty: FxHashSet<RelId>,
}

/// The result of [`analyze`]: diagnostics, per-rule prune verdicts,
/// emptiness facts and column-interval facts.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// All findings, rules first (in rule order), then relations.
    pub diagnostics: Vec<Diagnostic>,
    /// Per rule (indexed by `RuleId`), why pruning drops it — `None` for
    /// kept rules.
    pub drop_reasons: Vec<Option<DropReason>>,
    /// Relations that can never hold a tuple under the analyzed options
    /// (never-derivable IDB relations and factless EDB relations).
    pub empty_relations: Vec<RelId>,
    /// Interval facts: for `(relation, column)` keys, the inclusive
    /// `(min, max)` raw-value range that can ever flow into the column.
    /// Only columns with a range narrower than the full value space have
    /// entries; provably-empty relations have none.
    pub interval_hints: FxHashMap<(RelId, usize), (u32, u32)>,
    /// Inferred [`ColumnType`] for every declared `(relation, column)` —
    /// the type-lattice fixpoint behind the `type-confused-*` diagnostics,
    /// exported for downstream consumers (verifiers, editors).
    pub column_types: ColumnTypes,
}

impl Analysis {
    /// Number of error-level diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-level diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether any error-level diagnostic was reported.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// The diagnostics carrying a specific code.
    pub fn with_code(&self, code: DiagnosticCode) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }
}

/// The outcome of [`prune`]: the rebuilt program plus an account of what
/// was dropped.
#[derive(Debug, Clone)]
pub struct PrunedProgram {
    /// The rebuilt (re-validated, re-stratified) program.
    pub program: Program,
    /// Original ids of the dropped rules, ascending, with reasons.
    pub dropped_rules: Vec<(RuleId, DropReason)>,
    /// Original ids of the kept rules, in the pruned program's rule order.
    pub kept_rules: Vec<RuleId>,
    /// Names of relations whose declarations were dropped entirely.
    pub dropped_relations: Vec<String>,
    /// The analysis that drove the prune.
    pub analysis: Analysis,
}

/// Analyzes `program` with default options (frozen fact set).
pub fn analyze(program: &Program) -> Analysis {
    analyze_with(program, &AnalysisOptions::default())
}

/// Analyzes `program` under `options`.
pub fn analyze_with(program: &Program, options: &AnalysisOptions) -> Analysis {
    let pass = Pass::run(program, options);
    pass.into_analysis(program)
}

/// Prunes `program` with default options: drops error-level rules and the
/// relations they leave provably empty and unreferenced.  The result is
/// semantics-preserving for one-shot evaluation of the program's frozen
/// fact set; use [`prune_with`] with
/// [`AnalysisOptions::assume_edb_nonempty`] when updates may follow.
pub fn prune(program: &Program) -> PrunedProgram {
    prune_with(program, &AnalysisOptions::default(), false)
}

/// Prunes `program` under `options`.  With `keep_declarations` set, every
/// relation declaration survives (only rules are dropped), so result
/// lookups by name behave identically on the pruned program — this is what
/// the engine's `with_prune` seam uses.
pub fn prune_with(
    program: &Program,
    options: &AnalysisOptions,
    keep_declarations: bool,
) -> PrunedProgram {
    let analysis = analyze_with(program, options);
    let mut dropped_rules = Vec::new();
    let mut kept_rules = Vec::new();
    for rule in program.rules() {
        match analysis.drop_reasons[rule.id.index()] {
            Some(reason) => dropped_rules.push((rule.id, reason)),
            None => kept_rules.push(rule.id),
        }
    }

    // A declaration can be dropped only when it is provably empty and
    // nothing kept references it: no kept rule (head, positive or negated
    // body), no fact, no aggregate (either side).  Aggregate relations are
    // pinned wholesale, mirroring alias elimination.
    let mut referenced = vec![false; program.relations().len()];
    for &id in &kept_rules {
        let rule = program.rule(id);
        referenced[rule.head.rel.index()] = true;
        for literal in &rule.body {
            referenced[literal.atom.rel.index()] = true;
        }
    }
    for (rel, _) in program.facts() {
        referenced[rel.index()] = true;
    }
    for spec in program.aggregates() {
        referenced[spec.input.index()] = true;
        referenced[spec.output.index()] = true;
    }
    let drop_decl = |rel: RelId| -> bool {
        !keep_declarations && !referenced[rel.index()] && analysis.empty_relations.contains(&rel)
    };

    let mut dropped_relations = Vec::new();
    let mut builder = crate::builder::ProgramBuilder::new();
    builder.with_symbols(program.symbols().clone());
    for decl in program.relations() {
        if drop_decl(decl.id) {
            dropped_relations.push(decl.name.clone());
        } else {
            builder.relation(&decl.name, decl.arity);
        }
    }
    let to_spec = |term: &Term, rule: &Rule| match term {
        Term::Var(v) => crate::builder::TermSpec::Var(rule.var_names[v.index()].clone()),
        Term::Const(c) => crate::builder::TermSpec::Value(*c),
    };
    for &id in &kept_rules {
        let rule = program.rule(id);
        let head_name = &program.relation(rule.head.rel).name;
        let head_terms: Vec<_> = rule.head.terms.iter().map(|t| to_spec(t, rule)).collect();
        let mut rb = builder.rule(head_name, &head_terms);
        for literal in &rule.body {
            let rel_name = &program.relation(literal.atom.rel).name;
            let terms: Vec<_> = literal
                .atom
                .terms
                .iter()
                .map(|t| to_spec(t, rule))
                .collect();
            rb = if literal.negated {
                rb.when_not(rel_name, &terms)
            } else {
                rb.when(rel_name, &terms)
            };
        }
        for constraint in &rule.constraints {
            rb = rb.constrain(
                to_spec(&constraint.lhs, rule),
                constraint.op,
                to_spec(&constraint.rhs, rule),
            );
        }
        if let Some(label) = &rule.origin.label {
            rb = rb.label(label);
        }
        if let Some((line, col)) = rule.origin.position {
            rb = rb.at(line, col);
        }
        rb.end();
    }
    for (rel, tuple) in program.facts() {
        let name = &program.relation(*rel).name;
        let specs: Vec<_> = tuple
            .values()
            .iter()
            .map(|v| crate::builder::TermSpec::Value(*v))
            .collect();
        builder.fact(name, &specs);
    }
    for spec in program.aggregates() {
        builder.aggregate(
            &program.relation(spec.output).name,
            &program.relation(spec.input).name,
            &spec.aggs,
        );
    }
    let pruned = builder.build().expect("pruning must preserve validity");
    PrunedProgram {
        program: pruned,
        dropped_rules,
        kept_rules,
        dropped_relations,
        analysis,
    }
}

// ---------------------------------------------------------------------------
// Interval domain
// ---------------------------------------------------------------------------

/// An inclusive interval over raw 32-bit values; `lo > hi` means empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Interval {
    lo: u32,
    hi: u32,
}

impl Interval {
    const FULL: Interval = Interval {
        lo: 0,
        hi: u32::MAX,
    };
    const EMPTY: Interval = Interval { lo: 1, hi: 0 };

    fn singleton(v: u32) -> Interval {
        Interval { lo: v, hi: v }
    }

    fn is_empty(self) -> bool {
        self.lo > self.hi
    }

    fn as_singleton(self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Greatest lower bound (intersection).
    fn meet(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        }
    }

    /// Least upper bound (interval hull).
    fn join(self, other: Interval) -> Interval {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return self;
        }
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// Narrows `(a, b)` under `a op b`.  Returns the refined pair; either side
/// may come back empty (the constraint is unsatisfiable on these ranges).
fn narrow(op: CmpOp, a: Interval, b: Interval) -> (Interval, Interval) {
    if a.is_empty() || b.is_empty() {
        return (Interval::EMPTY, Interval::EMPTY);
    }
    match op {
        CmpOp::Lt => {
            let a2 = match b.hi.checked_sub(1) {
                Some(hi) => a.meet(Interval { lo: 0, hi }),
                None => Interval::EMPTY,
            };
            let b2 = match a.lo.checked_add(1) {
                Some(lo) => b.meet(Interval { lo, hi: u32::MAX }),
                None => Interval::EMPTY,
            };
            (a2, b2)
        }
        CmpOp::Le => (
            a.meet(Interval { lo: 0, hi: b.hi }),
            b.meet(Interval {
                lo: a.lo,
                hi: u32::MAX,
            }),
        ),
        CmpOp::Gt => {
            let (b2, a2) = narrow(CmpOp::Lt, b, a);
            (a2, b2)
        }
        CmpOp::Ge => {
            let (b2, a2) = narrow(CmpOp::Le, b, a);
            (a2, b2)
        }
        CmpOp::Eq => {
            let m = a.meet(b);
            (m, m)
        }
        CmpOp::Ne => {
            let mut a2 = a;
            let mut b2 = b;
            if let Some(v) = b.as_singleton() {
                if a2.lo == v {
                    a2 = match v.checked_add(1) {
                        Some(lo) => Interval { lo, hi: a2.hi },
                        None => Interval::EMPTY,
                    };
                }
                if !a2.is_empty() && a2.hi == v {
                    a2 = match v.checked_sub(1) {
                        Some(hi) => Interval { lo: a2.lo, hi },
                        None => Interval::EMPTY,
                    };
                }
            }
            if let Some(v) = a.as_singleton() {
                if b2.lo == v {
                    b2 = match v.checked_add(1) {
                        Some(lo) => Interval { lo, hi: b2.hi },
                        None => Interval::EMPTY,
                    };
                }
                if !b2.is_empty() && b2.hi == v {
                    b2 = match v.checked_sub(1) {
                        Some(hi) => Interval { lo: b2.lo, hi },
                        None => Interval::EMPTY,
                    };
                }
            }
            (a2, b2)
        }
    }
}

/// Per-rule abstract interpretation: narrows every variable's interval to a
/// fixpoint under the rule's constraints.  `seed` supplies initial
/// intervals per variable (from body-atom column ranges); `None` seeds mean
/// the full interval.  Returns `None` when the constraints are
/// unsatisfiable on the seeded ranges.
fn rule_var_intervals(rule: &Rule, seed: Option<&[Interval]>) -> Option<Vec<Interval>> {
    let mut iv: Vec<Interval> = match seed {
        Some(seed) => seed.to_vec(),
        None => vec![Interval::FULL; rule.num_vars()],
    };
    if iv.iter().any(|i| i.is_empty()) {
        return None;
    }
    let term_iv = |t: Term, iv: &[Interval]| match t {
        Term::Var(v) => iv[v.index()],
        Term::Const(c) => Interval::singleton(c.raw()),
    };
    // Narrowing only shrinks, so the loop terminates; the pass cap guards
    // against slow convergence on variable-to-variable chains (the strict
    // order cycle check below catches the pathological contradictions).
    for _ in 0..32 {
        let mut changed = false;
        for constraint in &rule.constraints {
            let (a, b) = narrow(
                constraint.op,
                term_iv(constraint.lhs, &iv),
                term_iv(constraint.rhs, &iv),
            );
            if a.is_empty() || b.is_empty() {
                return None;
            }
            if let Term::Var(v) = constraint.lhs {
                if iv[v.index()] != a {
                    iv[v.index()] = a;
                    changed = true;
                }
            }
            if let Term::Var(v) = constraint.rhs {
                if iv[v.index()] != b {
                    iv[v.index()] = b;
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Strict-order cycle check: a `u < v` edge inside a `<=`-reachable
    // cycle (x < y, y <= x) is a contradiction interval narrowing may only
    // converge on after ~2^32 passes.
    if has_strict_cycle(rule) {
        return None;
    }
    Some(iv)
}

/// Whether the rule's order constraints contain a cycle through at least
/// one strict edge (`x < y, y <= z, z <= x`).  Equalities add edges both
/// ways.
fn has_strict_cycle(rule: &Rule) -> bool {
    let n = rule.num_vars();
    // adj[u] = (v, strict) edges meaning u ≤ v (strict: u < v).
    let mut adj: Vec<Vec<(usize, bool)>> = vec![Vec::new(); n];
    let add = |from: Term, to: Term, strict: bool, adj: &mut Vec<Vec<(usize, bool)>>| {
        if let (Term::Var(a), Term::Var(b)) = (from, to) {
            adj[a.index()].push((b.index(), strict));
        }
    };
    for c in &rule.constraints {
        match c.op {
            CmpOp::Lt => add(c.lhs, c.rhs, true, &mut adj),
            CmpOp::Le => add(c.lhs, c.rhs, false, &mut adj),
            CmpOp::Gt => add(c.rhs, c.lhs, true, &mut adj),
            CmpOp::Ge => add(c.rhs, c.lhs, false, &mut adj),
            CmpOp::Eq => {
                add(c.lhs, c.rhs, false, &mut adj);
                add(c.rhs, c.lhs, false, &mut adj);
            }
            CmpOp::Ne => {}
        }
    }
    // For every strict edge u -> v, a contradiction exists iff v reaches u.
    for u in 0..n {
        for &(v, strict) in &adj[u] {
            if !strict {
                continue;
            }
            let mut seen = vec![false; n];
            let mut stack = vec![v];
            while let Some(w) = stack.pop() {
                if w == u {
                    return true;
                }
                if seen[w] {
                    continue;
                }
                seen[w] = true;
                for &(next, _) in &adj[w] {
                    stack.push(next);
                }
            }
        }
    }
    false
}

// ---------------------------------------------------------------------------
// Rule subsumption
// ---------------------------------------------------------------------------

/// Whether rule `a` subsumes rule `b`: a variable substitution θ over `a`'s
/// variables exists with θ(head_a) = head_b, every θ(literal) of `a`'s body
/// appearing in `b`'s body (same relation and polarity), and every
/// θ(constraint) of `a` appearing among `b`'s constraints.  Then everything
/// `b` derives, `a` derives, so dropping `b` preserves semantics.
fn subsumes(a: &Rule, b: &Rule) -> bool {
    if a.head.rel != b.head.rel || a.body.len() > b.body.len() {
        return false;
    }
    // θ: VarId of a -> Term of b.
    let mut theta: Vec<Option<Term>> = vec![None; a.num_vars()];
    fn unify_term(theta: &mut [Option<Term>], ta: Term, tb: Term) -> Option<Option<usize>> {
        // Returns Some(binding-slot-to-undo) on success, None on clash.
        match ta {
            Term::Const(ca) => match tb {
                Term::Const(cb) if ca == cb => Some(None),
                _ => None,
            },
            Term::Var(v) => match theta[v.index()] {
                Some(bound) if bound == tb => Some(None),
                Some(_) => None,
                None => {
                    theta[v.index()] = Some(tb);
                    Some(Some(v.index()))
                }
            },
        }
    }
    fn unify_atoms(
        theta: &mut [Option<Term>],
        a_terms: &[Term],
        b_terms: &[Term],
    ) -> Option<Vec<usize>> {
        if a_terms.len() != b_terms.len() {
            return None;
        }
        let mut undo = Vec::new();
        for (&ta, &tb) in a_terms.iter().zip(b_terms) {
            match unify_term(theta, ta, tb) {
                Some(Some(slot)) => undo.push(slot),
                Some(None) => {}
                None => {
                    for slot in undo {
                        theta[slot] = None;
                    }
                    return None;
                }
            }
        }
        Some(undo)
    }
    fn match_body(theta: &mut [Option<Term>], a: &Rule, b: &Rule, idx: usize) -> bool {
        let Some(lit_a) = a.body.get(idx) else {
            return match_constraints(theta, a, b);
        };
        for lit_b in &b.body {
            if lit_b.atom.rel != lit_a.atom.rel || lit_b.negated != lit_a.negated {
                continue;
            }
            if let Some(undo) = unify_atoms(theta, &lit_a.atom.terms, &lit_b.atom.terms) {
                if match_body(theta, a, b, idx + 1) {
                    return true;
                }
                for slot in undo {
                    theta[slot] = None;
                }
            }
        }
        false
    }
    fn match_constraints(theta: &mut [Option<Term>], a: &Rule, b: &Rule) -> bool {
        // Body variables of `a` are all bound by now (validation guarantees
        // constraint/head variables occur in the positive body).
        let apply = |t: Term| match t {
            Term::Var(v) => theta[v.index()].expect("safe rules bind every variable"),
            Term::Const(_) => t,
        };
        a.constraints.iter().all(|ca| {
            b.constraints
                .iter()
                .any(|cb| cb.op == ca.op && apply(ca.lhs) == cb.lhs && apply(ca.rhs) == cb.rhs)
        })
    }

    // Bind the head first: cheap and prunes the search hard.
    let Some(head_undo) = unify_atoms(&mut theta, &a.head.terms, &b.head.terms) else {
        return false;
    };
    let _ = head_undo;
    match_body(&mut theta, a, b, 0)
}

// ---------------------------------------------------------------------------
// The analysis pass
// ---------------------------------------------------------------------------

struct Pass {
    drop_reasons: Vec<Option<DropReason>>,
    unsat: Vec<bool>,
    nonempty: Vec<bool>,
    col_iv: Vec<Vec<Interval>>,
    col_ty: Vec<Vec<ColumnType>>,
    diagnostics: Vec<Diagnostic>,
}

impl Pass {
    fn run(program: &Program, options: &AnalysisOptions) -> Pass {
        let nrels = program.relations().len();
        let nrules = program.rules().len();
        let mut pass = Pass {
            drop_reasons: vec![None; nrules],
            unsat: vec![false; nrules],
            nonempty: vec![false; nrels],
            col_iv: program
                .relations()
                .iter()
                .map(|d| vec![Interval::EMPTY; d.arity])
                .collect(),
            col_ty: program
                .relations()
                .iter()
                .map(|d| vec![ColumnType::Never; d.arity])
                .collect(),
            diagnostics: Vec::new(),
        };
        pass.seed_from_facts(program, options);
        pass.column_fixpoint(program);
        pass.type_fixpoint(program);
        pass.warn_type_confusion(program);
        pass.rule_satisfiability(program, options);
        pass.emptiness_fixpoint(program);
        pass.convict_dead_rules(program);
        pass.convict_redundant_rules(program);
        pass.relation_diagnostics(program, options);
        pass.warn_singleton_variables(program);
        pass
    }

    fn seed_from_facts(&mut self, program: &Program, options: &AnalysisOptions) {
        for (rel, tuple) in program.facts() {
            self.nonempty[rel.index()] = true;
            for (col, value) in tuple.values().iter().enumerate() {
                self.col_iv[rel.index()][col] =
                    self.col_iv[rel.index()][col].join(Interval::singleton(value.raw()));
                self.col_ty[rel.index()][col] =
                    self.col_ty[rel.index()][col].join(ColumnType::of(*value));
            }
        }
        for rel in &options.extra_nonempty {
            self.nonempty[rel.index()] = true;
            for iv in &mut self.col_iv[rel.index()] {
                *iv = Interval::FULL;
            }
            for ty in &mut self.col_ty[rel.index()] {
                *ty = ColumnType::Any;
            }
        }
        if options.assume_edb_nonempty {
            for decl in program.relations() {
                if decl.is_edb {
                    self.nonempty[decl.id.index()] = true;
                    for iv in &mut self.col_iv[decl.id.index()] {
                        *iv = Interval::FULL;
                    }
                    for ty in &mut self.col_ty[decl.id.index()] {
                        *ty = ColumnType::Any;
                    }
                }
            }
        }
    }

    /// Least-fixpoint propagation of column intervals through rule heads
    /// and aggregates.  Joins only widen, and every endpoint is drawn from
    /// the finite set of fact values and constraint constants (±1), so the
    /// loop converges; the pass cap widens to the full interval as a
    /// sound fallback.
    fn column_fixpoint(&mut self, program: &Program) {
        let max_passes = 8 * program.rules().len() + 8;
        for pass in 0..=max_passes {
            if pass == max_passes {
                for decl in program.relations() {
                    if !decl.is_edb {
                        for iv in &mut self.col_iv[decl.id.index()] {
                            *iv = Interval::FULL;
                        }
                    }
                }
                break;
            }
            let mut changed = false;
            for rule in program.rules() {
                let Some(var_iv) = self.body_var_intervals(rule) else {
                    continue; // cannot fire yet (or ever)
                };
                for (col, term) in rule.head.terms.iter().enumerate() {
                    let head_iv = match term {
                        Term::Const(c) => Interval::singleton(c.raw()),
                        Term::Var(v) => var_iv[v.index()],
                    };
                    let slot = &mut self.col_iv[rule.head.rel.index()][col];
                    let joined = slot.join(head_iv);
                    if joined != *slot {
                        *slot = joined;
                        changed = true;
                    }
                }
            }
            for spec in program.aggregates() {
                let agg_cols: FxHashMap<usize, AggFunc> = spec.aggs.iter().copied().collect();
                for col in 0..self.col_iv[spec.output.index()].len() {
                    let in_iv = self.col_iv[spec.input.index()][col];
                    let out_iv = match agg_cols.get(&col) {
                        // Min/max fold stays within the input's range;
                        // count/sum can exceed it arbitrarily.
                        None | Some(AggFunc::Min) | Some(AggFunc::Max) => in_iv,
                        Some(AggFunc::Count) | Some(AggFunc::Sum) => {
                            if in_iv.is_empty() {
                                in_iv
                            } else {
                                Interval::FULL
                            }
                        }
                    };
                    let slot = &mut self.col_iv[spec.output.index()][col];
                    let joined = slot.join(out_iv);
                    if joined != *slot {
                        *slot = joined;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Least-fixpoint propagation of [`ColumnType`]s through rule heads and
    /// aggregates.  Joins only climb a four-point lattice, so the loop
    /// converges in at most `4 × columns` passes.
    fn type_fixpoint(&mut self, program: &Program) {
        loop {
            let mut changed = false;
            for rule in program.rules() {
                let Some(var_ty) = self.body_var_types(rule) else {
                    continue; // some body column is still ⊥: cannot fire yet
                };
                for (col, term) in rule.head.terms.iter().enumerate() {
                    let head_ty = match term {
                        Term::Const(c) => ColumnType::of(*c),
                        Term::Var(v) => var_ty[v.index()],
                    };
                    let slot = &mut self.col_ty[rule.head.rel.index()][col];
                    let joined = slot.join(head_ty);
                    if joined != *slot {
                        *slot = joined;
                        changed = true;
                    }
                }
            }
            for spec in program.aggregates() {
                let agg_cols: FxHashMap<usize, AggFunc> = spec.aggs.iter().copied().collect();
                for col in 0..self.col_ty[spec.output.index()].len() {
                    let in_ty = self.col_ty[spec.input.index()][col];
                    let out_ty = match agg_cols.get(&col) {
                        // Group keys and min/max folds pass values through;
                        // count/sum manufacture integers.
                        None | Some(AggFunc::Min) | Some(AggFunc::Max) => in_ty,
                        Some(AggFunc::Count) | Some(AggFunc::Sum) => {
                            if in_ty == ColumnType::Never {
                                in_ty
                            } else {
                                ColumnType::Int
                            }
                        }
                    };
                    let slot = &mut self.col_ty[spec.output.index()][col];
                    let joined = slot.join(out_ty);
                    if joined != *slot {
                        *slot = joined;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// A rule's variable types under the current column types: the meet of
    /// every column the variable joins on.  `None` when some body column
    /// (or the meet across a join) is still ⊥ — the rule cannot fire.
    fn body_var_types(&self, rule: &Rule) -> Option<Vec<ColumnType>> {
        let mut var_ty = vec![ColumnType::Any; rule.num_vars()];
        for literal in rule.positive_body() {
            for (col, var) in literal.atom.variables() {
                let ty = self.col_ty[literal.atom.rel.index()][col];
                if ty == ColumnType::Never {
                    return None;
                }
                var_ty[var.index()] = var_ty[var.index()].meet(ty);
            }
            for (col, value) in literal.atom.constants() {
                let ty = self.col_ty[literal.atom.rel.index()][col];
                if ty.meet(ColumnType::of(value)) == ColumnType::Never {
                    return None;
                }
            }
        }
        if var_ty
            .iter()
            .take(rule.num_vars())
            .any(|&ty| ty == ColumnType::Never)
        {
            return None;
        }
        Some(var_ty)
    }

    /// Flags type-confused constraints (ordering symbols, comparing
    /// provably-disjoint operands) and aggregates (`sum`/`min`/`max` over a
    /// symbol column).  Warnings only: the engine evaluates both just fine
    /// on raw values — the *meaning* is what is suspect.
    fn warn_type_confusion(&mut self, program: &Program) {
        for rule in program.rules() {
            let Some(var_ty) = self.body_var_types(rule) else {
                continue; // dead body — the emptiness passes handle it
            };
            let type_of = |term: Term| match term {
                Term::Const(c) => ColumnType::of(c),
                Term::Var(v) => var_ty[v.index()],
            };
            for constraint in &rule.constraints {
                let (lhs, rhs) = (type_of(constraint.lhs), type_of(constraint.rhs));
                let ordered =
                    matches!(constraint.op, CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge);
                let message = if ordered && (lhs == ColumnType::Symbol || rhs == ColumnType::Symbol)
                {
                    Some(format!(
                        "comparison `{}` in rule {} orders symbol values; \
                         the interned order is arbitrary",
                        display_constraint(rule, constraint),
                        cite(program, rule)
                    ))
                } else if lhs.meet(rhs) == ColumnType::Never {
                    Some(format!(
                        "comparison `{}` in rule {} mixes int and symbol operands, \
                         which can never be meaningfully related",
                        display_constraint(rule, constraint),
                        cite(program, rule)
                    ))
                } else {
                    None
                };
                if let Some(message) = message {
                    self.diagnostics.push(Diagnostic {
                        code: DiagnosticCode::TypeConfusedComparison,
                        severity: Severity::Warning,
                        rule: Some(rule.id),
                        relation: Some(rule.head.rel),
                        message,
                    });
                }
            }
        }
        for spec in program.aggregates() {
            for &(col, func) in &spec.aggs {
                if func == AggFunc::Count {
                    continue; // counting symbols is fine
                }
                if self.col_ty[spec.input.index()][col] == ColumnType::Symbol {
                    let func_name = match func {
                        AggFunc::Sum => "sum",
                        AggFunc::Min => "min",
                        AggFunc::Max => "max",
                        AggFunc::Count => unreachable!("count returns above"),
                    };
                    self.diagnostics.push(Diagnostic {
                        code: DiagnosticCode::TypeConfusedAggregate,
                        severity: Severity::Warning,
                        rule: None,
                        relation: Some(spec.output),
                        message: format!(
                            "aggregate `{func_name}` over column {col} of `{}` folds \
                             symbol values",
                            program.relation(spec.input).name
                        ),
                    });
                }
            }
        }
    }

    /// Seeds a rule's variable intervals from its positive body atoms'
    /// current column intervals and narrows under the constraints.  `None`
    /// when some body column is still empty or the constraints are
    /// unsatisfiable on these ranges.
    fn body_var_intervals(&self, rule: &Rule) -> Option<Vec<Interval>> {
        let mut seed = vec![Interval::FULL; rule.num_vars()];
        for literal in rule.positive_body() {
            for (col, var) in literal.atom.variables() {
                let iv = self.col_iv[literal.atom.rel.index()][col];
                if iv.is_empty() {
                    return None;
                }
                seed[var.index()] = seed[var.index()].meet(iv);
            }
            // Constant columns must admit the constant.
            for (col, value) in literal.atom.constants() {
                let iv = self.col_iv[literal.atom.rel.index()][col];
                if iv.meet(Interval::singleton(value.raw())).is_empty() {
                    return None;
                }
            }
        }
        if seed.iter().any(|iv| iv.is_empty()) {
            return None;
        }
        rule_var_intervals(rule, Some(&seed))
    }

    fn rule_satisfiability(&mut self, program: &Program, options: &AnalysisOptions) {
        for rule in program.rules() {
            // Structural check first: constraints alone, valid under any
            // fact set (and therefore under update streams).
            let structural = rule_var_intervals(rule, None);
            let mut unsat = structural.is_none();
            let mut qualifier = "";
            if !unsat && !options.assume_edb_nonempty {
                // Data-refined check: constraints can be statically false
                // under the values that actually flow into the body.  Only
                // flag rules whose body *could* otherwise fire — emptiness
                // is the dead-rule diagnostic's job.
                let body_live = rule
                    .positive_body()
                    .all(|l| self.nonempty[l.atom.rel.index()]);
                if body_live && self.body_var_intervals(rule).is_none() {
                    unsat = true;
                    qualifier = " for the values that reach it";
                }
            }
            if unsat {
                self.unsat[rule.id.index()] = true;
                self.drop_reasons[rule.id.index()] = Some(DropReason::Unsatisfiable);
                self.diagnostics.push(Diagnostic {
                    code: DiagnosticCode::UnsatisfiableRule,
                    severity: Severity::Error,
                    rule: Some(rule.id),
                    relation: Some(rule.head.rel),
                    message: format!(
                        "rule {} can never fire: its comparison constraints are contradictory{qualifier}",
                        cite(program, rule)
                    ),
                });
            } else {
                self.warn_constant_comparisons(program, rule);
            }
        }
    }

    /// Statically-true comparisons between constant-pinned operands.  Each
    /// constraint is judged against the intervals implied by *everything
    /// else* (body columns plus the remaining constraints) so a filter like
    /// `x = 3` never convicts itself.
    fn warn_constant_comparisons(&mut self, program: &Program, rule: &Rule) {
        if rule.constraints.is_empty() {
            return;
        }
        for (idx, constraint) in rule.constraints.iter().enumerate() {
            let mut rest = rule.clone();
            rest.constraints.remove(idx);
            let Some(rest_iv) = self.body_var_intervals(&rest) else {
                continue;
            };
            let iv_of = |t: Term| -> Interval {
                match t {
                    Term::Const(c) => Interval::singleton(c.raw()),
                    Term::Var(v) => rest_iv[v.index()],
                }
            };
            let (a, b) = (iv_of(constraint.lhs), iv_of(constraint.rhs));
            if let (Some(ca), Some(cb)) = (a.as_singleton(), b.as_singleton()) {
                if constraint.op.eval(Value(ca), Value(cb)) {
                    self.diagnostics.push(Diagnostic {
                        code: DiagnosticCode::ConstantComparison,
                        severity: Severity::Warning,
                        rule: Some(rule.id),
                        relation: Some(rule.head.rel),
                        message: format!(
                            "constraint `{}` in rule {} is statically true: both operands are pinned constant",
                            display_constraint(rule, constraint),
                            cite(program, rule)
                        ),
                    });
                }
            }
        }
    }

    /// Emptiness dataflow: a relation can hold a tuple iff it has facts or
    /// some satisfiable rule with an entirely-nonempty positive body
    /// derives it (negated literals never block — over-approximation), or
    /// it is the output of an aggregation over a nonempty input.
    fn emptiness_fixpoint(&mut self, program: &Program) {
        loop {
            let mut changed = false;
            for rule in program.rules() {
                if self.unsat[rule.id.index()] || self.nonempty[rule.head.rel.index()] {
                    continue;
                }
                if rule
                    .positive_body()
                    .all(|l| self.nonempty[l.atom.rel.index()])
                {
                    self.nonempty[rule.head.rel.index()] = true;
                    changed = true;
                }
            }
            for spec in program.aggregates() {
                if !self.nonempty[spec.output.index()] && self.nonempty[spec.input.index()] {
                    self.nonempty[spec.output.index()] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    fn convict_dead_rules(&mut self, program: &Program) {
        for rule in program.rules() {
            if self.drop_reasons[rule.id.index()].is_some() {
                continue;
            }
            let empty_dep = rule
                .positive_body()
                .find(|l| !self.nonempty[l.atom.rel.index()]);
            if let Some(literal) = empty_dep {
                self.drop_reasons[rule.id.index()] = Some(DropReason::Dead);
                self.diagnostics.push(Diagnostic {
                    code: DiagnosticCode::DeadRule,
                    severity: Severity::Error,
                    rule: Some(rule.id),
                    relation: Some(rule.head.rel),
                    message: format!(
                        "rule {} is dead: `{}` can never hold a tuple",
                        cite(program, rule),
                        program.relation(literal.atom.rel).name
                    ),
                });
            }
        }
    }

    fn convict_redundant_rules(&mut self, program: &Program) {
        let rules = program.rules();
        for b in rules {
            if self.drop_reasons[b.id.index()].is_some() {
                continue;
            }
            for a in rules {
                if a.id == b.id || self.drop_reasons[a.id.index()].is_some() {
                    continue;
                }
                if !subsumes(a, b) {
                    continue;
                }
                let mutual = subsumes(b, a);
                if mutual && a.id > b.id {
                    continue; // the earlier rule of a duplicate pair stays
                }
                let (code, reason) = if mutual {
                    (DiagnosticCode::DuplicateRule, DropReason::Duplicate(a.id))
                } else {
                    (DiagnosticCode::SubsumedRule, DropReason::Subsumed(a.id))
                };
                self.drop_reasons[b.id.index()] = Some(reason);
                self.diagnostics.push(Diagnostic {
                    code,
                    severity: Severity::Error,
                    rule: Some(b.id),
                    relation: Some(b.head.rel),
                    message: format!(
                        "rule {} is {} rule {}",
                        cite(program, b),
                        if mutual {
                            "a duplicate of"
                        } else {
                            "subsumed by"
                        },
                        cite(program, a)
                    ),
                });
                break;
            }
        }
    }

    fn relation_diagnostics(&mut self, program: &Program, options: &AnalysisOptions) {
        let mut read = vec![false; program.relations().len()];
        for rule in program.rules() {
            for literal in &rule.body {
                read[literal.atom.rel.index()] = true;
            }
        }
        for spec in program.aggregates() {
            read[spec.input.index()] = true;
        }
        for decl in program.relations() {
            if !decl.is_edb && !self.nonempty[decl.id.index()] {
                self.diagnostics.push(Diagnostic {
                    code: DiagnosticCode::UnreachableRelation,
                    severity: Severity::Error,
                    rule: None,
                    relation: Some(decl.id),
                    message: format!(
                        "relation `{}` can never be derived{}",
                        decl.name,
                        if options.assume_edb_nonempty {
                            ""
                        } else {
                            " from the program's facts"
                        }
                    ),
                });
            }
            if decl.is_edb && !read[decl.id.index()] {
                self.diagnostics.push(Diagnostic {
                    code: DiagnosticCode::UnusedRelation,
                    severity: Severity::Warning,
                    rule: None,
                    relation: Some(decl.id),
                    message: format!("relation `{}` is never read by any rule", decl.name),
                });
            }
        }
    }

    fn warn_singleton_variables(&mut self, program: &Program) {
        for rule in program.rules() {
            let mut mentions = vec![0usize; rule.num_vars()];
            for (_, v) in rule.head.variables() {
                mentions[v.index()] += 2; // head use is a read
            }
            for literal in &rule.body {
                for (_, v) in literal.atom.variables() {
                    mentions[v.index()] += 1;
                }
            }
            for constraint in &rule.constraints {
                for v in constraint.variables() {
                    mentions[v.index()] += 2; // constraint use is a read
                }
            }
            for (idx, &count) in mentions.iter().enumerate() {
                if count == 1 {
                    self.diagnostics.push(Diagnostic {
                        code: DiagnosticCode::SingletonVariable,
                        severity: Severity::Warning,
                        rule: Some(rule.id),
                        relation: Some(rule.head.rel),
                        message: format!(
                            "variable `{}` in rule {} is bound once and never read",
                            rule.var_names[idx],
                            cite(program, rule)
                        ),
                    });
                }
            }
        }
    }

    fn into_analysis(self, program: &Program) -> Analysis {
        let mut interval_hints = FxHashMap::default();
        for decl in program.relations() {
            for (col, iv) in self.col_iv[decl.id.index()].iter().enumerate() {
                if !iv.is_empty() && *iv != Interval::FULL {
                    interval_hints.insert((decl.id, col), (iv.lo, iv.hi));
                }
            }
        }
        let empty_relations = program
            .relations()
            .iter()
            .filter(|d| !self.nonempty[d.id.index()])
            .map(|d| d.id)
            .collect();
        let mut column_types = ColumnTypes::default();
        for decl in program.relations() {
            for (col, ty) in self.col_ty[decl.id.index()].iter().enumerate() {
                column_types.insert((decl.id, col), *ty);
            }
        }
        let mut diagnostics = self.diagnostics;
        // Stable order: errors before warnings, then rule order.
        diagnostics.sort_by_key(|d| {
            (
                std::cmp::Reverse(d.severity),
                d.rule.map(|r| r.0),
                d.relation.map(|r| r.0),
            )
        });
        Analysis {
            diagnostics,
            drop_reasons: self.drop_reasons,
            empty_relations,
            interval_hints,
            column_types,
        }
    }
}

/// Cites a rule for a diagnostic message: rendered source plus origin.
fn cite(program: &Program, rule: &Rule) -> String {
    let rendered = program.display_rule(rule);
    match rule.origin.describe() {
        Some(origin) => format!("{origin} `{rendered}`"),
        None => format!("#{} `{rendered}`", rule.id.0),
    }
}

fn display_constraint(rule: &Rule, constraint: &crate::ast::Constraint) -> String {
    let term = |t: Term| match t {
        Term::Var(v) => rule.var_names[v.index()].clone(),
        Term::Const(c) => format!("{}", c.raw()),
    };
    format!(
        "{} {} {}",
        term(constraint.lhs),
        constraint.op.symbol(),
        term(constraint.rhs)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{c, v, ProgramBuilder};
    use crate::parser::parse;

    fn codes(analysis: &Analysis) -> Vec<DiagnosticCode> {
        analysis.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program_has_no_errors() {
        let p = parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n\
             Edge(1, 2). Edge(2, 3).",
        )
        .unwrap();
        let a = analyze(&p);
        assert_eq!(a.error_count(), 0, "{:?}", a.diagnostics);
        assert!(a.drop_reasons.iter().all(std::option::Option::is_none));
    }

    #[test]
    fn contradictory_constraints_are_unsatisfiable() {
        let p = parse(
            "Out(x) :- Node(x), x < 5, x > 9.\n\
             Node(1).",
        )
        .unwrap();
        let a = analyze(&p);
        assert!(codes(&a).contains(&DiagnosticCode::UnsatisfiableRule));
        assert_eq!(a.drop_reasons[0], Some(DropReason::Unsatisfiable));
        // `Out` becomes never-derivable too.
        assert!(codes(&a).contains(&DiagnosticCode::UnreachableRelation));
    }

    #[test]
    fn constant_propagation_detects_statically_false_constraints() {
        // x = 3 propagates into x > 7.
        let p = parse("Out(x) :- Node(x), x = 3, x > 7.\nNode(3).").unwrap();
        let a = analyze(&p);
        assert!(codes(&a).contains(&DiagnosticCode::UnsatisfiableRule));

        // Structurally fine, but the only value flowing in is 2.
        let p = parse("Out(x) :- Node(x), x > 7.\nNode(2).").unwrap();
        let a = analyze(&p);
        assert!(codes(&a).contains(&DiagnosticCode::UnsatisfiableRule));
        // ... and the same rule is *not* flagged when updates may follow.
        let opts = AnalysisOptions {
            assume_edb_nonempty: true,
            ..Default::default()
        };
        let a = analyze_with(&p, &opts);
        assert!(!codes(&a).contains(&DiagnosticCode::UnsatisfiableRule));
    }

    #[test]
    fn strict_variable_cycles_are_unsatisfiable() {
        let p = parse("Out(x, y) :- Pair(x, y), x < y, y < x.\nPair(1, 2).").unwrap();
        let a = analyze(&p);
        assert!(codes(&a).contains(&DiagnosticCode::UnsatisfiableRule));

        // A plain `x < y` order must of course stay satisfiable.
        let p = parse("Out(x, y) :- Pair(x, y), x < y.\nPair(1, 2).").unwrap();
        let a = analyze(&p);
        assert!(!codes(&a).contains(&DiagnosticCode::UnsatisfiableRule));
    }

    #[test]
    fn rules_on_empty_relations_are_dead() {
        let p = parse(
            "Reach(x) :- Start(x).\n\
             Reach(y) :- Reach(x), Edge(x, y).\n\
             Dead(x) :- Node(x), Ghost(x).\n\
             Node(1). Edge(1, 2). Start(1).",
        )
        .unwrap();
        let a = analyze(&p);
        let dead: Vec<_> = a.with_code(DiagnosticCode::DeadRule).collect();
        assert_eq!(dead.len(), 1);
        assert!(dead[0].message.contains("Ghost"));
        let ghost = p.relation_by_name("Ghost").unwrap();
        assert!(a.empty_relations.contains(&ghost));
    }

    #[test]
    fn duplicates_and_subsumption_up_to_renaming() {
        let p = parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(a, b) :- Edge(a, b).\n\
             Big(x, y) :- Edge(x, y), Node(x).\n\
             Edge(1, 2). Node(1).",
        )
        .unwrap();
        let a = analyze(&p);
        // Rule 1 duplicates rule 0 (renamed variables).
        assert_eq!(a.drop_reasons[1], Some(DropReason::Duplicate(RuleId(0))));
        assert_eq!(a.drop_reasons[0], None);
        // `Big` is not subsumed by the Path rules (different head).
        assert_eq!(a.drop_reasons[2], None);

        // Proper subsumption: the 2-atom rule derives a subset.
        let p = parse(
            "Out(x, y) :- Edge(x, y).\n\
             Out(x, y) :- Edge(x, y), Node(x).\n\
             Edge(1, 2). Node(1).",
        )
        .unwrap();
        let a = analyze(&p);
        assert_eq!(a.drop_reasons[1], Some(DropReason::Subsumed(RuleId(0))));
        assert!(codes(&a).contains(&DiagnosticCode::SubsumedRule));
    }

    #[test]
    fn constraints_block_subsumption_unless_carried_over() {
        // The constrained rule derives a subset of the unconstrained one.
        let p = parse(
            "Out(x, y) :- Edge(x, y).\n\
             Out(x, y) :- Edge(x, y), x < y.\n\
             Edge(1, 2).",
        )
        .unwrap();
        let a = analyze(&p);
        assert_eq!(a.drop_reasons[1], Some(DropReason::Subsumed(RuleId(0))));

        // Order does not matter: the constrained rule is the more specific
        // one, so it is the one dropped even when it comes first.
        let p = parse(
            "Out(x, y) :- Edge(x, y), x < y.\n\
             Out(x, y) :- Edge(x, y).\n\
             Edge(1, 2).",
        )
        .unwrap();
        let a = analyze(&p);
        assert_eq!(a.drop_reasons[0], Some(DropReason::Subsumed(RuleId(1))));
        assert_eq!(a.drop_reasons[1], None);

        // Different constraints in both rules: neither covers the other.
        let p = parse(
            "Out(x, y) :- Edge(x, y), x < y.\n\
             Out(x, y) :- Edge(x, y), x > y.\n\
             Edge(2, 1). Edge(1, 2).",
        )
        .unwrap();
        let a = analyze(&p);
        assert_eq!(a.drop_reasons[0], None);
        assert_eq!(a.drop_reasons[1], None);
    }

    #[test]
    fn warnings_for_unused_relations_and_singleton_variables() {
        let p = parse(
            "Out(x) :- Edge(x, y).\n\
             Edge(1, 2). Lonely(7).",
        )
        .unwrap();
        let a = analyze(&p);
        assert_eq!(a.error_count(), 0);
        let unused: Vec<_> = a.with_code(DiagnosticCode::UnusedRelation).collect();
        assert_eq!(unused.len(), 1);
        assert!(unused[0].message.contains("Lonely"));
        let singles: Vec<_> = a.with_code(DiagnosticCode::SingletonVariable).collect();
        assert_eq!(singles.len(), 1);
        assert!(singles[0].message.contains('y'));
    }

    #[test]
    fn statically_true_constraints_on_constant_operands_warn() {
        let p = parse("Out(x) :- Node(x), x = 3, x < 9.\nNode(3).").unwrap();
        let a = analyze(&p);
        assert!(codes(&a).contains(&DiagnosticCode::ConstantComparison));
        assert_eq!(a.error_count(), 0);
    }

    #[test]
    fn interval_hints_cover_edb_and_idb_columns() {
        let p = parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n\
             Edge(3, 5). Edge(5, 9).",
        )
        .unwrap();
        let a = analyze(&p);
        let edge = p.relation_by_name("Edge").unwrap();
        let path = p.relation_by_name("Path").unwrap();
        assert_eq!(a.interval_hints.get(&(edge, 0)), Some(&(3, 5)));
        assert_eq!(a.interval_hints.get(&(edge, 1)), Some(&(5, 9)));
        // Path columns are joins of Edge columns through the rules.
        assert_eq!(a.interval_hints.get(&(path, 0)), Some(&(3, 5)));
        assert_eq!(a.interval_hints.get(&(path, 1)), Some(&(5, 9)));
    }

    #[test]
    fn pruning_drops_convicted_rules_and_empty_relations() {
        let p = parse(
            "Reach(x) :- Start(x).\n\
             Reach(x) :- Start(x).\n\
             Dead(x) :- Ghost(x).\n\
             Never(x) :- Node(x), x < 2, x > 8.\n\
             Start(1). Node(5).",
        )
        .unwrap();
        let pruned = prune(&p);
        assert_eq!(pruned.kept_rules, vec![RuleId(0)]);
        assert_eq!(pruned.dropped_rules.len(), 3);
        // Ghost (empty EDB) and Dead/Never (unreachable IDB) vanish when
        // nothing kept references them.
        assert!(pruned.dropped_relations.contains(&"Ghost".to_string()));
        assert!(pruned.dropped_relations.contains(&"Dead".to_string()));
        assert!(pruned.dropped_relations.contains(&"Never".to_string()));
        assert!(pruned.program.relation_by_name("Reach").is_ok());
        assert_eq!(pruned.program.rules().len(), 1);

        // With declarations pinned, only rules are dropped.
        let kept = prune_with(&p, &AnalysisOptions::default(), true);
        assert_eq!(kept.program.rules().len(), 1);
        assert!(kept.dropped_relations.is_empty());
        assert!(kept.program.relation_by_name("Ghost").is_ok());
    }

    #[test]
    fn pruning_keeps_negated_empty_relations_declared() {
        // `Blocked` is empty but read under negation: the rule is live and
        // the declaration must survive even in full prune mode.
        let p = parse(
            "Ok(x) :- Node(x), !Blocked(x).\n\
             Node(1). Node(2).",
        )
        .unwrap();
        let pruned = prune(&p);
        assert!(pruned.program.relation_by_name("Blocked").is_ok());
        assert_eq!(pruned.program.rules().len(), 1);
        assert!(pruned.dropped_rules.is_empty());
    }

    #[test]
    fn pruning_preserves_aggregates_and_origins() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Deg", 2);
        b.rule("Deg", &[v("x"), crate::builder::count_of("y")])
            .when("Edge", &["x", "y"])
            .label("degree")
            .end();
        b.rule("Deg", &[v("x"), crate::builder::count_of("y")])
            .when("Edge", &["x", "y"])
            .end();
        b.fact_ints("Edge", &[1, 2]);
        let p = b.build().unwrap();
        let pruned = prune(&p);
        // The duplicate aggregate-input rule is dropped; the aggregation
        // and its hidden input relation survive.
        assert_eq!(pruned.program.rules().len(), 1);
        assert_eq!(pruned.program.aggregates().len(), 1);
        assert_eq!(
            pruned.program.rules()[0].origin.label.as_deref(),
            Some("degree")
        );
    }

    #[test]
    fn update_independent_mode_keeps_data_dependent_rules() {
        let p = parse(
            "Dead(x) :- Node(x), Ghost(x).\n\
             Node(1).",
        )
        .unwrap();
        let opts = AnalysisOptions {
            assume_edb_nonempty: true,
            ..Default::default()
        };
        let a = analyze_with(&p, &opts);
        // Ghost could receive updates: the rule must not be convicted.
        assert_eq!(a.drop_reasons[0], None);
        assert!(!codes(&a).contains(&DiagnosticCode::DeadRule));

        // A rule over a relation *no* update can populate stays dead: IDB
        // with no deriving rules cannot become non-empty.
        let p = parse(
            "Phantom(x) :- Phantom2(x), Phantom(x).\n\
             Gone(x) :- Node(x), Phantom(x).\n\
             Phantom2(9).\n\
             Node(1).",
        )
        .unwrap();
        let a = analyze_with(&p, &opts);
        // Phantom only derives from itself: never non-empty.
        assert!(a
            .diagnostics
            .iter()
            .any(|d| d.code == DiagnosticCode::DeadRule));
    }

    #[test]
    fn diagnostics_cite_labels_and_positions() {
        let mut b = ProgramBuilder::new();
        b.relation("Node", 1);
        b.relation("Out", 1);
        b.rule("Out", &["x"])
            .when("Node", &["x"])
            .lt(v("x"), c(2))
            .gt(v("x"), c(8))
            .label("impossible-window")
            .end();
        b.fact_ints("Node", &[5]);
        let p = b.build().unwrap();
        let a = analyze(&p);
        let unsat: Vec<_> = a.with_code(DiagnosticCode::UnsatisfiableRule).collect();
        assert_eq!(unsat.len(), 1);
        assert!(unsat[0].message.contains("impossible-window"));

        let p = parse("Out(x) :- Node(x), x < 2, x > 8.\nNode(5).").unwrap();
        let a = analyze(&p);
        let unsat: Vec<_> = a.with_code(DiagnosticCode::UnsatisfiableRule).collect();
        assert!(unsat[0].message.contains("at 1:1"));
    }

    #[test]
    fn type_inference_propagates_through_rules() {
        let p = parse(
            "Owner(\"alice\", 1). Owner(\"bob\", 2).\n\
             Holds(who, n) :- Owner(who, n).\n\
             Pair(n, who) :- Holds(who, n).",
        )
        .unwrap();
        let a = analyze(&p);
        let rel = |name: &str| p.relation_by_name(name).unwrap();
        assert_eq!(a.column_types[&(rel("Owner"), 0)], ColumnType::Symbol);
        assert_eq!(a.column_types[&(rel("Owner"), 1)], ColumnType::Int);
        assert_eq!(a.column_types[&(rel("Holds"), 0)], ColumnType::Symbol);
        assert_eq!(a.column_types[&(rel("Holds"), 1)], ColumnType::Int);
        assert_eq!(a.column_types[&(rel("Pair"), 0)], ColumnType::Int);
        assert_eq!(a.column_types[&(rel("Pair"), 1)], ColumnType::Symbol);
        assert!(!a.has_errors());
        assert!(a
            .with_code(DiagnosticCode::TypeConfusedComparison)
            .next()
            .is_none());
    }

    #[test]
    fn ordering_a_symbol_column_is_flagged() {
        let p = parse(
            "Owner(\"alice\", 1). Owner(\"bob\", 2).\n\
             Early(who) :- Owner(who, n), who > 0.",
        )
        .unwrap();
        let a = analyze(&p);
        let confused: Vec<_> = a
            .with_code(DiagnosticCode::TypeConfusedComparison)
            .collect();
        assert_eq!(confused.len(), 1);
        assert_eq!(confused[0].severity, Severity::Warning);
        assert!(confused[0].message.contains("orders symbol values"));
        // Warnings never make the rule prunable.
        assert!(a.drop_reasons[0].is_none());
    }

    #[test]
    fn comparing_disjoint_types_is_flagged() {
        let p = parse(
            "Owner(\"alice\", 1).\n\
             Odd(n) :- Owner(who, n), who != n.",
        )
        .unwrap();
        let a = analyze(&p);
        let confused: Vec<_> = a
            .with_code(DiagnosticCode::TypeConfusedComparison)
            .collect();
        assert_eq!(confused.len(), 1);
        assert!(confused[0].message.contains("mixes int and symbol"));
    }

    #[test]
    fn summing_a_symbol_column_is_flagged() {
        let p = parse(
            "Owner(\"alice\", 1). Owner(\"bob\", 2).\n\
             Total(n, sum who) :- Owner(who, n).",
        )
        .unwrap();
        let a = analyze(&p);
        let confused: Vec<_> = a.with_code(DiagnosticCode::TypeConfusedAggregate).collect();
        assert_eq!(confused.len(), 1);
        assert!(confused[0].message.contains("sum"));

        // Counting the same column is fine.
        let p = parse(
            "Owner(\"alice\", 1). Owner(\"bob\", 2).\n\
             Total(n, count who) :- Owner(who, n).",
        )
        .unwrap();
        let a = analyze(&p);
        assert!(a
            .with_code(DiagnosticCode::TypeConfusedAggregate)
            .next()
            .is_none());
    }

    #[test]
    fn update_mode_widens_edb_types_to_any() {
        let p = parse("Out(x) :- In(x, y), x < 5.\nIn(1, 2).").unwrap();
        let options = AnalysisOptions {
            assume_edb_nonempty: true,
            ..AnalysisOptions::default()
        };
        let a = analyze_with(&p, &options);
        let rel = p.relation_by_name("In").unwrap();
        assert_eq!(a.column_types[&(rel, 0)], ColumnType::Any);
        // `Any` operands draw no type-confusion warning.
        assert!(a
            .with_code(DiagnosticCode::TypeConfusedComparison)
            .next()
            .is_none());
    }

    #[test]
    fn column_type_lattice_laws() {
        use ColumnType::*;
        for ty in [Never, Int, Symbol, Any] {
            assert_eq!(ty.join(ty), ty);
            assert_eq!(ty.meet(ty), ty);
            assert_eq!(ty.join(Never), ty);
            assert_eq!(ty.meet(Any), ty);
        }
        assert_eq!(Int.join(Symbol), Any);
        assert_eq!(Int.meet(Symbol), Never);
    }

    #[test]
    fn diagnostics_render_as_json() {
        let p = parse("Out(x) :- Node(x), x < 2, x > 8.\nNode(5).").unwrap();
        let a = analyze(&p);
        let unsat = a
            .with_code(DiagnosticCode::UnsatisfiableRule)
            .next()
            .unwrap();
        let json = unsat.to_json();
        assert!(json.starts_with("{\"code\":\"unsat-rule\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"rule\":0"));
        assert!(json.contains("\"message\":\""));
        // Messages with quotes (rule citations use backticks, but guard
        // anyway) stay valid JSON.
        assert!(!json.contains("\n"));
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn narrow_handles_boundaries() {
        let full = Interval::FULL;
        // x < 0 is impossible.
        let (a, _) = narrow(CmpOp::Lt, full, Interval::singleton(0));
        assert!(a.is_empty());
        // x > MAX is impossible.
        let (a, _) = narrow(CmpOp::Gt, full, Interval::singleton(u32::MAX));
        assert!(a.is_empty());
        // x != c on a singleton.
        let (a, _) = narrow(CmpOp::Ne, Interval::singleton(5), Interval::singleton(5));
        assert!(a.is_empty());
        let (a, _) = narrow(CmpOp::Ne, Interval { lo: 5, hi: 9 }, Interval::singleton(5));
        assert_eq!(a, Interval { lo: 6, hi: 9 });
    }
}
