//! # carac-datalog
//!
//! The Datalog frontend of Carac-rs (paper §II-A, §V-A): abstract syntax,
//! an embedded builder DSL, a textual parser, per-rule metadata extraction,
//! precedence-graph construction with stratification (including stratified
//! negation), static validation, and static rewrites such as alias
//! elimination.
//!
//! The output of this crate is an immutable, validated [`Program`] that the
//! planner (`carac-ir`), optimizer (`carac-optimizer`) and execution engine
//! (`carac-exec`) consume.
//!
//! ```
//! use carac_datalog::parser::parse;
//!
//! let program = parse(
//!     "Path(x, y) :- Edge(x, y).\n\
//!      Path(x, y) :- Edge(x, z), Path(z, y).\n\
//!      Edge(1, 2). Edge(2, 3).",
//! ).unwrap();
//! assert_eq!(program.rules().len(), 2);
//! assert_eq!(program.stratification().len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod analyze;
pub mod ast;
pub mod builder;
pub mod error;
pub mod magic;
pub mod metadata;
pub mod parser;
pub mod precedence;
pub mod program;
pub mod rewrite;
pub mod validate;

pub use analyze::{
    analyze, analyze_with, prune, prune_with, Analysis, AnalysisOptions, ColumnType, ColumnTypes,
    Diagnostic, DiagnosticCode, DropReason, PrunedProgram, Severity,
};
pub use ast::{
    AggregateSpec, Atom, Constraint, Literal, RelationDecl, Rule, RuleId, RuleOrigin, Term, VarId,
};
pub use builder::{ProgramBuilder, TermSpec};
pub use carac_storage::hasher;
pub use carac_storage::{AggFunc, CmpOp};
pub use error::DatalogError;
pub use magic::{magic_rewrite, MagicProgram, QueryBinding};
pub use metadata::{AtomMeta, ColumnConstraint, HeadBinding, RuleMeta};
pub use precedence::{Stratification, Stratum};
pub use program::Program;
