//! Per-rule metadata used by the planner and the optimizer.
//!
//! As rules are defined, Carac records where variables and constants occur
//! so that later stages can cheaply answer the questions that drive
//! optimization (paper §V-A): which columns are join keys, which columns
//! carry constant filters, how the head projects out of the body, and which
//! columns deserve an index (§IV: "one index per filter or join predicate").

use carac_storage::hasher::FxHashMap;
use carac_storage::{RelId, Value};

use crate::ast::{Rule, VarId};

/// Where a head column gets its value from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadBinding {
    /// The head column copies the value bound to this variable.
    Var(VarId),
    /// The head column is a constant.
    Const(Value),
}

/// A join/filter condition contributed by one column of one body atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnConstraint {
    /// The column must equal a constant (`$l = c`).
    Constant(Value),
    /// The column carries a variable that also occurs elsewhere in the rule
    /// (a join key / repeated-variable filter).
    SharedVar(VarId),
    /// The column carries a variable that occurs nowhere else (no
    /// constraint beyond binding).
    FreeVar(VarId),
}

/// Metadata for one positive body atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomMeta {
    /// Relation the atom scans.
    pub rel: RelId,
    /// Constraint classification per column.
    pub columns: Vec<ColumnConstraint>,
}

impl AtomMeta {
    /// Columns that should be indexed for this atom: every column carrying a
    /// constant or a shared variable.
    pub fn index_candidates(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c {
                ColumnConstraint::Constant(_) | ColumnConstraint::SharedVar(_) => Some(i),
                ColumnConstraint::FreeVar(_) => None,
            })
            .collect()
    }

    /// Number of constant-filter columns.
    pub fn constant_count(&self) -> usize {
        self.columns
            .iter()
            .filter(|c| matches!(c, ColumnConstraint::Constant(_)))
            .count()
    }

    /// Variables carried by the atom (with their columns).
    pub fn variables(&self) -> impl Iterator<Item = (usize, VarId)> + '_ {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| match c {
                ColumnConstraint::SharedVar(v) | ColumnConstraint::FreeVar(v) => Some((i, *v)),
                ColumnConstraint::Constant(_) => None,
            })
    }
}

/// Metadata derived from one rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleMeta {
    /// Head relation.
    pub head_rel: RelId,
    /// How each head column is produced.
    pub head_bindings: Vec<HeadBinding>,
    /// Metadata per positive body atom, in the rule's body order.
    pub atoms: Vec<AtomMeta>,
    /// Metadata per negated body atom, in order.
    pub negated_atoms: Vec<AtomMeta>,
    /// For each variable, how many literals (positive or negative) mention
    /// it.  Variables with count ≥ 2 are join keys.
    pub var_occurrences: Vec<usize>,
}

impl RuleMeta {
    /// Analyzes a rule.
    pub fn analyze(rule: &Rule) -> RuleMeta {
        let mut var_occurrences = vec![0usize; rule.num_vars()];
        // Count in how many literals each variable occurs (occurrences within
        // one atom count once for sharing purposes, but repeated variables
        // within an atom are still join-like filters — counted separately
        // below through SharedVar classification).
        for literal in &rule.body {
            let mut seen: FxHashMap<VarId, ()> = FxHashMap::default();
            for (_, var) in literal.atom.variables() {
                if seen.insert(var, ()).is_none() {
                    var_occurrences[var.index()] += 1;
                }
            }
        }
        // Head occurrences also make a variable "interesting" for indexing:
        // the head projection reads it.
        for (_, var) in rule.head.variables() {
            var_occurrences[var.index()] += 1;
        }

        // Detect variables occurring more than once *within* a single atom
        // (e.g. R(x, x)) — these behave like shared variables too.
        let mut repeated_within_atom = vec![false; rule.num_vars()];
        for literal in &rule.body {
            let mut counts: FxHashMap<VarId, usize> = FxHashMap::default();
            for (_, var) in literal.atom.variables() {
                *counts.entry(var).or_insert(0) += 1;
            }
            for (var, count) in counts {
                if count > 1 {
                    repeated_within_atom[var.index()] = true;
                }
            }
        }

        let classify = |literal: &crate::ast::Literal| -> AtomMeta {
            let columns = literal
                .atom
                .terms
                .iter()
                .map(|t| match t {
                    crate::ast::Term::Const(c) => ColumnConstraint::Constant(*c),
                    crate::ast::Term::Var(v) => {
                        if var_occurrences[v.index()] >= 2 || repeated_within_atom[v.index()] {
                            ColumnConstraint::SharedVar(*v)
                        } else {
                            ColumnConstraint::FreeVar(*v)
                        }
                    }
                })
                .collect();
            AtomMeta {
                rel: literal.atom.rel,
                columns,
            }
        };

        let atoms = rule.positive_body().map(classify).collect();
        let negated_atoms = rule.negative_body().map(classify).collect();

        let head_bindings = rule
            .head
            .terms
            .iter()
            .map(|t| match t {
                crate::ast::Term::Var(v) => HeadBinding::Var(*v),
                crate::ast::Term::Const(c) => HeadBinding::Const(*c),
            })
            .collect();

        RuleMeta {
            head_rel: rule.head.rel,
            head_bindings,
            atoms,
            negated_atoms,
            var_occurrences,
        }
    }

    /// All `(relation, column)` pairs that should carry an index for this
    /// rule (join keys and constant filters, over positive and negated
    /// atoms).
    pub fn index_requests(&self) -> Vec<(RelId, usize)> {
        let mut requests = Vec::new();
        for atom in self.atoms.iter().chain(self.negated_atoms.iter()) {
            for col in atom.index_candidates() {
                requests.push((atom.rel, col));
            }
        }
        requests
    }

    /// All `(relation, columns)` composite-index requests for this rule:
    /// one request per atom that constrains at least two columns (join keys
    /// and/or constant filters), over positive and negated atoms.  Columns
    /// are ascending, matching the storage layer's canonical order.
    pub fn composite_index_requests(&self) -> Vec<(RelId, Vec<usize>)> {
        let mut requests = Vec::new();
        for atom in self.atoms.iter().chain(self.negated_atoms.iter()) {
            let candidates = atom.index_candidates();
            if candidates.len() >= 2 {
                requests.push((atom.rel, candidates));
            }
        }
        requests
    }

    /// Number of positive atoms.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{c, v, ProgramBuilder};

    #[test]
    fn join_keys_are_shared_vars() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Path", 2);
        b.rule("Path", &["x", "y"])
            .when("Edge", &["x", "z"])
            .when("Path", &["z", "y"])
            .end();
        let p = b.build().unwrap();
        let meta = RuleMeta::analyze(&p.rules()[0]);
        assert_eq!(meta.num_atoms(), 2);
        // Edge(x, z): x is shared (head + body), z is shared (both atoms).
        assert!(matches!(
            meta.atoms[0].columns[1],
            ColumnConstraint::SharedVar(_)
        ));
        // Path(z, y): z shared with Edge.
        assert!(matches!(
            meta.atoms[1].columns[0],
            ColumnConstraint::SharedVar(_)
        ));
        // Index requests cover the join columns.
        let requests = meta.index_requests();
        assert!(!requests.is_empty());
    }

    #[test]
    fn constants_become_constant_constraints_and_index_requests() {
        let mut b = ProgramBuilder::new();
        b.relation("Call", 2);
        b.relation("Out", 1);
        b.rule("Out", &[v("x")]).when("Call", &[v("x"), c(7)]).end();
        let p = b.build().unwrap();
        let meta = RuleMeta::analyze(&p.rules()[0]);
        assert!(matches!(
            meta.atoms[0].columns[1],
            ColumnConstraint::Constant(_)
        ));
        assert_eq!(meta.atoms[0].constant_count(), 1);
        assert!(meta
            .index_requests()
            .contains(&(p.relation_by_name("Call").unwrap(), 1)));
    }

    #[test]
    fn free_variables_are_not_indexed() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Out", 1);
        b.rule("Out", &["x"]).when("Edge", &["x", "unused"]).end();
        let p = b.build().unwrap();
        let meta = RuleMeta::analyze(&p.rules()[0]);
        assert!(matches!(
            meta.atoms[0].columns[1],
            ColumnConstraint::FreeVar(_)
        ));
        assert_eq!(meta.atoms[0].index_candidates(), vec![0]);
    }

    #[test]
    fn repeated_variable_within_one_atom_is_shared() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("SelfLoop", 1);
        b.rule("SelfLoop", &["x"]).when("Edge", &["x", "x"]).end();
        let p = b.build().unwrap();
        let meta = RuleMeta::analyze(&p.rules()[0]);
        assert!(matches!(
            meta.atoms[0].columns[0],
            ColumnConstraint::SharedVar(_)
        ));
        assert!(matches!(
            meta.atoms[0].columns[1],
            ColumnConstraint::SharedVar(_)
        ));
    }

    #[test]
    fn negated_atoms_get_metadata_too() {
        let mut b = ProgramBuilder::new();
        b.relation("Num", 1);
        b.relation("Composite", 1);
        b.relation("Prime", 1);
        b.rule("Prime", &["x"])
            .when("Num", &["x"])
            .when_not("Composite", &["x"])
            .end();
        let p = b.build().unwrap();
        let meta = RuleMeta::analyze(&p.rules()[0]);
        assert_eq!(meta.negated_atoms.len(), 1);
        assert!(matches!(
            meta.negated_atoms[0].columns[0],
            ColumnConstraint::SharedVar(_)
        ));
    }

    #[test]
    fn head_constants_are_bindings() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Out", 2);
        b.rule("Out", &[v("x"), c(0)])
            .when("Edge", &[v("x"), v("y")])
            .end();
        let p = b.build().unwrap();
        let meta = RuleMeta::analyze(&p.rules()[0]);
        assert!(matches!(meta.head_bindings[0], HeadBinding::Var(_)));
        assert!(matches!(meta.head_bindings[1], HeadBinding::Const(_)));
    }
}
