//! Goal-directed evaluation: the magic-set rewrite.
//!
//! A full fixpoint answers every query the program could ever be asked; a
//! *point query* such as `Path(3, X)?` only needs the facts reachable from
//! its bound arguments.  [`magic_rewrite`] specializes a validated
//! [`Program`] to one query pattern using the classic magic-set
//! transformation:
//!
//! * every demanded relation `p` is *adorned* with the query's
//!   bound/free pattern (`p__bf` for "first argument bound, second free"),
//! * a *magic predicate* `m__p__bf` holds the set of bound-argument
//!   tuples actually demanded; the adorned rules are guarded by it so they
//!   derive only demanded facts,
//! * demand flows *sideways* through each rule body: the atoms are walked in
//!   a statically chosen sideways-information-passing (SIP) order — the same
//!   most-bound-columns-first greedy the optimizer's `atom_score` machinery
//!   applies at runtime — and every eligible body atom with at least one
//!   bound column spawns a magic rule propagating the demand,
//! * the query constants seed the goal's magic predicate with one fact.
//!
//! The rewritten program is an ordinary validated [`Program`]: it
//! stratifies, plans and executes through the existing pipeline unchanged,
//! on every engine (interpreter, specialized kernels, bytecode VM).
//!
//! ## Negation and aggregation
//!
//! Demand must never restrict a relation whose *absence* or *aggregate* is
//! observed: under-computing a negated relation would fabricate facts, and
//! under-feeding an aggregation would corrupt its folds.  The rewrite is
//! therefore conservative:
//!
//! * a relation appearing under negation anywhere, participating in an
//!   aggregation (either side), carrying base facts, or extensional, is
//!   *ineligible* — adorned rules read the original, fully evaluated
//!   relation instead, and its defining rules (plus everything they depend
//!   on, transitively) are kept for full evaluation;
//! * if the **goal relation itself** is ineligible — or the pattern binds
//!   nothing — the rewrite falls back to the unmodified program and reports
//!   it via [`MagicProgram::fallback`] (surfaced as the `magic_fallback`
//!   flag on `RunStats` by the engine).
//!
//! Either way the contract is the same and differentially tested: the
//! rewritten program's answer set, filtered on the bound constants, is
//! bit-identical to filtering the full fixpoint.

use std::collections::VecDeque;

use carac_storage::hasher::FxHashSet;
use carac_storage::{CmpOp, RelId, Value};

use crate::ast::{Atom, Literal, Rule, Term};
use crate::builder::{ProgramBuilder, TermSpec};
use crate::error::DatalogError;
use crate::program::Program;

/// Name prefix of every generated magic predicate (`m__Path__bf`).  The
/// optimizer uses [`is_magic_name`] to score magic relations as
/// high-selectivity demand guards.
pub const MAGIC_PREFIX: &str = "m__";

/// Whether `name` is a generated magic predicate of a rewritten program.
pub fn is_magic_name(name: &str) -> bool {
    name.starts_with(MAGIC_PREFIX)
}

/// One argument position of a goal-directed query: either pinned to a
/// constant or left free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryBinding {
    /// The argument must equal this value.
    Bound(Value),
    /// The argument is unconstrained.
    Free,
}

impl QueryBinding {
    /// A bound small-integer argument (panics above the plain-integer
    /// range, like [`Value::int`]).
    pub fn bound_int(n: u32) -> Self {
        QueryBinding::Bound(Value::int(n))
    }

    /// Whether the argument is bound.
    pub fn is_bound(&self) -> bool {
        matches!(self, QueryBinding::Bound(_))
    }

    /// Whether `value` satisfies this binding.
    pub fn matches(&self, value: Value) -> bool {
        match self {
            QueryBinding::Bound(b) => *b == value,
            QueryBinding::Free => true,
        }
    }
}

/// The outcome of [`magic_rewrite`]: the rewritten (or, on fallback, the
/// original) program plus everything the engine needs to run the query.
#[derive(Debug, Clone)]
pub struct MagicProgram {
    /// The program to evaluate.  Original relations keep their [`RelId`]s
    /// (facts added at runtime against the original program stay valid);
    /// adorned and magic relations are appended after them.
    pub program: Program,
    /// Name of the relation holding the query answers: the goal's adorned
    /// relation, or the original relation on fallback.  Callers must still
    /// filter on the bound constants — recursive demand can put more than
    /// one tuple into the goal's magic set, so the adorned relation may
    /// hold answers for every demanded binding, a superset of the query's.
    pub answer_relation: String,
    /// Whether the rewrite fell back to full evaluation (goal ineligible
    /// for demand restriction, or nothing bound in the pattern).
    pub fallback: bool,
    /// Names of the generated magic predicates (empty on fallback) — the
    /// optimizer treats these as high-selectivity.
    pub magic_relations: Vec<String>,
    /// Mapping from each adorned relation name (`Path__bf`) back to the
    /// original relation it specializes (`Path`), empty on fallback.
    /// Provenance reconstruction unions an original relation's facts with
    /// its adorned variants' to recover the demanded cone per relation.
    pub adorned_map: Vec<(String, String)>,
}

/// A generated rule before emission through the builder.
struct GenRule {
    head: (String, Vec<TermSpec>),
    body: Vec<(String, Vec<TermSpec>, bool)>,
    constraints: Vec<(TermSpec, CmpOp, TermSpec)>,
}

/// `"bf"`-style rendering of an adornment.
fn adn_str(adn: &[bool]) -> String {
    adn.iter().map(|&b| if b { 'b' } else { 'f' }).collect()
}

/// Name of the adorned variant of `name` under `adn`.
fn adorned_name(name: &str, adn: &[bool]) -> String {
    format!("{name}__{}", adn_str(adn))
}

/// Name of the magic predicate guarding `name` under `adn`.
fn magic_name(name: &str, adn: &[bool]) -> String {
    format!("{MAGIC_PREFIX}{name}__{}", adn_str(adn))
}

/// Round-trips a term into the builder spec, preserving constants
/// bit-exactly (same contract as alias elimination).
fn to_spec(term: &Term, rule: &Rule) -> TermSpec {
    match term {
        Term::Var(v) => TermSpec::Var(rule.var_names[v.index()].clone()),
        Term::Const(c) => TermSpec::Value(*c),
    }
}

/// The atom's terms at the bound positions of `adn` — the magic predicate's
/// column layout.
fn bound_specs(atom: &Atom, adn: &[bool], rule: &Rule) -> Vec<TermSpec> {
    atom.terms
        .iter()
        .zip(adn)
        .filter(|(_, &b)| b)
        .map(|(t, _)| to_spec(t, rule))
        .collect()
}

/// Static sideways-information-passing order over the positive body: the
/// greedy most-bound-columns-first walk (constants and already-bound
/// variables count), ties keeping the written order.  This is the static
/// twin of the optimizer's `atom_score` greedy — no cardinalities exist at
/// rewrite time, so bound-column count stands in for selectivity; at
/// runtime the adaptive reorderer re-sorts the adorned bodies with live
/// cardinalities and the magic guards scored as high-selectivity.
fn sip_order(positives: &[&Literal], head_bound: &[bool]) -> Vec<usize> {
    let n = positives.len();
    let mut bound = head_bound.to_vec();
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    while !remaining.is_empty() {
        let mut best_pos = 0;
        let mut best_score = -1i64;
        for (pos, &i) in remaining.iter().enumerate() {
            let score = positives[i]
                .atom
                .terms
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound[v.index()],
                })
                .count() as i64;
            if score > best_score {
                best_score = score;
                best_pos = pos;
            }
        }
        let chosen = remaining.remove(best_pos);
        for (_, v) in positives[chosen].atom.variables() {
            bound[v.index()] = true;
        }
        order.push(chosen);
    }
    order
}

/// Rewrites `program` for the goal `goal` queried under `pattern` (one
/// binding per column).  `extra_fact_rels` lists relations that receive
/// facts at runtime beyond the program's own (`Carac`'s `add_fact_*`
/// surface): intensional relations among them carry asserted base facts the
/// demand restriction would lose, so they are treated as ineligible exactly
/// like relations with static program facts.
///
/// Returns the rewritten program (see [`MagicProgram`]), or the original
/// program with [`MagicProgram::fallback`] set when the goal cannot soundly
/// be demand-restricted.
pub fn magic_rewrite(
    program: &Program,
    goal: RelId,
    pattern: &[QueryBinding],
    extra_fact_rels: &[RelId],
) -> Result<MagicProgram, DatalogError> {
    let goal_decl = program.relation(goal);
    if pattern.len() != goal_decl.arity {
        return Err(DatalogError::ArityMismatch {
            relation: goal_decl.name.clone(),
            expected: goal_decl.arity,
            actual: pattern.len(),
        });
    }
    let adornment: Vec<bool> = pattern.iter().map(QueryBinding::is_bound).collect();

    // --- eligibility: which relations may be demand-restricted -----------
    let mut negated_anywhere: FxHashSet<RelId> = FxHashSet::default();
    for rule in program.rules() {
        for literal in rule.negative_body() {
            negated_anywhere.insert(literal.atom.rel);
        }
    }
    let agg_pinned: FxHashSet<RelId> = program
        .aggregates()
        .iter()
        .flat_map(|a| [a.input, a.output])
        .collect();
    let mut fact_bearing: FxHashSet<RelId> = program.facts().iter().map(|(rel, _)| *rel).collect();
    fact_bearing.extend(extra_fact_rels.iter().copied());
    let eligible = |rel: RelId| -> bool {
        !program.relation(rel).is_edb
            && !negated_anywhere.contains(&rel)
            && !agg_pinned.contains(&rel)
            && !fact_bearing.contains(&rel)
    };

    if !adornment.iter().any(|&b| b) || !eligible(goal) {
        return Ok(MagicProgram {
            program: program.clone(),
            answer_relation: goal_decl.name.clone(),
            fallback: true,
            magic_relations: Vec::new(),
            adorned_map: Vec::new(),
        });
    }

    // --- adornment worklist ----------------------------------------------
    let mut queue: VecDeque<(RelId, Vec<bool>)> = VecDeque::new();
    let mut processed: FxHashSet<(RelId, Vec<bool>)> = FxHashSet::default();
    let mut adorned: Vec<(RelId, Vec<bool>)> = Vec::new();
    queue.push_back((goal, adornment.clone()));
    processed.insert((goal, adornment.clone()));
    adorned.push((goal, adornment.clone()));

    // Relations read fully by adorned rules (negated subgoals, aggregate
    // outputs, unbound demands, ...): their defining rules are kept.
    let mut full_needed: Vec<RelId> = Vec::new();
    let need_full = |rel: RelId, full_needed: &mut Vec<RelId>| {
        if !program.relation(rel).is_edb && !full_needed.contains(&rel) {
            full_needed.push(rel);
        }
    };
    let mut gen_rules: Vec<GenRule> = Vec::new();

    while let Some((rel, adn)) = queue.pop_front() {
        for rule in program.rules_for(rel) {
            let positives: Vec<&Literal> = rule.positive_body().collect();
            // Variables bound by the demand: head variables at bound
            // adornment positions.
            let mut head_bound = vec![false; rule.num_vars()];
            for (col, &b) in adn.iter().enumerate() {
                if b {
                    if let Term::Var(v) = rule.head.terms[col] {
                        head_bound[v.index()] = true;
                    }
                }
            }
            let sip = sip_order(&positives, &head_bound);

            // The adorned rule body grows left to right; `body` doubles as
            // the magic-rule prefix at every step.
            let guard = (
                magic_name(&goal_name_of(program, rel), &adn),
                bound_specs(&rule.head, &adn, rule),
            );
            let mut body: Vec<(String, Vec<TermSpec>, bool)> = vec![(guard.0, guard.1, false)];
            let mut bound = head_bound;
            for &i in &sip {
                let atom = &positives[i].atom;
                let sub_adn: Vec<bool> = atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound[v.index()],
                    })
                    .collect();
                let decl = program.relation(atom.rel);
                let name = if eligible(atom.rel) && sub_adn.iter().any(|&b| b) {
                    if processed.insert((atom.rel, sub_adn.clone())) {
                        queue.push_back((atom.rel, sub_adn.clone()));
                        adorned.push((atom.rel, sub_adn.clone()));
                    }
                    // Demand propagation: the bound columns of this atom,
                    // derivable from the guard plus the SIP prefix.
                    gen_rules.push(GenRule {
                        head: (
                            magic_name(&decl.name, &sub_adn),
                            bound_specs(atom, &sub_adn, rule),
                        ),
                        body: body.clone(),
                        constraints: Vec::new(),
                    });
                    adorned_name(&decl.name, &sub_adn)
                } else {
                    // Ineligible (or nothing bound flows in): read the
                    // original relation, fully evaluated.
                    need_full(atom.rel, &mut full_needed);
                    decl.name.clone()
                };
                body.push((
                    name,
                    atom.terms.iter().map(|t| to_spec(t, rule)).collect(),
                    false,
                ));
                for (_, v) in atom.variables() {
                    bound[v.index()] = true;
                }
            }
            // Negated subgoals always read the original, fully evaluated
            // relation: demand must not cross a negation.
            for literal in rule.negative_body() {
                let decl = program.relation(literal.atom.rel);
                need_full(literal.atom.rel, &mut full_needed);
                body.push((
                    decl.name.clone(),
                    literal
                        .atom
                        .terms
                        .iter()
                        .map(|t| to_spec(t, rule))
                        .collect(),
                    true,
                ));
            }
            gen_rules.push(GenRule {
                head: (
                    adorned_name(&program.relation(rel).name, &adn),
                    rule.head.terms.iter().map(|t| to_spec(t, rule)).collect(),
                ),
                body,
                constraints: rule
                    .constraints
                    .iter()
                    .map(|c| (to_spec(&c.lhs, rule), c.op, to_spec(&c.rhs, rule)))
                    .collect(),
            });
        }
    }

    // --- closure of fully evaluated relations ----------------------------
    let mut kept_rules = vec![false; program.rules().len()];
    let mut kept_aggs: Vec<&crate::ast::AggregateSpec> = Vec::new();
    let mut i = 0;
    while i < full_needed.len() {
        let rel = full_needed[i];
        i += 1;
        if let Some(spec) = program.aggregate_for(rel) {
            kept_aggs.push(spec);
            if !full_needed.contains(&spec.input) {
                full_needed.push(spec.input);
            }
        }
        for rule in program.rules_for(rel) {
            if kept_rules[rule.id.index()] {
                continue;
            }
            kept_rules[rule.id.index()] = true;
            for literal in &rule.body {
                need_full(literal.atom.rel, &mut full_needed);
            }
        }
    }

    // --- reserved-name check ---------------------------------------------
    let existing: FxHashSet<&str> = program
        .relations()
        .iter()
        .map(|d| d.name.as_str())
        .collect();
    for (rel, adn) in &adorned {
        let decl = program.relation(*rel);
        for name in [adorned_name(&decl.name, adn), magic_name(&decl.name, adn)] {
            if existing.contains(name.as_str()) {
                return Err(DatalogError::ReservedName { relation: name });
            }
        }
    }

    // --- emission ----------------------------------------------------------
    let mut builder = ProgramBuilder::new();
    builder.with_symbols(program.symbols().clone());
    // Original relations first, in order, so RelIds are preserved.
    for decl in program.relations() {
        builder.relation(&decl.name, decl.arity);
    }
    let mut magic_relations = Vec::with_capacity(adorned.len());
    let mut adorned_map = Vec::with_capacity(adorned.len());
    for (rel, adn) in &adorned {
        let decl = program.relation(*rel);
        let adorned = adorned_name(&decl.name, adn);
        builder.relation(&adorned, decl.arity);
        adorned_map.push((adorned, decl.name.clone()));
        let magic = magic_name(&decl.name, adn);
        builder.relation(&magic, adn.iter().filter(|&&b| b).count());
        magic_relations.push(magic);
    }
    // Kept original rules (full evaluation), in original order.
    for rule in program.rules() {
        if !kept_rules[rule.id.index()] {
            continue;
        }
        let head_specs: Vec<TermSpec> = rule.head.terms.iter().map(|t| to_spec(t, rule)).collect();
        let mut rb = builder.rule(&program.relation(rule.head.rel).name, &head_specs);
        for literal in &rule.body {
            let name = &program.relation(literal.atom.rel).name;
            let specs: Vec<TermSpec> = literal
                .atom
                .terms
                .iter()
                .map(|t| to_spec(t, rule))
                .collect();
            rb = if literal.negated {
                rb.when_not(name, &specs)
            } else {
                rb.when(name, &specs)
            };
        }
        for c in &rule.constraints {
            rb = rb.constrain(to_spec(&c.lhs, rule), c.op, to_spec(&c.rhs, rule));
        }
        rb.end();
    }
    // Generated adorned and magic rules, in generation order.
    for g in &gen_rules {
        let mut rb = builder.rule(&g.head.0, &g.head.1);
        for (name, specs, negated) in &g.body {
            rb = if *negated {
                rb.when_not(name, specs)
            } else {
                rb.when(name, specs)
            };
        }
        for (lhs, op, rhs) in &g.constraints {
            rb = rb.constrain(lhs.clone(), *op, rhs.clone());
        }
        rb.end();
    }
    // All original facts (EDB inputs and any kept IDB base facts).
    for (rel, tuple) in program.facts() {
        let specs: Vec<TermSpec> = tuple.values().iter().map(|&v| TermSpec::Value(v)).collect();
        builder.fact(&program.relation(*rel).name, &specs);
    }
    // Kept aggregations.
    for spec in kept_aggs {
        builder.aggregate(
            &program.relation(spec.output).name,
            &program.relation(spec.input).name,
            &spec.aggs,
        );
    }
    // The seed: the query's constants, demanded unconditionally.
    let seed: Vec<TermSpec> = pattern
        .iter()
        .filter_map(|b| match b {
            QueryBinding::Bound(v) => Some(TermSpec::Value(*v)),
            QueryBinding::Free => None,
        })
        .collect();
    builder.fact(&magic_name(&goal_decl.name, &adornment), &seed);

    let rewritten = builder.build()?;
    Ok(MagicProgram {
        answer_relation: adorned_name(&goal_decl.name, &adornment),
        program: rewritten,
        fallback: false,
        magic_relations,
        adorned_map,
    })
}

/// Helper reading a relation's name (kept out of the closure-captured
/// borrows above).
fn goal_name_of(program: &Program, rel: RelId) -> String {
    program.relation(rel).name.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{c, v};
    use crate::parser::parse;

    fn tc() -> Program {
        parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n\
             Edge(1, 2). Edge(2, 3). Edge(5, 6).",
        )
        .unwrap()
    }

    #[test]
    fn rewrites_point_query_with_seed_and_guards() {
        let p = tc();
        let path = p.relation_by_name("Path").unwrap();
        let mp = magic_rewrite(
            &p,
            path,
            &[QueryBinding::bound_int(1), QueryBinding::Free],
            &[],
        )
        .unwrap();
        assert!(!mp.fallback);
        assert_eq!(mp.answer_relation, "Path__bf");
        assert_eq!(mp.magic_relations, vec!["m__Path__bf".to_string()]);
        let rp = &mp.program;
        // Original relations keep their ids.
        assert_eq!(
            rp.relation_by_name("Edge").unwrap(),
            p.relation_by_name("Edge").unwrap()
        );
        assert_eq!(rp.relation_by_name("Path").unwrap(), path);
        let answer = rp.relation_by_name("Path__bf").unwrap();
        let magic = rp.relation_by_name("m__Path__bf").unwrap();
        assert_eq!(rp.relation(answer).arity, 2);
        assert_eq!(rp.relation(magic).arity, 1);
        // Every adorned rule is guarded by the magic predicate.
        for rule in rp.rules_for(answer) {
            assert_eq!(rule.body[0].atom.rel, magic, "unguarded adorned rule");
        }
        // The seed fact carries the query constant.
        assert!(rp
            .facts()
            .iter()
            .any(|(rel, t)| *rel == magic && t.values() == [Value::int(1)]));
        // The original Path rules are gone (Path is fully demand-restricted).
        assert_eq!(rp.rules_for(path).count(), 0);
    }

    #[test]
    fn unbound_pattern_falls_back() {
        let p = tc();
        let path = p.relation_by_name("Path").unwrap();
        let mp = magic_rewrite(&p, path, &[QueryBinding::Free, QueryBinding::Free], &[]).unwrap();
        assert!(mp.fallback);
        assert_eq!(mp.answer_relation, "Path");
        assert!(mp.magic_relations.is_empty());
        assert_eq!(mp.program.rules().len(), p.rules().len());
    }

    #[test]
    fn negated_goal_falls_back_and_negated_subgoals_stay_full() {
        let p = parse(
            "Composite(x) :- Div(x, d).\n\
             Prime(x) :- Num(x), !Composite(x).\n\
             Num(2). Num(3). Num(4). Div(4, 2).",
        )
        .unwrap();
        // Composite appears under negation: queries on it fall back.
        let composite = p.relation_by_name("Composite").unwrap();
        let mp = magic_rewrite(&p, composite, &[QueryBinding::bound_int(4)], &[]).unwrap();
        assert!(mp.fallback);
        // Prime is eligible; its negated subgoal keeps Composite (and its
        // rules) fully evaluated.
        let prime = p.relation_by_name("Prime").unwrap();
        let mp = magic_rewrite(&p, prime, &[QueryBinding::bound_int(3)], &[]).unwrap();
        assert!(!mp.fallback);
        let rp = &mp.program;
        let composite = rp.relation_by_name("Composite").unwrap();
        assert_eq!(
            rp.rules_for(composite).count(),
            1,
            "negated dep must stay full"
        );
        let answer = rp.relation_by_name(&mp.answer_relation).unwrap();
        let rule = rp.rules_for(answer).next().unwrap();
        assert!(rule
            .body
            .iter()
            .any(|l| l.negated && l.atom.rel == composite));
    }

    #[test]
    fn aggregated_relations_fall_back() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Deg", 2);
        b.rule("Deg", &[v("x"), crate::builder::count_of("y")])
            .when("Edge", &["x", "y"])
            .end();
        let p = b.build().unwrap();
        let deg = p.relation_by_name("Deg").unwrap();
        let mp = magic_rewrite(
            &p,
            deg,
            &[QueryBinding::bound_int(1), QueryBinding::Free],
            &[],
        )
        .unwrap();
        assert!(mp.fallback);
    }

    #[test]
    fn idb_base_facts_force_fallback() {
        // Path carries an asserted base fact: demand restriction would lose
        // it, so the goal is ineligible.
        let p = parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n\
             Edge(1, 2). Path(7, 8).",
        )
        .unwrap();
        let path = p.relation_by_name("Path").unwrap();
        let mp = magic_rewrite(
            &p,
            path,
            &[QueryBinding::bound_int(1), QueryBinding::Free],
            &[],
        )
        .unwrap();
        assert!(mp.fallback);
        // The same applies when the facts arrive at runtime.
        let p = tc();
        let path = p.relation_by_name("Path").unwrap();
        let mp = magic_rewrite(
            &p,
            path,
            &[QueryBinding::bound_int(1), QueryBinding::Free],
            &[path],
        )
        .unwrap();
        assert!(mp.fallback);
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let p = tc();
        let path = p.relation_by_name("Path").unwrap();
        assert!(matches!(
            magic_rewrite(&p, path, &[QueryBinding::bound_int(1)], &[]),
            Err(DatalogError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn reserved_name_collision_is_rejected() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Path", 2);
        b.relation("m__Path__bf", 1); // user-declared collision
        b.rule("Path", &["x", "y"]).when("Edge", &["x", "y"]).end();
        b.rule("m__Path__bf", &["x"])
            .when("Edge", &[v("x"), c(1)])
            .end();
        let p = b.build().unwrap();
        let path = p.relation_by_name("Path").unwrap();
        assert!(matches!(
            magic_rewrite(
                &p,
                path,
                &[QueryBinding::bound_int(1), QueryBinding::Free],
                &[]
            ),
            Err(DatalogError::ReservedName { .. })
        ));
    }

    #[test]
    fn demand_propagates_through_multi_relation_bodies() {
        // Same-generation: the recursive rule passes demand through Parent
        // into Sg with the first column bound.
        let p = parse(
            "Sg(x, y) :- Parent(p, x), Parent(p, y).\n\
             Sg(x, y) :- Parent(px, x), Sg(px, py), Parent(py, y).\n\
             Parent(1, 2). Parent(1, 3). Parent(2, 4). Parent(3, 5).",
        )
        .unwrap();
        let sg = p.relation_by_name("Sg").unwrap();
        let mp = magic_rewrite(
            &p,
            sg,
            &[QueryBinding::bound_int(4), QueryBinding::Free],
            &[],
        )
        .unwrap();
        assert!(!mp.fallback);
        // The recursive body atom Sg(px, py) is demanded as Sg__bf again
        // (px becomes bound through Parent(px, x) with x bound).
        let rp = &mp.program;
        assert!(rp.relation_by_name("Sg__bf").is_ok());
        let magic = rp.relation_by_name("m__Sg__bf").unwrap();
        // The magic predicate is recursive: demand grows through the rule.
        assert!(rp.rules_for(magic).count() >= 1);
    }

    #[test]
    fn magic_name_detection() {
        assert!(is_magic_name("m__Path__bf"));
        assert!(!is_magic_name("Path__bf"));
        assert!(!is_magic_name("Path"));
    }
}
