//! Frontend error type.

use std::fmt;

/// Errors reported while constructing, parsing or validating a Datalog
/// program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A relation was declared twice with different arities.
    ConflictingDeclaration {
        /// Relation name.
        name: String,
        /// Arity of the first declaration.
        first: usize,
        /// Arity of the conflicting declaration.
        second: usize,
    },
    /// An atom referenced a relation that was never declared.
    UnknownRelation(String),
    /// An atom used a different number of terms than the relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Terms supplied.
        actual: usize,
    },
    /// A head variable does not occur in any positive body literal
    /// (violates range restriction / safety).
    UnsafeHeadVariable {
        /// Rule (by display string) containing the violation.
        rule: String,
        /// Offending variable name.
        variable: String,
    },
    /// A variable inside a negated literal does not occur in any positive
    /// literal of the same rule.
    UnsafeNegatedVariable {
        /// Rule containing the violation.
        rule: String,
        /// Offending variable name.
        variable: String,
    },
    /// A rule's head relation is extensional (facts-only relations cannot be
    /// derived).
    HeadIsEdb(String),
    /// Negation through recursion: a negated literal's relation is in the
    /// same stratum (mutual recursion) as the rule head.
    NotStratifiable {
        /// Head relation of the offending rule.
        head: String,
        /// Negated relation participating in the cycle.
        negated: String,
    },
    /// A fact contained a variable.
    NonGroundFact(String),
    /// An integer constant does not fit the engine's plain-integer value
    /// range (`0 ..= 2^31 - 1`; larger values collide with interned
    /// symbols).
    IntegerOutOfRange {
        /// The offending literal.
        value: u32,
    },
    /// A variable of a comparison constraint does not occur in any positive
    /// body literal of the same rule.
    UnsafeConstraintVariable {
        /// Rule containing the violation.
        rule: String,
        /// Offending variable name.
        variable: String,
    },
    /// An aggregate term (`min d`, `count y`, ...) appeared outside a rule
    /// head.
    AggregateMisplaced {
        /// Relation whose atom or fact carried the aggregate term.
        relation: String,
    },
    /// A relation with an aggregate rule also has plain rules or facts, or
    /// its aggregate rules disagree on which columns/functions they fold.
    /// Aggregated relations must be defined solely by aggregate rules with
    /// one common aggregation signature.
    AggregateConflict {
        /// The over-defined relation.
        relation: String,
    },
    /// A program rewrite (magic sets) would generate a relation name the
    /// user program already declares; the name is reserved.
    ReservedName {
        /// The colliding generated name.
        relation: String,
    },
    /// Parse error with a line/column position.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
        /// Message.
        message: String,
    },
    /// Several independent validation errors collected in one pass (see
    /// `validate::validate_all`).  Never nested: the contained errors are
    /// all simple variants, and a single collected error is returned bare.
    Multiple(Vec<DatalogError>),
}

impl DatalogError {
    /// Wraps a non-empty batch of collected errors: one error is returned
    /// as itself, several become [`DatalogError::Multiple`].
    ///
    /// Panics on an empty batch — callers only collect when something
    /// failed.
    pub fn from_batch(mut errors: Vec<DatalogError>) -> DatalogError {
        match errors.len() {
            0 => panic!("from_batch called with no errors"),
            1 => errors.remove(0),
            _ => DatalogError::Multiple(errors),
        }
    }

    /// The individual errors: the contained batch for
    /// [`DatalogError::Multiple`], otherwise a one-element slice of `self`.
    pub fn each(&self) -> &[DatalogError] {
        match self {
            DatalogError::Multiple(errors) => errors,
            other => std::slice::from_ref(other),
        }
    }
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::ConflictingDeclaration { name, first, second } => write!(
                f,
                "relation `{name}` declared with conflicting arities {first} and {second}"
            ),
            DatalogError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            DatalogError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "atom for `{relation}` has {actual} terms but the relation has arity {expected}"
            ),
            DatalogError::UnsafeHeadVariable { rule, variable } => write!(
                f,
                "head variable `{variable}` in rule `{rule}` does not occur in a positive body literal"
            ),
            DatalogError::UnsafeNegatedVariable { rule, variable } => write!(
                f,
                "variable `{variable}` of a negated literal in rule `{rule}` does not occur in a positive literal"
            ),
            DatalogError::HeadIsEdb(name) => {
                write!(f, "relation `{name}` is extensional and cannot appear in a rule head")
            }
            DatalogError::NotStratifiable { head, negated } => write!(
                f,
                "program is not stratifiable: `{head}` depends negatively on `{negated}` within a recursive cycle"
            ),
            DatalogError::NonGroundFact(rel) => {
                write!(f, "fact for `{rel}` contains a variable; facts must be ground")
            }
            DatalogError::IntegerOutOfRange { value } => write!(
                f,
                "integer constant {value} exceeds the plain-integer range (max {})",
                u32::MAX / 2
            ),
            DatalogError::UnsafeConstraintVariable { rule, variable } => write!(
                f,
                "variable `{variable}` of a comparison constraint in rule `{rule}` does not occur in a positive body literal"
            ),
            DatalogError::AggregateMisplaced { relation } => write!(
                f,
                "aggregate term for `{relation}` outside a rule head; `count`/`sum`/`min`/`max` are only allowed in head positions"
            ),
            DatalogError::AggregateConflict { relation } => write!(
                f,
                "relation `{relation}` must be defined only by aggregate rules sharing one aggregation signature"
            ),
            DatalogError::ReservedName { relation } => write!(
                f,
                "relation name `{relation}` is reserved for the magic-set rewrite; rename the user relation"
            ),
            DatalogError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            DatalogError::Multiple(errors) => {
                write!(f, "{} validation errors:", errors.len())?;
                for err in errors {
                    write!(f, "\n  - {err}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        let err = DatalogError::UnknownRelation("VaFlow".into());
        assert!(err.to_string().contains("VaFlow"));
        let err = DatalogError::NotStratifiable {
            head: "Prime".into(),
            negated: "Composite".into(),
        };
        assert!(err.to_string().contains("Prime"));
        assert!(err.to_string().contains("Composite"));
    }

    #[test]
    fn batches_collapse_singletons_and_list_everything_else() {
        let single = DatalogError::from_batch(vec![DatalogError::UnknownRelation("A".into())]);
        assert!(matches!(single, DatalogError::UnknownRelation(_)));
        assert_eq!(single.each().len(), 1);

        let multiple = DatalogError::from_batch(vec![
            DatalogError::UnknownRelation("A".into()),
            DatalogError::UnknownRelation("B".into()),
        ]);
        assert!(matches!(multiple, DatalogError::Multiple(_)));
        assert_eq!(multiple.each().len(), 2);
        let text = multiple.to_string();
        assert!(text.contains("2 validation errors"));
        assert!(text.contains('A') && text.contains('B'));
    }
}
