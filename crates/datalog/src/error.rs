//! Frontend error type.

use std::fmt;

/// Errors reported while constructing, parsing or validating a Datalog
/// program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A relation was declared twice with different arities.
    ConflictingDeclaration {
        /// Relation name.
        name: String,
        /// Arity of the first declaration.
        first: usize,
        /// Arity of the conflicting declaration.
        second: usize,
    },
    /// An atom referenced a relation that was never declared.
    UnknownRelation(String),
    /// An atom used a different number of terms than the relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Terms supplied.
        actual: usize,
    },
    /// A head variable does not occur in any positive body literal
    /// (violates range restriction / safety).
    UnsafeHeadVariable {
        /// Rule (by display string) containing the violation.
        rule: String,
        /// Offending variable name.
        variable: String,
    },
    /// A variable inside a negated literal does not occur in any positive
    /// literal of the same rule.
    UnsafeNegatedVariable {
        /// Rule containing the violation.
        rule: String,
        /// Offending variable name.
        variable: String,
    },
    /// A rule's head relation is extensional (facts-only relations cannot be
    /// derived).
    HeadIsEdb(String),
    /// Negation through recursion: a negated literal's relation is in the
    /// same stratum (mutual recursion) as the rule head.
    NotStratifiable {
        /// Head relation of the offending rule.
        head: String,
        /// Negated relation participating in the cycle.
        negated: String,
    },
    /// A fact contained a variable.
    NonGroundFact(String),
    /// Parse error with a line/column position.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
        /// Message.
        message: String,
    },
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::ConflictingDeclaration { name, first, second } => write!(
                f,
                "relation `{name}` declared with conflicting arities {first} and {second}"
            ),
            DatalogError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            DatalogError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "atom for `{relation}` has {actual} terms but the relation has arity {expected}"
            ),
            DatalogError::UnsafeHeadVariable { rule, variable } => write!(
                f,
                "head variable `{variable}` in rule `{rule}` does not occur in a positive body literal"
            ),
            DatalogError::UnsafeNegatedVariable { rule, variable } => write!(
                f,
                "variable `{variable}` of a negated literal in rule `{rule}` does not occur in a positive literal"
            ),
            DatalogError::HeadIsEdb(name) => {
                write!(f, "relation `{name}` is extensional and cannot appear in a rule head")
            }
            DatalogError::NotStratifiable { head, negated } => write!(
                f,
                "program is not stratifiable: `{head}` depends negatively on `{negated}` within a recursive cycle"
            ),
            DatalogError::NonGroundFact(rel) => {
                write!(f, "fact for `{rel}` contains a variable; facts must be ground")
            }
            DatalogError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
        }
    }
}

impl std::error::Error for DatalogError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_culprit() {
        let err = DatalogError::UnknownRelation("VaFlow".into());
        assert!(err.to_string().contains("VaFlow"));
        let err = DatalogError::NotStratifiable {
            head: "Prime".into(),
            negated: "Composite".into(),
        };
        assert!(err.to_string().contains("Prime"));
        assert!(err.to_string().contains("Composite"));
    }
}
