//! Static validation of Datalog programs.
//!
//! Validation enforces the classic well-formedness conditions before a
//! program reaches the planner:
//!
//! * every atom's arity matches its relation declaration,
//! * every head variable occurs in at least one positive body literal
//!   (range restriction / safety),
//! * every variable of a negated literal occurs in at least one positive
//!   literal (safe negation),
//! * facts are ground and match their relation's arity.
//!
//! All passes collect *every* violation they find; a failing build reports
//! the whole batch at once (a single violation is returned bare, several
//! arrive as [`DatalogError::Multiple`]).

use carac_storage::{RelId, SymbolTable, Tuple};

use crate::ast::{RelationDecl, Rule};
use crate::error::DatalogError;

/// Runs all validation passes; collects every violation and returns the
/// batch (one error bare, several as [`DatalogError::Multiple`]).
pub fn validate(
    decls: &[RelationDecl],
    rules: &[Rule],
    facts: &[(RelId, Tuple)],
    symbols: &SymbolTable,
) -> Result<(), DatalogError> {
    let errors = validate_all(decls, rules, facts, symbols);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(DatalogError::from_batch(errors))
    }
}

/// Runs all validation passes and returns every violation found, in pass
/// order (arity errors first, then safety errors).  Empty means valid.
pub fn validate_all(
    decls: &[RelationDecl],
    rules: &[Rule],
    facts: &[(RelId, Tuple)],
    _symbols: &SymbolTable,
) -> Vec<DatalogError> {
    let mut errors = Vec::new();
    check_arities(decls, rules, facts, &mut errors);
    check_safety(decls, rules, &mut errors);
    errors
}

/// Renders a rule without access to a full `Program` (validation runs before
/// the program exists).  Cites the rule's source label/position when the
/// builder or parser recorded one.
pub(crate) fn describe_rule(decls: &[RelationDecl], rule: &Rule) -> String {
    let head = &decls[rule.head.rel.index()].name;
    match rule.origin.describe() {
        Some(origin) => format!("{head}/{} ({origin})", rule.head.arity()),
        None => format!("{head}/{} (rule #{})", rule.head.arity(), rule.id.0),
    }
}

fn check_arities(
    decls: &[RelationDecl],
    rules: &[Rule],
    facts: &[(RelId, Tuple)],
    errors: &mut Vec<DatalogError>,
) {
    let arity_of = |rel: RelId| decls[rel.index()].arity;
    for rule in rules {
        if rule.head.arity() != arity_of(rule.head.rel) {
            errors.push(DatalogError::ArityMismatch {
                relation: decls[rule.head.rel.index()].name.clone(),
                expected: arity_of(rule.head.rel),
                actual: rule.head.arity(),
            });
        }
        for literal in &rule.body {
            if literal.atom.arity() != arity_of(literal.atom.rel) {
                errors.push(DatalogError::ArityMismatch {
                    relation: decls[literal.atom.rel.index()].name.clone(),
                    expected: arity_of(literal.atom.rel),
                    actual: literal.atom.arity(),
                });
            }
        }
    }
    for (rel, tuple) in facts {
        if tuple.arity() != arity_of(*rel) {
            errors.push(DatalogError::ArityMismatch {
                relation: decls[rel.index()].name.clone(),
                expected: arity_of(*rel),
                actual: tuple.arity(),
            });
        }
    }
}

fn check_safety(decls: &[RelationDecl], rules: &[Rule], errors: &mut Vec<DatalogError>) {
    for rule in rules {
        // Collect variables bound by positive literals.
        let mut bound = vec![false; rule.num_vars()];
        for literal in rule.positive_body() {
            for (_, var) in literal.atom.variables() {
                bound[var.index()] = true;
            }
        }
        // Head variables must be bound.
        for (_, var) in rule.head.variables() {
            if !bound[var.index()] {
                errors.push(DatalogError::UnsafeHeadVariable {
                    rule: describe_rule(decls, rule),
                    variable: rule.var_names[var.index()].clone(),
                });
            }
        }
        // Negated literal variables must be bound.
        for literal in rule.negative_body() {
            for (_, var) in literal.atom.variables() {
                if !bound[var.index()] {
                    errors.push(DatalogError::UnsafeNegatedVariable {
                        rule: describe_rule(decls, rule),
                        variable: rule.var_names[var.index()].clone(),
                    });
                }
            }
        }
        // Comparison-constraint variables must be bound: constraints filter,
        // they never generate bindings.
        for constraint in &rule.constraints {
            for var in constraint.variables() {
                if !bound[var.index()] {
                    errors.push(DatalogError::UnsafeConstraintVariable {
                        rule: describe_rule(decls, rule),
                        variable: rule.var_names[var.index()].clone(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{c, v, ProgramBuilder};

    #[test]
    fn facts_and_atoms_must_match_arity() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.fact_ints("Edge", &[1, 2, 3]);
        assert!(matches!(b.build(), Err(DatalogError::ArityMismatch { .. })));

        // The short atom triggers both an arity error and (because `y` is
        // now unbound) a safety error; the batch must contain the arity one.
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Path", 2);
        b.rule("Path", &["x", "y"]).when("Edge", &["x"]).end();
        let err = b.build().unwrap_err();
        assert!(err
            .each()
            .iter()
            .any(|e| matches!(e, DatalogError::ArityMismatch { .. })));
    }

    #[test]
    fn two_independent_arity_errors_are_both_reported() {
        // Regression for the collect-all refactor: validation used to stop
        // at the first error; both independent mistakes must surface.
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Node", 1);
        b.relation("Out", 1);
        b.rule("Out", &["x"]).when("Edge", &["x"]).end(); // arity 1 vs 2
        b.fact_ints("Node", &[1, 2]); // arity 2 vs 1
        match b.build() {
            Err(DatalogError::Multiple(errors)) => {
                assert_eq!(errors.len(), 2);
                assert!(errors
                    .iter()
                    .all(|e| matches!(e, DatalogError::ArityMismatch { .. })));
                let names: Vec<_> = errors
                    .iter()
                    .map(|e| match e {
                        DatalogError::ArityMismatch { relation, .. } => relation.as_str(),
                        _ => unreachable!(),
                    })
                    .collect();
                assert!(names.contains(&"Edge") && names.contains(&"Node"));
            }
            other => panic!("expected Multiple, got {other:?}"),
        }
    }

    #[test]
    fn arity_and_safety_errors_collect_across_passes() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Out", 2);
        // One arity error (body atom) and one safety error (unbound head
        // variable `w`) in the same program.
        b.rule("Out", &["x", "w"]).when("Edge", &["x"]).end();
        match b.build() {
            Err(DatalogError::Multiple(errors)) => {
                assert!(errors
                    .iter()
                    .any(|e| matches!(e, DatalogError::ArityMismatch { .. })));
                assert!(errors
                    .iter()
                    .any(|e| matches!(e, DatalogError::UnsafeHeadVariable { .. })));
            }
            other => panic!("expected Multiple, got {other:?}"),
        }
    }

    #[test]
    fn safety_errors_cite_rule_labels() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Out", 2);
        b.rule("Out", &["x", "w"])
            .when("Edge", &["x", "y"])
            .label("projection")
            .end();
        match b.build() {
            Err(DatalogError::UnsafeHeadVariable { rule, variable }) => {
                assert!(rule.contains("\"projection\""), "got {rule}");
                assert_eq!(variable, "w");
            }
            other => panic!("expected UnsafeHeadVariable, got {other:?}"),
        }
    }

    #[test]
    fn unbound_head_variable_is_unsafe() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Out", 2);
        b.rule("Out", &["x", "w"]).when("Edge", &["x", "y"]).end();
        assert!(matches!(
            b.build(),
            Err(DatalogError::UnsafeHeadVariable { .. })
        ));
    }

    #[test]
    fn head_constants_are_always_safe() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Out", 2);
        b.rule("Out", &[v("x"), c(0)])
            .when("Edge", &[v("x"), v("y")])
            .end();
        assert!(b.build().is_ok());
    }

    #[test]
    fn negated_only_variable_is_unsafe() {
        let mut b = ProgramBuilder::new();
        b.relation("Node", 1);
        b.relation("Blocked", 1);
        b.relation("Ok", 1);
        // `y` appears only under negation.
        b.rule("Ok", &["x"])
            .when("Node", &["x"])
            .when_not("Blocked", &["y"])
            .end();
        assert!(matches!(
            b.build(),
            Err(DatalogError::UnsafeNegatedVariable { .. })
        ));
    }

    #[test]
    fn safe_negation_passes() {
        let mut b = ProgramBuilder::new();
        b.relation("Node", 1);
        b.relation("Blocked", 1);
        b.relation("Ok", 1);
        b.rule("Ok", &["x"])
            .when("Node", &["x"])
            .when_not("Blocked", &["x"])
            .end();
        assert!(b.build().is_ok());
    }
}
