//! Static validation of Datalog programs.
//!
//! Validation enforces the classic well-formedness conditions before a
//! program reaches the planner:
//!
//! * every atom's arity matches its relation declaration,
//! * every head variable occurs in at least one positive body literal
//!   (range restriction / safety),
//! * every variable of a negated literal occurs in at least one positive
//!   literal (safe negation),
//! * facts are ground and match their relation's arity.

use carac_storage::{RelId, SymbolTable, Tuple};

use crate::ast::{RelationDecl, Rule};
use crate::error::DatalogError;

/// Runs all validation passes; returns the first error found.
pub fn validate(
    decls: &[RelationDecl],
    rules: &[Rule],
    facts: &[(RelId, Tuple)],
    symbols: &SymbolTable,
) -> Result<(), DatalogError> {
    check_arities(decls, rules, facts)?;
    check_safety(decls, rules, symbols)?;
    Ok(())
}

/// Renders a rule without access to a full `Program` (validation runs before
/// the program exists).
fn describe_rule(decls: &[RelationDecl], rule: &Rule) -> String {
    let head = &decls[rule.head.rel.index()].name;
    format!("{head}/{} (rule #{})", rule.head.arity(), rule.id.0)
}

fn check_arities(
    decls: &[RelationDecl],
    rules: &[Rule],
    facts: &[(RelId, Tuple)],
) -> Result<(), DatalogError> {
    let arity_of = |rel: RelId| decls[rel.index()].arity;
    for rule in rules {
        if rule.head.arity() != arity_of(rule.head.rel) {
            return Err(DatalogError::ArityMismatch {
                relation: decls[rule.head.rel.index()].name.clone(),
                expected: arity_of(rule.head.rel),
                actual: rule.head.arity(),
            });
        }
        for literal in &rule.body {
            if literal.atom.arity() != arity_of(literal.atom.rel) {
                return Err(DatalogError::ArityMismatch {
                    relation: decls[literal.atom.rel.index()].name.clone(),
                    expected: arity_of(literal.atom.rel),
                    actual: literal.atom.arity(),
                });
            }
        }
    }
    for (rel, tuple) in facts {
        if tuple.arity() != arity_of(*rel) {
            return Err(DatalogError::ArityMismatch {
                relation: decls[rel.index()].name.clone(),
                expected: arity_of(*rel),
                actual: tuple.arity(),
            });
        }
    }
    Ok(())
}

fn check_safety(
    decls: &[RelationDecl],
    rules: &[Rule],
    _symbols: &SymbolTable,
) -> Result<(), DatalogError> {
    for rule in rules {
        // Collect variables bound by positive literals.
        let mut bound = vec![false; rule.num_vars()];
        for literal in rule.positive_body() {
            for (_, var) in literal.atom.variables() {
                bound[var.index()] = true;
            }
        }
        // Head variables must be bound.
        for (_, var) in rule.head.variables() {
            if !bound[var.index()] {
                return Err(DatalogError::UnsafeHeadVariable {
                    rule: describe_rule(decls, rule),
                    variable: rule.var_names[var.index()].clone(),
                });
            }
        }
        // Negated literal variables must be bound.
        for literal in rule.negative_body() {
            for (_, var) in literal.atom.variables() {
                if !bound[var.index()] {
                    return Err(DatalogError::UnsafeNegatedVariable {
                        rule: describe_rule(decls, rule),
                        variable: rule.var_names[var.index()].clone(),
                    });
                }
            }
        }
        // Comparison-constraint variables must be bound: constraints filter,
        // they never generate bindings.
        for constraint in &rule.constraints {
            for var in constraint.variables() {
                if !bound[var.index()] {
                    return Err(DatalogError::UnsafeConstraintVariable {
                        rule: describe_rule(decls, rule),
                        variable: rule.var_names[var.index()].clone(),
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{c, v, ProgramBuilder};

    #[test]
    fn facts_and_atoms_must_match_arity() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.fact_ints("Edge", &[1, 2, 3]);
        assert!(matches!(b.build(), Err(DatalogError::ArityMismatch { .. })));

        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Path", 2);
        b.rule("Path", &["x", "y"]).when("Edge", &["x"]).end();
        assert!(matches!(b.build(), Err(DatalogError::ArityMismatch { .. })));
    }

    #[test]
    fn unbound_head_variable_is_unsafe() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Out", 2);
        b.rule("Out", &["x", "w"]).when("Edge", &["x", "y"]).end();
        assert!(matches!(
            b.build(),
            Err(DatalogError::UnsafeHeadVariable { .. })
        ));
    }

    #[test]
    fn head_constants_are_always_safe() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Out", 2);
        b.rule("Out", &[v("x"), c(0)])
            .when("Edge", &[v("x"), v("y")])
            .end();
        assert!(b.build().is_ok());
    }

    #[test]
    fn negated_only_variable_is_unsafe() {
        let mut b = ProgramBuilder::new();
        b.relation("Node", 1);
        b.relation("Blocked", 1);
        b.relation("Ok", 1);
        // `y` appears only under negation.
        b.rule("Ok", &["x"])
            .when("Node", &["x"])
            .when_not("Blocked", &["y"])
            .end();
        assert!(matches!(
            b.build(),
            Err(DatalogError::UnsafeNegatedVariable { .. })
        ));
    }

    #[test]
    fn safe_negation_passes() {
        let mut b = ProgramBuilder::new();
        b.relation("Node", 1);
        b.relation("Blocked", 1);
        b.relation("Ok", 1);
        b.rule("Ok", &["x"])
            .when("Node", &["x"])
            .when_not("Blocked", &["x"])
            .end();
        assert!(b.build().is_ok());
    }
}
