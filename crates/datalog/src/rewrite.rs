//! Static rewrites over validated programs.
//!
//! The paper mentions one static rewrite (§V-A): *alias elimination* — when
//! a relation is a pure alias of another (`A(x, y) :- B(x, y)` and nothing
//! else defines `A`), every use of `A` can be replaced by `B` to avoid a
//! costly extra materialization.  We implement that rewrite plus a helper
//! that computes the program-wide index requests derived from rule metadata
//! (§IV "index selection").

use carac_storage::hasher::{FxHashMap, FxHashSet};
use carac_storage::RelId;

use crate::ast::{Rule, Term};
use crate::metadata::RuleMeta;
use crate::program::Program;

/// Returns the relation that `rule` aliases, if the rule is a pure identity
/// copy: a single positive body atom, no negation, no constants, and the
/// head terms are exactly the body terms in the same order.
fn alias_target(rule: &Rule) -> Option<RelId> {
    if rule.body.len() != 1 || rule.body[0].negated {
        return None;
    }
    let body_atom = &rule.body[0].atom;
    if body_atom.terms.len() != rule.head.terms.len() {
        return None;
    }
    let identical = rule
        .head
        .terms
        .iter()
        .zip(body_atom.terms.iter())
        .all(|(h, b)| match (h, b) {
            (Term::Var(hv), Term::Var(bv)) => hv == bv,
            _ => false,
        });
    // All body variables must be distinct, otherwise the "alias" filters.
    let mut seen = FxHashSet::default();
    let all_distinct = body_atom
        .terms
        .iter()
        .all(|t| matches!(t, Term::Var(v) if seen.insert(*v)));
    if identical && all_distinct {
        Some(body_atom.rel)
    } else {
        None
    }
}

/// Detects alias relations: IDB relations defined by exactly one rule that
/// is a pure identity copy of another relation.  Returns a map from alias
/// relation to its target.
///
/// Relations participating in an aggregation (either side) are never
/// treated as aliases: the aggregation reads the input relation's contents
/// directly, so eliminating its defining rule would change results.
///
/// Chains (`A :- B`, `B :- C`) are resolved transitively; cycles are left
/// untouched (they are genuine recursive definitions, not aliases).
pub fn find_aliases(program: &Program) -> FxHashMap<RelId, RelId> {
    // Count rules per head relation.
    let mut rule_count: FxHashMap<RelId, usize> = FxHashMap::default();
    for rule in program.rules() {
        *rule_count.entry(rule.head.rel).or_insert(0) += 1;
    }
    let aggregate_pinned: FxHashSet<RelId> = program
        .aggregates()
        .iter()
        .flat_map(|a| [a.input, a.output])
        .collect();

    let mut direct: FxHashMap<RelId, RelId> = FxHashMap::default();
    for rule in program.rules() {
        if rule_count.get(&rule.head.rel) != Some(&1) {
            continue;
        }
        if aggregate_pinned.contains(&rule.head.rel) {
            continue;
        }
        if let Some(target) = alias_target(rule) {
            if target != rule.head.rel {
                direct.insert(rule.head.rel, target);
            }
        }
    }

    // Resolve chains, guarding against cycles.
    let mut resolved: FxHashMap<RelId, RelId> = FxHashMap::default();
    for (&alias, &mut mut target) in &mut direct.clone() {
        let mut seen = FxHashSet::default();
        seen.insert(alias);
        while let Some(&next) = direct.get(&target) {
            if !seen.insert(target) {
                break; // cycle
            }
            target = next;
        }
        if !seen.contains(&target) || target != alias {
            resolved.insert(alias, target);
        }
    }
    resolved
}

/// Applies alias elimination: rewrites every body occurrence of an alias
/// relation to its target and drops the alias-defining rules.
///
/// The alias relation itself stays declared (its contents after evaluation
/// would equal the target's), so downstream code querying it by name should
/// query the target returned in the alias map instead.
pub fn eliminate_aliases(program: &Program) -> (Program, FxHashMap<RelId, RelId>) {
    let aliases = find_aliases(program);
    if aliases.is_empty() {
        return (program.clone(), aliases);
    }

    // Rebuild via the builder to re-run validation and stratification.  The
    // original symbol table seeds the new builder and constants round-trip
    // as raw [`TermSpec::Value`]s, so every rebuilt rule and fact is
    // bit-identical to its source — constants that are neither resolvable
    // symbols nor plain integers are preserved rather than corrupted.
    let mut builder = crate::builder::ProgramBuilder::new();
    builder.with_symbols(program.symbols().clone());
    for decl in program.relations() {
        builder.relation(&decl.name, decl.arity);
    }
    for rule in program.rules() {
        // Skip alias-defining rules.
        if aliases.contains_key(&rule.head.rel) {
            continue;
        }
        let head_name = &program.relation(rule.head.rel).name;
        let to_spec = |term: &Term, rule: &Rule| match term {
            Term::Var(v) => crate::builder::TermSpec::Var(rule.var_names[v.index()].clone()),
            Term::Const(c) => crate::builder::TermSpec::Value(*c),
        };
        let head_terms: Vec<_> = rule.head.terms.iter().map(|t| to_spec(t, rule)).collect();
        let mut rb = builder.rule(head_name, &head_terms);
        for literal in &rule.body {
            let rel = aliases
                .get(&literal.atom.rel)
                .copied()
                .unwrap_or(literal.atom.rel);
            let rel_name = &program.relation(rel).name;
            let terms: Vec<_> = literal
                .atom
                .terms
                .iter()
                .map(|t| to_spec(t, rule))
                .collect();
            rb = if literal.negated {
                rb.when_not(rel_name, &terms)
            } else {
                rb.when(rel_name, &terms)
            };
        }
        for constraint in &rule.constraints {
            rb = rb.constrain(
                to_spec(&constraint.lhs, rule),
                constraint.op,
                to_spec(&constraint.rhs, rule),
            );
        }
        rb.end();
    }
    for (rel, tuple) in program.facts() {
        let name = &program.relation(*rel).name;
        let specs: Vec<_> = tuple
            .values()
            .iter()
            .map(|v| crate::builder::TermSpec::Value(*v))
            .collect();
        builder.fact(name, &specs);
    }
    for spec in program.aggregates() {
        builder.aggregate(
            &program.relation(spec.output).name,
            &program.relation(spec.input).name,
            &spec.aggs,
        );
    }

    let rewritten = builder
        .build()
        .expect("alias elimination must preserve validity");
    (rewritten, aliases)
}

/// All `(relation, column)` index requests implied by the program's rules.
/// Duplicates are removed; order follows first request.
pub fn index_requests(program: &Program) -> Vec<(RelId, usize)> {
    let mut seen = FxHashSet::default();
    let mut requests = Vec::new();
    for rule in program.rules() {
        let meta = RuleMeta::analyze(rule);
        for request in meta.index_requests() {
            if seen.insert(request) {
                requests.push(request);
            }
        }
    }
    requests
}

/// All `(relation, columns)` composite-index requests implied by the
/// program's rules: one request per atom constraining two or more columns.
/// Duplicates are removed; order follows first request.
pub fn composite_index_requests(program: &Program) -> Vec<(RelId, Vec<usize>)> {
    let mut seen: FxHashSet<(RelId, Vec<usize>)> = FxHashSet::default();
    let mut requests = Vec::new();
    for rule in program.rules() {
        let meta = RuleMeta::analyze(rule);
        for request in meta.composite_index_requests() {
            if seen.insert(request.clone()) {
                requests.push(request);
            }
        }
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;

    fn aliased_program() -> Program {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Link", 2); // pure alias of Edge
        b.relation("Path", 2);
        b.rule("Link", &["x", "y"]).when("Edge", &["x", "y"]).end();
        b.rule("Path", &["x", "y"]).when("Link", &["x", "y"]).end();
        b.rule("Path", &["x", "y"])
            .when("Link", &["x", "z"])
            .when("Path", &["z", "y"])
            .end();
        b.build().unwrap()
    }

    #[test]
    fn finds_simple_alias() {
        let p = aliased_program();
        let aliases = find_aliases(&p);
        let link = p.relation_by_name("Link").unwrap();
        let edge = p.relation_by_name("Edge").unwrap();
        assert_eq!(aliases.get(&link), Some(&edge));
        assert_eq!(aliases.len(), 1);
    }

    #[test]
    fn eliminates_alias_uses() {
        let p = aliased_program();
        let (rewritten, aliases) = eliminate_aliases(&p);
        assert_eq!(aliases.len(), 1);
        // The alias-defining rule is dropped.
        assert_eq!(rewritten.rules().len(), 2);
        // Every remaining body atom references Edge, not Link.
        let edge = rewritten.relation_by_name("Edge").unwrap();
        let link = rewritten.relation_by_name("Link").unwrap();
        for rule in rewritten.rules() {
            for literal in &rule.body {
                assert_ne!(literal.atom.rel, link);
            }
            assert!(rule
                .body
                .iter()
                .any(|l| l.atom.rel == edge || !rewritten.relation(l.atom.rel).is_edb));
        }
    }

    #[test]
    fn filtering_copy_is_not_an_alias() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("SelfLoop", 2);
        // Repeated variable: this filters, it does not alias.
        b.rule("SelfLoop", &["x", "x"])
            .when("Edge", &["x", "x"])
            .end();
        let p = b.build().unwrap();
        assert!(find_aliases(&p).is_empty());
    }

    #[test]
    fn multi_rule_relation_is_not_an_alias() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Other", 2);
        b.relation("Both", 2);
        b.rule("Both", &["x", "y"]).when("Edge", &["x", "y"]).end();
        b.rule("Both", &["x", "y"]).when("Other", &["x", "y"]).end();
        let p = b.build().unwrap();
        assert!(find_aliases(&p).is_empty());
    }

    #[test]
    fn alias_chains_resolve_to_the_root() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("A", 2);
        b.relation("B", 2);
        b.rule("A", &["x", "y"]).when("Edge", &["x", "y"]).end();
        b.rule("B", &["x", "y"]).when("A", &["x", "y"]).end();
        let p = b.build().unwrap();
        let aliases = find_aliases(&p);
        let edge = p.relation_by_name("Edge").unwrap();
        let a = p.relation_by_name("A").unwrap();
        let b_rel = p.relation_by_name("B").unwrap();
        assert_eq!(aliases.get(&a), Some(&edge));
        assert_eq!(aliases.get(&b_rel), Some(&edge));
    }

    #[test]
    fn eliminate_aliases_preserves_constants_bitwise() {
        // Regression: constants used to round-trip through
        // `TermSpec::Int(c.as_int().unwrap_or(0))` / re-interning, silently
        // corrupting any constant the round-trip could not represent and
        // re-numbering symbols.  Rules, facts and the symbol table must now
        // be bit-identical after alias elimination.
        let mut b = ProgramBuilder::new();
        // Intern extra symbols first so fact symbols get non-dense ids that
        // naive re-interning would renumber.
        b.intern("padding-a");
        b.intern("padding-b");
        b.relation("Edge", 2);
        b.relation("Link", 2); // pure alias of Edge
        b.relation("Tag", 2);
        b.relation("Path", 2);
        b.rule("Link", &["x", "y"]).when("Edge", &["x", "y"]).end();
        b.rule("Path", &["x", "y"]).when("Link", &["x", "y"]).end();
        b.rule(
            "Path",
            &[crate::builder::v("x"), crate::builder::s("marker")],
        )
        .when("Link", &[crate::builder::v("x"), crate::builder::c(7)])
        .end();
        b.fact(
            "Tag",
            &[crate::builder::s("serialize"), crate::builder::c(3)],
        );
        b.fact("Edge", &[crate::builder::c(7), crate::builder::c(7)]);
        let p = b.build().unwrap();

        let (rewritten, aliases) = eliminate_aliases(&p);
        assert_eq!(aliases.len(), 1);
        // Facts are bit-identical.
        assert_eq!(rewritten.facts(), p.facts());
        // Constants inside rules are bit-identical (modulo the dropped alias
        // rule and the Link -> Edge substitution).
        let marker = p.symbols().lookup("marker").unwrap();
        let rewritten_marker = rewritten.symbols().lookup("marker").unwrap();
        assert_eq!(marker, rewritten_marker);
        let has_marker_const = rewritten
            .rules()
            .iter()
            .any(|r| r.head.terms.contains(&Term::Const(marker)));
        assert!(has_marker_const);
        let seven = carac_storage::Value::int(7);
        assert!(rewritten.rules().iter().any(|r| r
            .body
            .iter()
            .any(|l| l.atom.terms.contains(&Term::Const(seven)))));
    }

    #[test]
    fn eliminate_aliases_keeps_constraints_and_aggregates() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Link", 2);
        b.relation("Deg", 2);
        b.relation("Big", 1);
        b.rule("Link", &["x", "y"]).when("Edge", &["x", "y"]).end();
        b.rule(
            "Deg",
            &[crate::builder::v("x"), crate::builder::count_of("y")],
        )
        .when("Link", &["x", "y"])
        .end();
        b.rule("Big", &["x"])
            .when("Deg", &["x", "c"])
            .gt(crate::builder::v("c"), crate::builder::c(1))
            .end();
        let p = b.build().unwrap();
        let (rewritten, aliases) = eliminate_aliases(&p);
        assert_eq!(aliases.len(), 1);
        assert_eq!(rewritten.aggregates().len(), 1);
        // The constraint survives the round-trip.
        let big = rewritten.relation_by_name("Big").unwrap();
        let big_rule = rewritten.rules_for(big).next().unwrap();
        assert_eq!(big_rule.constraints.len(), 1);
        // The aggregate input rule now reads Edge directly.
        let spec = &rewritten.aggregates()[0];
        let edge = rewritten.relation_by_name("Edge").unwrap();
        let input_rule = rewritten.rules_for(spec.input).next().unwrap();
        assert_eq!(input_rule.body[0].atom.rel, edge);
    }

    #[test]
    fn aggregate_input_copy_rule_is_not_an_alias() {
        // `Deg__agg_input(x, y) :- Edge(x, y).` is shaped like a pure alias,
        // but eliminating it would leave the aggregation with an empty
        // input.
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Deg", 2);
        b.rule(
            "Deg",
            &[crate::builder::v("x"), crate::builder::count_of("y")],
        )
        .when("Edge", &["x", "y"])
        .end();
        let p = b.build().unwrap();
        assert!(find_aliases(&p).is_empty());
        let (rewritten, _) = eliminate_aliases(&p);
        assert_eq!(rewritten.aggregates().len(), 1);
        assert_eq!(rewritten.rules().len(), 1);
    }

    #[test]
    fn index_requests_cover_join_columns() {
        let p = aliased_program();
        let requests = index_requests(&p);
        assert!(!requests.is_empty());
        // Every request is within bounds.
        for (rel, col) in requests {
            assert!(col < p.relation(rel).arity);
        }
    }

    #[test]
    fn composite_requests_need_two_constrained_columns() {
        // Sg(px, py) is probed with both columns bound in the non-linear
        // same-generation rule — the canonical composite-index shape.
        let mut b = ProgramBuilder::new();
        b.relation("Parent", 2);
        b.relation("Sg", 2);
        b.rule("Sg", &["x", "y"])
            .when("Parent", &["p", "x"])
            .when("Parent", &["p", "y"])
            .end();
        b.rule("Sg", &["x", "y"])
            .when("Parent", &["px", "x"])
            .when("Sg", &["px", "py"])
            .when("Parent", &["py", "y"])
            .end();
        let p = b.build().unwrap();
        let requests = composite_index_requests(&p);
        let sg = p.relation_by_name("Sg").unwrap();
        let parent = p.relation_by_name("Parent").unwrap();
        assert!(requests.contains(&(sg, vec![0, 1])));
        assert!(requests.contains(&(parent, vec![0, 1])));
        // Columns are canonical (ascending) and within bounds.
        for (rel, cols) in &requests {
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
            assert!(cols.iter().all(|&c| c < p.relation(*rel).arity));
        }
    }

    #[test]
    fn single_constraint_atoms_request_no_composite() {
        let mut b = ProgramBuilder::new();
        b.relation("Edge", 2);
        b.relation("Out", 1);
        b.rule("Out", &["x"]).when("Edge", &["x", "unused"]).end();
        let p = b.build().unwrap();
        assert!(composite_index_requests(&p).is_empty());
    }
}
