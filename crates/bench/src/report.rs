//! Shared figure reporter.
//!
//! Every figure binary used to hand-roll the same three endings: a
//! plain-text table plus its footnote lines, a JSON artifact written row by
//! row (so a mid-run panic still leaves the finished rows for CI), and the
//! `eprintln!` progress/outcome messages.  This module holds the one copy:
//! [`FigureReport`] accumulates table rows and their JSON twins and renders
//! both with byte-identical text to the old per-binary printers (the golden
//! test below pins the fig11 output), and the `CARAC_TRACE` hook turns any
//! figure run into a chrome-trace + metrics export rendered from the
//! engine's telemetry snapshot.

use std::fmt;
use std::path::PathBuf;

use carac::{EngineConfig, QueryResult, TraceConfig};

use crate::render_table;

/// One JSON field value, formatted exactly as the old hand-rolled writers
/// did: strings quoted, integers plain, seconds with six decimals, ratios
/// (speedups) with three.
#[derive(Debug, Clone)]
pub enum Json {
    /// A string value (quoted; quotes and backslashes escaped).
    Str(String),
    /// An unsigned integer.
    UInt(u64),
    /// A duration, rendered as fractional seconds with six decimals.
    Secs(std::time::Duration),
    /// A dimensionless ratio (speedup), rendered with three decimals.
    Ratio(f64),
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Str(s) => {
                f.write_str("\"")?;
                for c in s.chars() {
                    match c {
                        '"' => f.write_str("\\\"")?,
                        '\\' => f.write_str("\\\\")?,
                        _ => write!(f, "{c}")?,
                    }
                }
                f.write_str("\"")
            }
            Json::UInt(n) => write!(f, "{n}"),
            Json::Secs(d) => write!(f, "{:.6}", d.as_secs_f64()),
            Json::Ratio(r) => write!(f, "{r:.3}"),
        }
    }
}

/// A JSON object row: field names with their values, emitted in order.
pub type JsonRow = Vec<(&'static str, Json)>;

fn json_object(row: &JsonRow) -> String {
    let fields: Vec<String> = row.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", fields.join(", "))
}

/// Renders rows as the body of a JSON array, one object per line at the
/// given indent, with the trailing-comma discipline of the old writers.
pub fn json_rows(rows: &[JsonRow], indent: usize) -> String {
    let pad = " ".repeat(indent);
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!("{pad}{}{comma}\n", json_object(row)));
    }
    out
}

/// Writes a JSON artifact with the figure binaries' shared reporting
/// convention: best-effort write, `[{tag}] wrote {path}` on success and a
/// non-fatal complaint on failure (a missing artifact must not kill a
/// benchmark that already printed its table).
pub fn write_json_artifact(tag: &str, path: &str, body: &str) {
    if let Err(err) = std::fs::write(path, body) {
        eprintln!("[{tag}] could not write {path}: {err}");
    } else {
        eprintln!("[{tag}] wrote {path}");
    }
}

/// Writes a flat JSON array artifact (`[ row, ... ]`) — the shape of the
/// fig11/fig_query/fig_recover artifacts.
pub fn write_json_array(tag: &str, path: &str, rows: &[JsonRow]) {
    let body = format!("[\n{}]\n", json_rows(rows, 2));
    write_json_artifact(tag, path, &body);
}

/// Writes a sectioned JSON object artifact (`{"name": [row, ...], ...}`) —
/// the shape of the fig_lint artifact.
pub fn write_json_sections(tag: &str, path: &str, sections: &[(&str, &[JsonRow])]) {
    let mut body = String::from("{\n");
    for (i, (name, rows)) in sections.iter().enumerate() {
        let comma = if i + 1 < sections.len() { "," } else { "" };
        body.push_str(&format!(
            "  \"{name}\": [\n{}  ]{comma}\n",
            json_rows(rows, 4)
        ));
    }
    body.push_str("}\n");
    write_json_artifact(tag, path, &body);
}

/// A figure's accumulated outcome: one plain-text table (headers + rows +
/// footnote lines) and, optionally, a JSON artifact mirroring the rows.
///
/// The rendered text is byte-identical to what the binaries printed before
/// the reporter existed; `rewrite_json` after every pushed row preserves
/// their crash-resilient artifact discipline.
#[derive(Debug)]
pub struct FigureReport {
    tag: &'static str,
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    json: Vec<JsonRow>,
    notes: Vec<String>,
}

impl FigureReport {
    /// Starts a report for the figure binary `tag` (the `[tag]` of its
    /// progress messages) with the table's title and column headers.
    pub fn new(tag: &'static str, title: impl Into<String>, headers: Vec<String>) -> Self {
        FigureReport {
            tag,
            title: title.into(),
            headers,
            rows: Vec::new(),
            json: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one table row and its JSON twin.
    pub fn push_row(&mut self, cells: Vec<String>, json: JsonRow) {
        self.rows.push(cells);
        if !json.is_empty() {
            self.json.push(json);
        }
    }

    /// Appends a footnote line printed verbatim after the table.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Rewrites the JSON artifact with every row pushed so far, so a later
    /// panic still leaves the finished rows on disk for the CI artifact.
    pub fn rewrite_json(&self, path: &str) {
        write_json_array(self.tag, path, &self.json);
    }

    /// The rendered table plus footnotes — exactly the text `print` emits.
    pub fn render(&self) -> String {
        let mut out = render_table(&self.title, &self.headers, &self.rows);
        out.push('\n');
        for note in &self.notes {
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// Prints the table and footnotes to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// The `CARAC_TRACE` override: when set (and non-empty), every figure
/// binary that goes through [`apply_trace_env`] runs its engines with span
/// tracing on and exports the last traced run's chrome-trace JSON to the
/// given path (plus the flat metrics snapshot next to it, with
/// `.metrics.json` appended).
pub fn trace_env_path() -> Option<PathBuf> {
    match std::env::var("CARAC_TRACE") {
        Ok(path) if !path.is_empty() => Some(PathBuf::from(path)),
        _ => None,
    }
}

/// Enables span tracing on `config` when `CARAC_TRACE` is set; the
/// identity otherwise.
pub fn apply_trace_env(config: EngineConfig) -> EngineConfig {
    if trace_env_path().is_some() {
        config.with_tracing(TraceConfig::default())
    } else {
        config
    }
}

/// Exports a traced run's telemetry to the `CARAC_TRACE` path (chrome
/// trace) and its `.metrics.json` sibling (flat metrics snapshot).  A
/// no-op when the override is unset.  Later calls overwrite earlier ones
/// (atomically), so the artifact always holds the last traced run.
pub fn export_env_trace(tag: &str, result: &QueryResult) {
    let Some(path) = trace_env_path() else {
        return;
    };
    let mut metrics = path.clone().into_os_string();
    metrics.push(".metrics.json");
    let metrics = PathBuf::from(metrics);
    match result
        .write_chrome_trace(&path)
        .and_then(|()| result.write_metrics_snapshot(&metrics))
    {
        Ok(()) => eprintln!(
            "[{tag}] wrote trace {} and metrics {}",
            path.display(),
            metrics.display()
        ),
        Err(err) => eprintln!("[{tag}] could not write trace {}: {err}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// Golden test for the fig11 ending: the reporter must reproduce the
    /// pre-reporter table text and JSON artifact byte for byte.
    #[test]
    fn fig11_table_and_json_are_byte_identical_to_the_hand_rolled_printer() {
        let headers = vec![
            "Workload".to_string(),
            "kernel".to_string(),
            "batches".to_string(),
            "scratch".to_string(),
            "incremental".to_string(),
            "speedup".to_string(),
            "final facts".to_string(),
        ];
        let mut report = FigureReport::new(
            "fig11",
            "Figure 11: incremental maintenance vs from-scratch re-evaluation",
            headers,
        );
        report.push_row(
            vec![
                "TransitiveClosure".to_string(),
                "interpreted".to_string(),
                "8".to_string(),
                crate::fmt_secs(Duration::from_millis(1500)),
                crate::fmt_secs(Duration::from_millis(100)),
                crate::fmt_speedup(15.0),
                "1234".to_string(),
            ],
            vec![
                ("workload", Json::Str("TransitiveClosure".to_string())),
                ("kernel", Json::Str("interpreted".to_string())),
                ("batches", Json::UInt(8)),
                ("max_ops_per_batch", Json::UInt(1)),
                ("scratch_secs", Json::Secs(Duration::from_millis(1500))),
                ("incremental_secs", Json::Secs(Duration::from_millis(100))),
                ("speedup", Json::Ratio(15.0)),
                ("final_facts", Json::UInt(1234)),
            ],
        );
        report.note("(scratch = sum of full re-evaluations after every batch)");

        // The old printer: println!("{}", render_table(..)) then one
        // println! per footnote line.
        let expected_table = concat!(
            "\n== Figure 11: incremental maintenance vs from-scratch re-evaluation ==\n",
            "         Workload       kernel  batches  scratch  incremental  speedup  final facts\n",
            "-----------------------------------------------------------------------------------\n",
            "TransitiveClosure  interpreted        8   1.5000       0.1000   15.00x         1234\n",
            "\n",
            "(scratch = sum of full re-evaluations after every batch)\n",
        );
        assert_eq!(report.render(), expected_table);

        // The old write_json body, including separators and precision.
        let body = format!("[\n{}]\n", json_rows(&report.json, 2));
        assert_eq!(
            body,
            "[\n  {\"workload\": \"TransitiveClosure\", \"kernel\": \"interpreted\", \
             \"batches\": 8, \"max_ops_per_batch\": 1, \"scratch_secs\": 1.500000, \
             \"incremental_secs\": 0.100000, \"speedup\": 15.000, \"final_facts\": 1234}\n]\n"
        );
    }

    #[test]
    fn sectioned_json_matches_the_fig_lint_shape() {
        let lint = vec![vec![
            ("workload", Json::Str("Andersen".to_string())),
            ("errors", Json::UInt(0)),
        ]];
        let prune = vec![vec![
            ("engine", Json::Str("interpreted".to_string())),
            ("speedup", Json::Ratio(1.25)),
        ]];
        let mut body = String::from("{\n");
        body.push_str(&format!("  \"lint\": [\n{}  ],\n", json_rows(&lint, 4)));
        body.push_str(&format!("  \"prune\": [\n{}  ]\n", json_rows(&prune, 4)));
        body.push_str("}\n");
        assert_eq!(
            body,
            "{\n  \"lint\": [\n    {\"workload\": \"Andersen\", \"errors\": 0}\n  ],\n  \
             \"prune\": [\n    {\"engine\": \"interpreted\", \"speedup\": 1.250}\n  ]\n}\n"
        );
    }

    #[test]
    fn json_strings_escape_quotes() {
        assert_eq!(
            Json::Str("a\"b\\c".to_string()).to_string(),
            "\"a\\\"b\\\\c\""
        );
    }
}
