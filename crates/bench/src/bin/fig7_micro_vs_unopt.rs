//! Figure 7 — microbenchmark speedup over the "unoptimized" programs.
//!
//! Same layout as Figure 6 but for the short-running Ackermann, Fibonacci
//! and Primes programs.  The expected shape: speedups are much smaller than
//! for the macrobenchmarks (there is less time to amortize any optimization
//! work) and the cheap backends (IRGenerator, Lambda) fare best.

use carac_analysis::Formulation;
use carac_bench::{figure_micro_workloads, parallel_scaling_table, speedup_figure};

fn main() {
    let workloads = figure_micro_workloads();
    let table = speedup_figure(
        "Figure 7: microbenchmark speedup over the unoptimized interpreted program",
        &workloads,
        Formulation::Unoptimized,
        Formulation::Unoptimized,
        3,
    );
    println!("{table}");
    println!(
        "{}",
        parallel_scaling_table(
            "Figure 7 (threads axis): sharded parallel evaluation",
            &workloads,
            Formulation::HandOptimized,
            3,
        )
    );
}
