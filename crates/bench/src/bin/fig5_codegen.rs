//! Figure 5 — execution time of code generation.
//!
//! Measures how long each backend takes to generate code for subtrees
//! rooted at every IROp granularity of the CSPA plan, for a cold and a warm
//! compiler and for full vs. snippet compilation.  The paper's shape: the
//! quote (staged) backend is the most expensive by a wide margin —
//! especially cold — the bytecode and lambda backends are cheap, snippet
//! compilation is cheaper than full, and cost grows with the size of the
//! compiled subtree (higher granularities sit higher).

use std::time::Duration;

use carac::exec::backends::{compile_artifact, BackendKind, CompileMode, StagingCostModel};
use carac::ir::{generate_plan, EvalStrategy, IRNode, OpKind};
use carac_analysis::Formulation;
use carac_bench::{fmt_secs, render_table, DEFAULT_CSPA_SCALE, HARNESS_SEED};

/// Average code-generation time over `repeats` compilations of `node`.
fn codegen_time(
    node: &IRNode,
    backend: BackendKind,
    mode: CompileMode,
    warm: bool,
    repeats: u32,
) -> Duration {
    let staging = StagingCostModel::default();
    let mut total = Duration::ZERO;
    for _ in 0..repeats {
        let (_, elapsed) = compile_artifact(node, backend, mode, &staging, warm)
            .expect("backend compilation succeeds");
        total += elapsed;
    }
    total / repeats
}

fn main() {
    let workload = carac_analysis::cspa(DEFAULT_CSPA_SCALE, HARNESS_SEED);
    let program = workload.program(Formulation::Unoptimized);
    let plan = generate_plan(program, EvalStrategy::SemiNaive);

    let granularities = [
        OpKind::Program,
        OpKind::Stratum,
        OpKind::DoWhile,
        OpKind::UnionAllRules,
        OpKind::UnionRule,
        OpKind::Spj,
        OpKind::SwapClear,
    ];

    let headers = vec![
        "Granularity".to_string(),
        "Subtree nodes".to_string(),
        "Quotes cold full".to_string(),
        "Quotes warm full".to_string(),
        "Quotes warm snippet".to_string(),
        "Bytecode full".to_string(),
        "Lambda full".to_string(),
        "Lambda snippet".to_string(),
        "IRGen".to_string(),
    ];

    let mut rows = Vec::new();
    for kind in granularities {
        let Some(node_id) = plan.nodes_of_kind(kind).into_iter().next() else {
            continue;
        };
        let node = plan.find(node_id).expect("node exists").clone();
        let row = vec![
            format!("{kind:?}"),
            node.node_count().to_string(),
            fmt_secs(codegen_time(
                &node,
                BackendKind::Quotes,
                CompileMode::Full,
                false,
                3,
            )),
            fmt_secs(codegen_time(
                &node,
                BackendKind::Quotes,
                CompileMode::Full,
                true,
                5,
            )),
            fmt_secs(codegen_time(
                &node,
                BackendKind::Quotes,
                CompileMode::Snippet,
                true,
                5,
            )),
            fmt_secs(codegen_time(
                &node,
                BackendKind::Bytecode,
                CompileMode::Full,
                true,
                20,
            )),
            fmt_secs(codegen_time(
                &node,
                BackendKind::Lambda,
                CompileMode::Full,
                true,
                20,
            )),
            fmt_secs(codegen_time(
                &node,
                BackendKind::Lambda,
                CompileMode::Snippet,
                true,
                20,
            )),
            fmt_secs(codegen_time(
                &node,
                BackendKind::IrGen,
                CompileMode::Full,
                true,
                20,
            )),
        ];
        eprintln!("[fig5] granularity {kind:?} done");
        rows.push(row);
    }

    println!(
        "{}",
        render_table(
            "Figure 5: code-generation time (s) per compilation granularity and backend",
            &headers,
            &rows
        )
    );
    println!("(the Quotes columns include the modeled staging cost; see DESIGN.md)");
}
