//! Figure 9 — microbenchmark speedup (or slowdown) over the hand-optimized
//! programs.
//!
//! The stress case for adaptivity: on programs that are both short-running
//! and already well ordered, any optimization overhead is pure loss.  The
//! paper reports slowdowns down to ~0.1x for the heaviest backend on
//! Ackermann; the cheap backends should stay close to 1x.

use carac_analysis::Formulation;
use carac_bench::{figure_micro_workloads, parallel_scaling_table, speedup_figure};

fn main() {
    let workloads = figure_micro_workloads();
    let table = speedup_figure(
        "Figure 9: microbenchmark speedup over the hand-optimized interpreted program",
        &workloads,
        Formulation::HandOptimized,
        Formulation::HandOptimized,
        3,
    );
    println!("{table}");
    println!(
        "{}",
        parallel_scaling_table(
            "Figure 9 (threads axis): sharded parallel evaluation",
            &workloads,
            Formulation::HandOptimized,
            3,
        )
    );
}
