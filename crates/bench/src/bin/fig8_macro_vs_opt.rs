//! Figure 8 — macrobenchmark speedup (or slowdown) over the hand-optimized
//! programs.
//!
//! Measures how much the JIT helps — or unintentionally hurts — programs
//! whose atom orders are already good, on the macrobenchmarks plus CSDA.
//! The paper's shape: values hover around 1x, the IRGenerator backend wins
//! clearly on CSDA (~6x, repeated build/probe-side swapping with almost no
//! overhead) and no configuration collapses far below 1x.

use carac_analysis::Formulation;
use carac_bench::{figure_csda, figure_macro_workloads, parallel_scaling_table, speedup_figure};

fn main() {
    let mut workloads = figure_macro_workloads();
    workloads.push(figure_csda());
    let table = speedup_figure(
        "Figure 8: macrobenchmark speedup over the hand-optimized interpreted program",
        &workloads,
        Formulation::HandOptimized,
        Formulation::HandOptimized,
        2,
    );
    println!("{table}");
    println!(
        "{}",
        parallel_scaling_table(
            "Figure 8 (threads axis): sharded parallel evaluation",
            &workloads,
            Formulation::HandOptimized,
            2,
        )
    );
}
