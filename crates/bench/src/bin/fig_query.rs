//! Goal-directed queries vs. full fixpoint evaluation.
//!
//! The interactive point-query scenario: a service holds a rule set and
//! answers `Path(src, X)?`-style requests.  Without goal direction every
//! request pays the full fixpoint; with the magic-set rewrite
//! (`Carac::query`) only the demanded cone is derived.  Two workloads over
//! sparse seeded random digraphs:
//!
//! * **transitive closure (point-source)** — right-linear TC, the ideal
//!   magic shape: the demanded cone for `Path(src, X)?` is exactly `src`'s
//!   reach set, against a full closure that sums every node's reach set,
//! * **shortest path (point-source)** — multi-source bounded hop counts
//!   `Reach(src, node, dist)`; the query demands a single source out of
//!   all of them.
//!
//! Both the interpreted engine and the specialized (Lambda) kernels are
//! measured.  Every row asserts bit-identical answers between the
//! goal-directed query and the filtered full fixpoint, and that the query
//! derived strictly fewer facts; at macro scale the single-source TC rows
//! additionally assert the ≥5x wall-clock speedup the figure claims.
//! Results are written as a JSON artifact (default `BENCH_query.json`,
//! override with `CARAC_BENCH_JSON`) for CI to archive.
//! `CARAC_BENCH_SMOKE=1` shrinks the scales so CI finishes in seconds.

use std::time::{Duration, Instant};

use carac::{Carac, EngineConfig, QueryBinding};
use carac_analysis::generators::random_digraph;
use carac_bench::{
    fmt_secs, fmt_speedup, macro_scale, smoke_mode, speedup, FigureReport, Json, HARNESS_SEED,
};
use carac_datalog::{Program, ProgramBuilder};

/// Right-linear transitive closure: with the recursive `Path` atom first,
/// the `bf` demand for `Path(src, X)?` stays `{src}` and the adorned
/// program derives exactly `src`'s reach set.
fn tc_program(edges: &[(u32, u32)]) -> Program {
    let mut b = ProgramBuilder::new();
    b.relation("Edge", 2);
    b.relation("Path", 2);
    b.rule("Path", &["x", "y"]).when("Edge", &["x", "y"]).end();
    b.rule("Path", &["x", "y"])
        .when("Path", &["x", "z"])
        .when("Edge", &["z", "y"])
        .end();
    for &(a, b_) in edges {
        b.fact_ints("Edge", &[a, b_]);
    }
    b.build().expect("tc program validates")
}

/// Multi-source bounded-hop distances `Reach(source, node, dist)`: every
/// node is a source in the full fixpoint, the point query demands one.
fn sp_program(edges: &[(u32, u32)], nodes: u32, max_depth: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.relation("Edge", 2);
    b.relation("Source", 1);
    b.relation("Zero", 1);
    b.relation("Succ", 2);
    b.relation("Reach", 3);
    b.rule("Reach", &["s", "s", "z"])
        .when("Source", &["s"])
        .when("Zero", &["z"])
        .end();
    b.rule("Reach", &["s", "y", "d2"])
        .when("Reach", &["s", "x", "d1"])
        .when("Edge", &["x", "y"])
        .when("Succ", &["d1", "d2"])
        .end();
    for &(a, b_) in edges {
        b.fact_ints("Edge", &[a, b_]);
    }
    for s in 0..nodes {
        b.fact_ints("Source", &[s]);
    }
    b.fact_ints("Zero", &[0]);
    for d in 0..max_depth {
        b.fact_ints("Succ", &[d, d + 1]);
    }
    b.build().expect("shortest-path program validates")
}

struct Outcome {
    workload: &'static str,
    engine: &'static str,
    sources: usize,
    full: Duration,
    full_facts: usize,
    query_mean: Duration,
    query_max_facts: usize,
    speedup: f64,
}

/// Runs the full fixpoint once and one goal-directed query per source,
/// asserting answer equality and the strictly-fewer-facts invariant on
/// every source.
fn measure(
    workload: &'static str,
    engine: &'static str,
    config: EngineConfig,
    program: &Program,
    relation: &str,
    sources: &[u32],
    free_args: usize,
) -> Outcome {
    let engine_handle = Carac::new(program.clone()).with_config(config);
    let full = engine_handle.run().expect("full fixpoint");
    carac_bench::export_env_trace("fig_query", &full);
    let full_time = full.stats().total_time;
    let full_facts = full.total_tuples();

    let mut query_total = Duration::ZERO;
    let mut query_max_facts = 0usize;
    for &src in sources {
        let mut pattern = vec![QueryBinding::bound_int(src)];
        pattern.extend(std::iter::repeat_n(QueryBinding::Free, free_args));
        let started = Instant::now();
        let answer = engine_handle
            .query(relation, &pattern)
            .expect("goal-directed query");
        // The engine's own measured time excludes the rewrite; charge the
        // whole request (rewrite + evaluation + filter) to the query side,
        // which is what an interactive caller pays.
        query_total += started.elapsed();
        assert!(
            !answer.fallback(),
            "{workload}/{engine}: unexpected fallback"
        );
        assert!(
            answer.derived_facts() < full_facts,
            "{workload}/{engine}: query for source {src} derived {} facts, \
             full fixpoint holds {full_facts} — goal direction derived nothing less",
            answer.derived_facts()
        );
        query_max_facts = query_max_facts.max(answer.derived_facts());
        // Bit-identical to filtering the fixpoint.
        let mut expected: Vec<_> = full
            .tuples(relation)
            .expect("answer relation")
            .into_iter()
            .filter(|t| t.get(0) == Some(carac::storage::Value::int(src)))
            .collect();
        let mut got = answer.into_tuples();
        expected.sort();
        got.sort();
        assert_eq!(
            got, expected,
            "{workload}/{engine}: query answers diverged from the filtered fixpoint"
        );
    }
    let query_mean = query_total / sources.len().max(1) as u32;
    Outcome {
        workload,
        engine,
        sources: sources.len(),
        full: full_time,
        full_facts,
        query_mean,
        query_max_facts,
        speedup: speedup(full_time, query_mean),
    }
}

/// The outcome's table row and JSON twin for the shared reporter.
fn report_row(o: &Outcome) -> (Vec<String>, Vec<(&'static str, Json)>) {
    (
        vec![
            o.workload.to_string(),
            o.engine.to_string(),
            o.sources.to_string(),
            fmt_secs(o.full),
            o.full_facts.to_string(),
            fmt_secs(o.query_mean),
            o.query_max_facts.to_string(),
            fmt_speedup(o.speedup),
        ],
        vec![
            ("workload", Json::Str(o.workload.to_string())),
            ("engine", Json::Str(o.engine.to_string())),
            ("sources", Json::UInt(o.sources as u64)),
            ("full_secs", Json::Secs(o.full)),
            ("full_facts", Json::UInt(o.full_facts as u64)),
            ("query_mean_secs", Json::Secs(o.query_mean)),
            ("query_max_facts", Json::UInt(o.query_max_facts as u64)),
            ("speedup", Json::Ratio(o.speedup)),
        ],
    )
}

fn main() {
    let smoke = smoke_mode();
    let scale = macro_scale();
    // Sparse digraphs (≈1.5 arcs per node): reach cones stay a small
    // fraction of the full closure, the regime point queries are for.
    let tc_nodes: u32 = (scale * 4).max(24);
    let tc_base = random_digraph(tc_nodes, tc_nodes as usize * 3 / 2, HARNESS_SEED);
    let tc = tc_program(&tc_base);
    let tc_sources = [0, tc_nodes / 3, tc_nodes - 1];

    let sp_nodes: u32 = (scale * 2).max(16);
    let sp_base = random_digraph(sp_nodes, sp_nodes as usize * 2, HARNESS_SEED + 1);
    let sp = sp_program(&sp_base, sp_nodes, if smoke { 8 } else { 16 });
    let sp_sources = [0, sp_nodes / 2];

    let engines: Vec<(&'static str, EngineConfig)> = vec![
        (
            "interpreted",
            carac_bench::apply_trace_env(EngineConfig::interpreted()),
        ),
        (
            "specialized",
            carac_bench::apply_trace_env(EngineConfig::jit(
                carac::knobs::BackendKind::Lambda,
                false,
            )),
        ),
    ];

    let json_path =
        std::env::var("CARAC_BENCH_JSON").unwrap_or_else(|_| "BENCH_query.json".to_string());
    let mut outcomes: Vec<Outcome> = Vec::new();
    let mut report = FigureReport::new(
        "fig_query",
        "Goal-directed queries (magic sets) vs full fixpoint",
        vec![
            "Workload".to_string(),
            "engine".to_string(),
            "sources".to_string(),
            "full fixpoint".to_string(),
            "full facts".to_string(),
            "query (mean)".to_string(),
            "query facts (max)".to_string(),
            "speedup".to_string(),
        ],
    );
    // Rewrite the JSON after every completed row so a later assertion
    // failure still leaves the finished rows on disk for the CI artifact.
    let push = |outcomes: &mut Vec<Outcome>, report: &mut FigureReport, o: Outcome| {
        let (cells, json) = report_row(&o);
        report.push_row(cells, json);
        report.rewrite_json(&json_path);
        outcomes.push(o);
    };
    for (engine, config) in &engines {
        push(
            &mut outcomes,
            &mut report,
            measure(
                "TransitiveClosure",
                engine,
                *config,
                &tc,
                "Path",
                &tc_sources,
                1,
            ),
        );
        eprintln!("[fig_query] TransitiveClosure/{engine} done");
        push(
            &mut outcomes,
            &mut report,
            measure(
                "ShortestPath",
                engine,
                *config,
                &sp,
                "Reach",
                &sp_sources,
                2,
            ),
        );
        eprintln!("[fig_query] ShortestPath/{engine} done");
    }

    report
        .note("(full fixpoint = one Carac::run deriving every fact; query = Carac::query with the");
    report
        .note(" source bound, mean over the listed sources, including the magic-set rewrite cost.");
    report.note(" Answers are asserted bit-identical to filtering the fixpoint, and every query");
    report.note(" derived strictly fewer facts than the fixpoint holds.)");
    report.print();

    // The headline claim: at macro scale, a single-source TC point query is
    // at least 5x faster than the full fixpoint.  Reduced scales (smoke,
    // CARAC_BENCH_SCALE below default) are dominated by per-run fixed
    // costs, so only the correctness and fewer-facts assertions (inside
    // `measure`) apply there.
    if !smoke && scale >= carac_bench::DEFAULT_MACRO_SCALE {
        for o in outcomes
            .iter()
            .filter(|o| o.workload == "TransitiveClosure")
        {
            assert!(
                o.speedup >= 5.0,
                "goal-directed TC speedup {:.2}x below the 5x bar ({} engine)",
                o.speedup,
                o.engine
            );
        }
    }
}
