//! Figure 10 — ahead-of-time ("macro") and online compilation on the
//! microbenchmarks.
//!
//! Compares, against the interpreted unoptimized baseline:
//!
//! * `JIT-lambda` — purely online optimization (no information before the
//!   query starts),
//! * `Macro Facts+Rules (online)` / `Macro Rules (online)` — the plan is
//!   sorted ahead of time (with or without fact cardinalities) and the
//!   online IRGenerator re-sorting is injected,
//! * `Macro Facts+Rules` / `Macro Rules` — offline sorting only.
//!
//! The paper's shape: everything beats the unoptimized baseline; knowing
//! facts ahead of time usually (not always) helps; combining offline and
//! online optimization is usually the best of the macro variants; JIT-lambda
//! is competitive because it avoids the tree-traversal overhead that the
//! macro variants keep.

use carac::knobs::BackendKind;
use carac::EngineConfig;
use carac_analysis::Formulation;
use carac_bench::{figure_micro_workloads, fmt_speedup, measure, speedup, FigureReport};

fn main() {
    let workloads = figure_micro_workloads();
    let configs: Vec<(&str, EngineConfig)> = vec![
        ("JIT-lambda", EngineConfig::jit(BackendKind::Lambda, false)),
        (
            "Macro Facts+Rules (online)",
            EngineConfig::ahead_of_time(true, true),
        ),
        (
            "Macro Rules (online)",
            EngineConfig::ahead_of_time(false, true),
        ),
        (
            "Macro Facts+Rules",
            EngineConfig::ahead_of_time(true, false),
        ),
        ("Macro Rules", EngineConfig::ahead_of_time(false, false)),
    ];

    let mut headers = vec!["Configuration".to_string()];
    for w in &workloads {
        headers.push(w.name.to_string());
    }

    // Baseline: interpreted unoptimized program (indexed).
    let mut baselines = Vec::new();
    for w in &workloads {
        let (_, t) = measure(w, Formulation::Unoptimized, EngineConfig::interpreted(), 3);
        baselines.push(t);
    }

    let mut report = FigureReport::new(
        "fig10",
        "Figure 10: microbenchmarks — ahead-of-time and online compilation (speedup over unoptimized)",
        headers,
    );
    for (label, config) in configs {
        let mut row = vec![label.to_string()];
        for (w, base) in workloads.iter().zip(&baselines) {
            let (_, t) = measure(w, Formulation::Unoptimized, config, 3);
            row.push(fmt_speedup(speedup(*base, t)));
        }
        eprintln!("[fig10] configuration `{label}` done");
        report.push_row(row, vec![]);
    }
    report.print();
}
