//! Static-analysis lint sweep plus pruned-vs-unpruned fixpoint timing.
//!
//! Two jobs, both feeding the CI gate:
//!
//! * **Lint the shipped workloads** — every figure workload (macro suite,
//!   shortest path, CSDA, micro suite; both formulations) is run through
//!   `carac_datalog::analyze`, asserting **zero error-level diagnostics**:
//!   our own benchmarks must not contain rules our own analyzer convicts.
//! * **Measure pruning** — a CSPA variant with ~30% injected dead,
//!   duplicate and subsumed rules (each semantics-preserving by
//!   construction) is evaluated with and without `EngineConfig::with_prune`
//!   on the interpreter and the specialized kernels; every row asserts
//!   bit-identical output cardinality.
//! * **Measure verification** — clean CSPA with and without
//!   `EngineConfig::with_verify` on the interpreter (plan validation) and
//!   the bytecode JIT (plan validation + bytecode verification at install
//!   time); every row asserts identical output cardinality and that the
//!   verify-on overhead stays under 3% (plus a small absolute epsilon
//!   against timer noise at smoke scales).
//!
//! Results are written as a JSON artifact (default `BENCH_lint.json`,
//! override with `CARAC_BENCH_JSON`) for CI to archive.
//! `CARAC_BENCH_SMOKE=1` shrinks the scales so CI finishes in seconds.

use std::time::Duration;

use carac::{analyze, prune_with, AnalysisOptions, Carac, EngineConfig, Severity};
use carac_analysis::Formulation;
use carac_bench::{
    figure_csda, figure_macro_workloads, figure_micro_workloads, figure_shortest_path, fmt_secs,
    fmt_speedup, render_table, smoke_mode, speedup, write_json_sections, Json, JsonRow,
    HARNESS_SEED,
};
use carac_datalog::ast::Term;
use carac_datalog::builder::{c, v, TermSpec};
use carac_datalog::{Program, ProgramBuilder, Rule};

struct LintRow {
    workload: String,
    formulation: &'static str,
    rules: usize,
    errors: usize,
    warnings: usize,
}

struct PruneRow {
    engine: &'static str,
    rules_total: usize,
    rules_dropped: usize,
    unpruned: Duration,
    pruned: Duration,
    facts: usize,
    speedup: f64,
}

/// Lints one program, asserting the zero-error gate.
fn lint(workload: &str, formulation: &'static str, program: &Program) -> LintRow {
    let analysis = analyze(program);
    for diagnostic in analysis
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
    {
        eprintln!("[fig_lint] {workload}/{formulation}: {diagnostic}");
    }
    assert_eq!(
        analysis.error_count(),
        0,
        "{workload}/{formulation}: shipped workload has error-level diagnostics"
    );
    LintRow {
        workload: workload.to_string(),
        formulation,
        rules: program.rules().len(),
        errors: analysis.error_count(),
        warnings: analysis.warning_count(),
    }
}

/// Reopens a program of plain positive rules (as CSPA is) into a builder,
/// so defective rules can be appended before `build()`.
fn reopen(base: &Program) -> ProgramBuilder {
    let spec = |rule: &Rule, terms: &[Term]| -> Vec<TermSpec> {
        terms
            .iter()
            .map(|t| match t {
                Term::Var(var) => TermSpec::Var(rule.var_names[var.index()].clone()),
                Term::Const(value) => TermSpec::Value(*value),
            })
            .collect()
    };
    let mut b = ProgramBuilder::new();
    for decl in base.relations() {
        b.relation(&decl.name, decl.arity);
    }
    for rule in base.rules() {
        assert!(
            rule.constraints.is_empty() && rule.body.iter().all(|l| !l.negated),
            "reopen handles plain positive rules only"
        );
        let mut rb = b.rule(
            &base.relation(rule.head.rel).name.clone(),
            &spec(rule, &rule.head.terms),
        );
        for literal in &rule.body {
            rb = rb.when(
                &base.relation(literal.atom.rel).name.clone(),
                &spec(rule, &literal.atom.terms),
            );
        }
        rb.end();
    }
    for (rel, tuple) in base.facts() {
        let terms: Vec<TermSpec> = tuple
            .values()
            .iter()
            .map(|&value| TermSpec::Value(value))
            .collect();
        let name = base.relation(*rel).name.clone();
        b.fact(&name, &terms);
    }
    b
}

/// The CSPA hand-optimized program with ~30% extra rules, all convictable:
/// an unsatisfiable `Ghost` feeder, a dead rule reading `Ghost`, a
/// variable-renamed duplicate and a subsumed (strictly narrower) copy.
/// None of them can contribute a fact, so pruned and unpruned runs must
/// derive identical results.
fn defective_cspa(scale: u32) -> Program {
    let clean = carac_analysis::cspa(scale, HARNESS_SEED);
    let base = clean.program(Formulation::HandOptimized);
    let mut b = reopen(base);
    b.relation("Ghost", 2);
    // unsat-rule: no u32 is below 0.
    b.rule("Ghost", &[v("x"), v("y")])
        .when("Assign", &[v("x"), v("y")])
        .lt(v("x"), c(0))
        .end();
    // dead-rule: Ghost is provably empty under any EDB.
    b.rule("VaFlow", &[v("x"), v("y")])
        .when("Ghost", &[v("x"), v("y")])
        .end();
    // duplicate-rule: a renamed copy of `VaFlow(v2, v1) :- Assign(v2, v1).`
    b.rule("VaFlow", &[v("p"), v("q")])
        .when("Assign", &[v("p"), v("q")])
        .end();
    // subsumed-rule: strictly narrower than the same rule.
    b.rule("VaFlow", &[v("p"), v("q")])
        .when("Assign", &[v("p"), v("q")])
        .lt(v("p"), c(1_000_000_000))
        .end();
    b.build().expect("defective CSPA variant validates")
}

/// One pruned-vs-unpruned measurement on `program`.
fn measure_prune(engine: &'static str, config: EngineConfig, program: &Program) -> PruneRow {
    let options = AnalysisOptions::default();
    let rules_dropped = prune_with(program, &options, true).dropped_rules.len();

    let unpruned_run = Carac::new(program.clone())
        .with_config(config)
        .run()
        .expect("unpruned run");
    let pruned_run = Carac::new(program.clone())
        .with_config(config.with_prune())
        .run()
        .expect("pruned run");
    let facts = unpruned_run.count("VaFlow").expect("output relation");
    assert_eq!(
        facts,
        pruned_run.count("VaFlow").expect("output relation"),
        "{engine}: pruning changed the derived fact set"
    );
    let unpruned = unpruned_run.stats().total_time;
    let pruned = pruned_run.stats().total_time;
    PruneRow {
        engine,
        rules_total: program.rules().len(),
        rules_dropped,
        unpruned,
        pruned,
        facts,
        speedup: speedup(unpruned, pruned),
    }
}

struct VerifyRow {
    engine: &'static str,
    off: Duration,
    on: Duration,
    facts: usize,
    overhead: f64,
}

/// Verify-on vs verify-off on the clean CSPA workload.  Best-of-3 per
/// setting damps scheduler noise; the <3% bar gets a 5 ms absolute epsilon
/// so smoke-scale runs (total time in the low milliseconds) cannot fail on
/// timer granularity alone.
fn measure_verify(engine: &'static str, config: EngineConfig, program: &Program) -> VerifyRow {
    let best_of = |config: EngineConfig| -> (Duration, usize) {
        let mut best = Duration::MAX;
        let mut facts = 0;
        for _ in 0..3 {
            let run = Carac::new(program.clone())
                .with_config(config)
                .run()
                .expect("verify-measurement run");
            best = best.min(run.stats().total_time);
            facts = run.count("VaFlow").expect("output relation");
        }
        (best, facts)
    };
    let (off, facts_off) = best_of(config.with_verify(false));
    let (on, facts_on) = best_of(config.with_verify(true));
    assert_eq!(
        facts_off, facts_on,
        "{engine}: verification changed the derived fact set"
    );
    let overhead = (on.as_secs_f64() - off.as_secs_f64()) / off.as_secs_f64();
    assert!(
        on.as_secs_f64() <= off.as_secs_f64() * 1.03 + 0.005,
        "{engine}: verify-on overhead {:.2}% exceeds the 3% budget ({} -> {})",
        overhead * 100.0,
        fmt_secs(off),
        fmt_secs(on)
    );
    VerifyRow {
        engine,
        off,
        on,
        facts: facts_on,
        overhead,
    }
}

/// The three JSON sections for the shared sectioned-artifact writer.
fn lint_json(r: &LintRow) -> JsonRow {
    vec![
        ("workload", Json::Str(r.workload.clone())),
        ("formulation", Json::Str(r.formulation.to_string())),
        ("rules", Json::UInt(r.rules as u64)),
        ("errors", Json::UInt(r.errors as u64)),
        ("warnings", Json::UInt(r.warnings as u64)),
    ]
}

fn prune_json(r: &PruneRow) -> JsonRow {
    vec![
        ("engine", Json::Str(r.engine.to_string())),
        ("rules_total", Json::UInt(r.rules_total as u64)),
        ("rules_dropped", Json::UInt(r.rules_dropped as u64)),
        ("unpruned_secs", Json::Secs(r.unpruned)),
        ("pruned_secs", Json::Secs(r.pruned)),
        ("facts", Json::UInt(r.facts as u64)),
        ("speedup", Json::Ratio(r.speedup)),
    ]
}

fn verify_json(r: &VerifyRow) -> JsonRow {
    vec![
        ("engine", Json::Str(r.engine.to_string())),
        ("verify_off_secs", Json::Secs(r.off)),
        ("verify_on_secs", Json::Secs(r.on)),
        ("facts", Json::UInt(r.facts as u64)),
        ("overhead", Json::Ratio(r.overhead)),
    ]
}

fn write_json(
    path: &str,
    lint_rows: &[LintRow],
    prune_rows: &[PruneRow],
    verify_rows: &[VerifyRow],
) {
    let lint: Vec<JsonRow> = lint_rows.iter().map(lint_json).collect();
    let prune: Vec<JsonRow> = prune_rows.iter().map(prune_json).collect();
    let verify: Vec<JsonRow> = verify_rows.iter().map(verify_json).collect();
    write_json_sections(
        "fig_lint",
        path,
        &[("lint", &lint), ("prune", &prune), ("verify", &verify)],
    );
}

fn main() {
    let json_path =
        std::env::var("CARAC_BENCH_JSON").unwrap_or_else(|_| "BENCH_lint.json".to_string());

    // ── 1. Lint every shipped figure workload ──────────────────────────
    let mut workloads = figure_macro_workloads();
    workloads.push(figure_shortest_path());
    workloads.push(figure_csda());
    workloads.extend(figure_micro_workloads());
    let mut lint_rows = Vec::new();
    for w in &workloads {
        for (formulation, label) in [
            (Formulation::HandOptimized, "optimized"),
            (Formulation::Unoptimized, "unoptimized"),
        ] {
            lint_rows.push(lint(w.name, label, w.program(formulation)));
        }
    }
    write_json(&json_path, &lint_rows, &[], &[]);
    eprintln!(
        "[fig_lint] {} workload programs linted, zero error-level diagnostics",
        lint_rows.len()
    );

    // ── 2. Pruned vs unpruned on the defective CSPA variant ────────────
    let scale = if smoke_mode() { 24 } else { 56 };
    let defective = defective_cspa(scale);
    let mut prune_rows = Vec::new();
    for (engine, config) in [
        ("interpreted", EngineConfig::interpreted()),
        (
            "specialized",
            EngineConfig::jit(carac::knobs::BackendKind::Lambda, false),
        ),
    ] {
        prune_rows.push(measure_prune(engine, config, &defective));
        write_json(&json_path, &lint_rows, &prune_rows, &[]);
        eprintln!("[fig_lint] prune/{engine} done");
    }

    // ── 3. Verify-on vs verify-off on clean CSPA ───────────────────────
    let clean = carac_analysis::cspa(scale, HARNESS_SEED);
    let clean_program = clean.program(Formulation::HandOptimized);
    let mut verify_rows = Vec::new();
    for (engine, config) in [
        ("interpreted", EngineConfig::interpreted()),
        (
            "bytecode-jit",
            EngineConfig::jit(carac::knobs::BackendKind::Bytecode, false),
        ),
    ] {
        verify_rows.push(measure_verify(engine, config, clean_program));
        write_json(&json_path, &lint_rows, &prune_rows, &verify_rows);
        eprintln!("[fig_lint] verify/{engine} done");
    }

    // ── 4. Render ──────────────────────────────────────────────────────
    let lint_table: Vec<Vec<String>> = lint_rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.formulation.to_string(),
                r.rules.to_string(),
                r.errors.to_string(),
                r.warnings.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Analyzer over the shipped figure workloads",
            &[
                "Workload".to_string(),
                "formulation".to_string(),
                "rules".to_string(),
                "errors".to_string(),
                "warnings".to_string(),
            ],
            &lint_table
        )
    );
    let prune_table: Vec<Vec<String>> = prune_rows
        .iter()
        .map(|r| {
            vec![
                r.engine.to_string(),
                format!("{} (-{})", r.rules_total, r.rules_dropped),
                fmt_secs(r.unpruned),
                fmt_secs(r.pruned),
                r.facts.to_string(),
                fmt_speedup(r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "CSPA + ~30% injected dead/duplicate/subsumed rules: pruned vs unpruned",
            &[
                "engine".to_string(),
                "rules (dropped)".to_string(),
                "unpruned".to_string(),
                "pruned".to_string(),
                "VaFlow facts".to_string(),
                "speedup".to_string(),
            ],
            &prune_table
        )
    );
    let verify_table: Vec<Vec<String>> = verify_rows
        .iter()
        .map(|r| {
            vec![
                r.engine.to_string(),
                fmt_secs(r.off),
                fmt_secs(r.on),
                r.facts.to_string(),
                format!("{:+.2}%", r.overhead * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Clean CSPA: artifact verification off vs on",
            &[
                "engine".to_string(),
                "verify off".to_string(),
                "verify on".to_string(),
                "VaFlow facts".to_string(),
                "overhead".to_string(),
            ],
            &verify_table
        )
    );
    println!("(every row asserts bit-identical output cardinality with and without pruning,");
    println!(" identical results with and without verification at <3% overhead, and the lint");
    println!(" sweep asserts zero error-level diagnostics on our own benchmarks.)");
}
