//! Table II — comparison with the state of the art.
//!
//! Reproduces the paper's Table II on the InvFuns, CSDA and CSPA workloads:
//! the DLX-like static engine, the Soufflé-like engine in interpreter,
//! compiler and auto-tuned modes, and Carac's JIT.  The Soufflé-like
//! compiled modes pay a modeled toolchain-invocation cost (see DESIGN.md);
//! the expected shape is that Carac wins clearly on the short InvFuns query
//! (where the AOT toolchain cost dominates) while the AOT engine closes the
//! gap — and can win — on the long-running closure-heavy workloads.

use std::time::Duration;

use carac::knobs::BackendKind;
use carac::EngineConfig;
use carac_analysis::Formulation;
use carac_baselines::{DlxConfig, DlxLike, SouffleConfig, SouffleLike, SouffleMode};
use carac_bench::{figure_csda, figure_macro_workloads, fmt_secs, render_table};

fn main() {
    let macro_workloads = figure_macro_workloads();
    let invfuns = macro_workloads
        .iter()
        .find(|w| w.name == "InvFuns")
        .expect("InvFuns workload present")
        .clone();
    let cspa = macro_workloads
        .iter()
        .find(|w| w.name == "CSPA")
        .expect("CSPA workload present")
        .clone();
    let csda = figure_csda();

    let toolchain_cost = Duration::from_millis(
        std::env::var("CARAC_TOOLCHAIN_COST_MS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(400),
    );

    let headers = vec![
        "Benchmark".to_string(),
        "DLX".to_string(),
        "Souffle Interp".to_string(),
        "Souffle Compile".to_string(),
        "Souffle AutoTuned".to_string(),
        "Carac JIT".to_string(),
        "|output|".to_string(),
    ];
    let mut rows = Vec::new();

    for workload in [&invfuns, &csda, &cspa] {
        // All baselines consume the hand-optimized formulation — external
        // engines receive the program as its author wrote it.
        let program = workload.program(Formulation::HandOptimized).clone();
        let mut row = vec![workload.name.to_string()];
        let mut counts = Vec::new();

        let dlx = DlxLike::new(program.clone(), DlxConfig::default())
            .run(workload.output_relation)
            .expect("DLX run");
        row.push(fmt_secs(dlx.time));
        counts.push(dlx.output_count);

        for mode in [
            SouffleMode::Interpreter,
            SouffleMode::Compiler,
            SouffleMode::AutoTuned,
        ] {
            let run = SouffleLike::new(
                program.clone(),
                SouffleConfig {
                    mode,
                    toolchain_cost,
                    ..SouffleConfig::default()
                },
            )
            .run(workload.output_relation)
            .expect("Souffle-like run");
            row.push(fmt_secs(run.time));
            counts.push(run.output_count);
        }

        let (count, time) = carac_bench::measure(
            workload,
            Formulation::HandOptimized,
            EngineConfig::jit(BackendKind::Lambda, false),
            2,
        );
        row.push(fmt_secs(time));
        counts.push(count);

        assert!(
            counts.iter().all(|&c| c == counts[0]),
            "{}: engines disagree on the result size: {counts:?}",
            workload.name
        );
        row.push(counts[0].to_string());
        rows.push(row);
        eprintln!("[table2] finished {}", workload.name);
    }

    println!(
        "{}",
        render_table(
            "Table II: average execution time (s) of DLX-like, Souffle-like and Carac",
            &headers,
            &rows
        )
    );
    println!(
        "(Souffle-like compiled modes include a modeled toolchain cost of {} ms; \
         set CARAC_TOOLCHAIN_COST_MS to change it.)",
        toolchain_cost.as_millis()
    );
}
