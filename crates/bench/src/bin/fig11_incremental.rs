//! Figure 11 — incremental maintenance vs. from-scratch re-evaluation.
//!
//! Streams edge insert/retract batches into a live engine session
//! (`Carac::apply_update`: counted semi-naive for non-recursive strata,
//! delete/re-derive for recursive ones) and compares the total maintenance
//! time against re-evaluating every post-batch database from scratch.  Two
//! workloads:
//!
//! * **transitive closure** — one recursive stratum, the pure DRed +
//!   insert-propagation path, driven with single-edge deltas (the
//!   latency-critical streaming shape),
//! * **shortest path** — bounded reachability (recursive) feeding a `min`
//!   aggregate (stratum recompute) and a `<`-constrained selection, with
//!   small mixed batches.
//!
//! Both the interpreted and the specialized update kernels are measured.
//! Final fact sets are asserted identical to the scratch runs — the table
//! certifies correctness as well as speedup.  Results are also written as a
//! JSON artifact (default `BENCH_incremental.json`, override with
//! `CARAC_BENCH_JSON`) for CI to archive.  `CARAC_BENCH_SMOKE=1` shrinks
//! the scales so CI finishes in seconds.

use std::time::{Duration, Instant};

use carac::{Carac, EngineConfig};
use carac_analysis::generators::{edge_update_stream, random_digraph, UpdateStreamBatch};
use carac_bench::{
    fmt_secs, fmt_speedup, macro_scale, smoke_mode, speedup, FigureReport, Json, HARNESS_SEED,
};
use carac_datalog::{builder, Program, ProgramBuilder};

/// Builds the transitive-closure program over an explicit edge list.
fn tc_program(edges: &[(u32, u32)]) -> Program {
    let mut b = ProgramBuilder::new();
    b.relation("Edge", 2);
    b.relation("Path", 2);
    b.rule("Path", &["x", "y"]).when("Edge", &["x", "y"]).end();
    b.rule("Path", &["x", "y"])
        .when("Edge", &["x", "z"])
        .when("Path", &["z", "y"])
        .end();
    for &(a, b_) in edges {
        b.fact_ints("Edge", &[a, b_]);
    }
    b.build().expect("tc program validates")
}

/// Builds the hop-count shortest-path program (min aggregate + constraint)
/// over an explicit edge list.
fn sp_program(edges: &[(u32, u32)], max_depth: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.relation("Edge", 2);
    b.relation("Source", 1);
    b.relation("Zero", 1);
    b.relation("Succ", 2);
    b.relation("Reach", 2);
    b.relation("Dist", 2);
    b.relation("Near", 1);
    b.rule("Reach", &["y", "d"])
        .when("Source", &["y"])
        .when("Zero", &["d"])
        .end();
    b.rule("Reach", &["y", "d2"])
        .when("Reach", &["x", "d1"])
        .when("Edge", &["x", "y"])
        .when("Succ", &["d1", "d2"])
        .end();
    b.rule("Dist", &[builder::v("y"), builder::min_of("d")])
        .when("Reach", &["y", "d"])
        .end();
    b.rule("Near", &["y"])
        .when("Dist", &["y", "d"])
        .lt(builder::v("d"), builder::c((max_depth / 2).max(1)))
        .end();
    for &(a, b_) in edges {
        b.fact_ints("Edge", &[a, b_]);
    }
    b.fact_ints("Source", &[0]);
    b.fact_ints("Zero", &[0]);
    for d in 0..max_depth {
        b.fact_ints("Succ", &[d, d + 1]);
    }
    b.build().expect("shortest-path program validates")
}

/// Builder of a workload program from an explicit edge list.
type ProgramBuilderFn<'a> = &'a dyn Fn(&[(u32, u32)]) -> Program;

struct Outcome {
    workload: &'static str,
    kernel: &'static str,
    batches: usize,
    ops_per_batch: usize,
    scratch: Duration,
    incremental: Duration,
    speedup: f64,
    final_facts: usize,
}

/// Runs one workload/kernel combination through the stream, returning the
/// scratch-vs-incremental comparison.  Panics if the incremental session
/// ever diverges from the scratch fact set.
#[allow(clippy::too_many_arguments)]
fn measure(
    workload: &'static str,
    kernel: &'static str,
    config: EngineConfig,
    build: ProgramBuilderFn,
    output: &str,
    base: &[(u32, u32)],
    stream: &[UpdateStreamBatch],
) -> Outcome {
    // Incremental: one live session maintained across the stream (initial
    // evaluation excluded — it is identical work for both sides).
    let mut engine = Carac::new(build(base)).with_config(config);
    engine.run_live().expect("initial evaluation");
    let started = Instant::now();
    for batch in stream {
        engine
            .apply_edge_updates("Edge", &batch.inserts, &batch.retracts)
            .expect("update batch applies");
    }
    let incremental = started.elapsed();
    let mut incremental_tuples = engine.live_tuples(output).expect("output relation");
    incremental_tuples.sort();

    // Scratch: re-evaluate the full program after every batch.  Only the
    // engine's measured execution time counts (program construction and
    // fact loading are excluded, which favors the scratch side).
    let mut live: Vec<(u32, u32)> = base.to_vec();
    live.sort();
    live.dedup();
    let mut scratch = Duration::ZERO;
    let mut scratch_result = None;
    for batch in stream {
        for e in &batch.retracts {
            if let Some(pos) = live.iter().position(|x| x == e) {
                live.remove(pos);
            }
        }
        live.extend(batch.inserts.iter().copied());
        let result = Carac::new(build(&live))
            .with_config(config)
            .run()
            .expect("scratch run");
        scratch += result.stats().total_time;
        scratch_result = Some(result);
    }
    let scratch_result = scratch_result.expect("at least one batch");
    carac_bench::export_env_trace("fig11", &scratch_result);
    let mut scratch_tuples = scratch_result.tuples(output).expect("output relation");
    scratch_tuples.sort();
    assert_eq!(
        incremental_tuples, scratch_tuples,
        "{workload}/{kernel}: incremental maintenance diverged from scratch evaluation"
    );

    Outcome {
        workload,
        kernel,
        batches: stream.len(),
        ops_per_batch: stream
            .iter()
            .map(|b| b.inserts.len() + b.retracts.len())
            .max()
            .unwrap_or(0),
        scratch,
        incremental,
        speedup: speedup(scratch, incremental),
        final_facts: scratch_tuples.len(),
    }
}

/// The outcome's table row and JSON twin for the shared reporter.
fn report_row(o: &Outcome) -> (Vec<String>, Vec<(&'static str, Json)>) {
    (
        vec![
            o.workload.to_string(),
            o.kernel.to_string(),
            o.batches.to_string(),
            fmt_secs(o.scratch),
            fmt_secs(o.incremental),
            fmt_speedup(o.speedup),
            o.final_facts.to_string(),
        ],
        vec![
            ("workload", Json::Str(o.workload.to_string())),
            ("kernel", Json::Str(o.kernel.to_string())),
            ("batches", Json::UInt(o.batches as u64)),
            ("max_ops_per_batch", Json::UInt(o.ops_per_batch as u64)),
            ("scratch_secs", Json::Secs(o.scratch)),
            ("incremental_secs", Json::Secs(o.incremental)),
            ("speedup", Json::Ratio(o.speedup)),
            ("final_facts", Json::UInt(o.final_facts as u64)),
        ],
    )
}

fn main() {
    let smoke = smoke_mode();
    let scale = macro_scale();
    // Sparse random digraphs (≈1.5 arcs per node): the closure is still tens
    // of thousands of facts at macro scale, but reach sets — and therefore
    // deletion cones — stay bounded, which is the regime delete/re-derive
    // is designed for.  (On near-complete SCCs a single deletion's
    // over-delete cone approaches the whole closure and DRed degenerates to
    // scratch cost; that known worst case is documented in
    // ARCHITECTURE.md.)  `FIG11_NODES` / `FIG11_EDGES` override the shape.
    let tc_nodes: u32 = std::env::var("FIG11_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or((scale * 4).max(16));
    let tc_edges: usize = std::env::var("FIG11_EDGES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(tc_nodes as usize * 3 / 2);
    let tc_base = random_digraph(tc_nodes, tc_edges, HARNESS_SEED);
    // Single-edge deltas: the latency-critical streaming shape the
    // acceptance criterion measures.
    let tc_batches = if smoke { 2 } else { 8 };
    let tc_stream = edge_update_stream(&tc_base, tc_nodes, tc_batches, 1, HARNESS_SEED + 1);

    let sp_nodes = (scale * 4).max(16);
    let sp_depth = 48;
    let sp_base = random_digraph(sp_nodes, sp_nodes as usize * 2, HARNESS_SEED + 2);
    let sp_batches = if smoke { 2 } else { 6 };
    let sp_stream = edge_update_stream(&sp_base, sp_nodes, sp_batches, 4, HARNESS_SEED + 3);
    // Insert-only variant of the same stream: the streaming-growth shape
    // where maintenance never pays a deletion cone.
    let sp_grow: Vec<UpdateStreamBatch> = sp_stream
        .iter()
        .map(|b| UpdateStreamBatch {
            inserts: b.inserts.clone(),
            retracts: Vec::new(),
        })
        .collect();

    let sp_build = move |edges: &[(u32, u32)]| sp_program(edges, sp_depth);
    let kernels: Vec<(&'static str, EngineConfig)> = vec![
        (
            "interpreted",
            carac_bench::apply_trace_env(EngineConfig::interpreted()),
        ),
        (
            "specialized",
            carac_bench::apply_trace_env(EngineConfig::jit(
                carac::knobs::BackendKind::Lambda,
                false,
            )),
        ),
    ];

    let json_path =
        std::env::var("CARAC_BENCH_JSON").unwrap_or_else(|_| "BENCH_incremental.json".to_string());
    let mut outcomes = Vec::new();
    let mut report = FigureReport::new(
        "fig11",
        "Figure 11: incremental maintenance vs from-scratch re-evaluation",
        vec![
            "Workload".to_string(),
            "kernel".to_string(),
            "batches".to_string(),
            "scratch".to_string(),
            "incremental".to_string(),
            "speedup".to_string(),
            "final facts".to_string(),
        ],
    );
    // The JSON is rewritten after every completed row, so a later
    // divergence panic still leaves the finished rows on disk for the CI
    // artifact.
    let push = |outcomes: &mut Vec<Outcome>, report: &mut FigureReport, o: Outcome| {
        let (cells, json) = report_row(&o);
        report.push_row(cells, json);
        report.rewrite_json(&json_path);
        outcomes.push(o);
    };
    for (kernel, config) in &kernels {
        push(
            &mut outcomes,
            &mut report,
            measure(
                "TransitiveClosure",
                kernel,
                *config,
                &tc_program,
                "Path",
                &tc_base,
                &tc_stream,
            ),
        );
        eprintln!("[fig11] TransitiveClosure/{kernel} done");
        push(
            &mut outcomes,
            &mut report,
            measure(
                "ShortestPath (mixed)",
                kernel,
                *config,
                &sp_build,
                "Dist",
                &sp_base,
                &sp_stream,
            ),
        );
        eprintln!("[fig11] ShortestPath (mixed)/{kernel} done");
        push(
            &mut outcomes,
            &mut report,
            measure(
                "ShortestPath (grow)",
                kernel,
                *config,
                &sp_build,
                "Dist",
                &sp_base,
                &sp_grow,
            ),
        );
        eprintln!("[fig11] ShortestPath (grow)/{kernel} done");
    }

    report.note("(scratch = sum of full re-evaluations after every batch; incremental = the live");
    report.note(" session's apply_update total; fact sets are asserted identical on every row.");
    report.note(" ShortestPath mixed batches pay the DRed deletion cone across the depth-indexed");
    report.note(" Reach relation plus a per-batch aggregate-stratum recompute, so deletions there");
    report
        .note(" approach scratch cost by design; the insert-only stream shows the growth shape.)");
    report.print();

    // The headline claim of the figure: at macro scale, single-edge deltas
    // on transitive closure are maintained at least 5x faster than scratch
    // re-evaluation.  Reduced scales (smoke, CARAC_BENCH_SCALE below the
    // default) are too small for stable ratios — per-batch fixed costs
    // dominate — so only correctness is asserted there (inside `measure`).
    if !smoke && scale >= carac_bench::DEFAULT_MACRO_SCALE {
        for o in outcomes
            .iter()
            .filter(|o| o.workload == "TransitiveClosure")
        {
            assert!(
                o.speedup >= 5.0,
                "incremental TC speedup {:.2}x below the 5x bar ({} kernel)",
                o.speedup,
                o.kernel
            );
        }
    }
}
