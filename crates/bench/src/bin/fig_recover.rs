//! Recovery figure — cold re-derivation vs. restore-and-replay.
//!
//! Simulates a crash of a long-lived session: an engine evaluates a
//! workload, takes a checkpoint, journals a stream of update batches, and
//! dies.  Two ways to get the session back:
//!
//! * **cold start** — rebuild from the source facts: full semi-naive
//!   re-derivation, then re-apply every lost batch,
//! * **restore + replay** — `Carac::recover`: install the checkpoint
//!   (derived tuples *and* support counts, no re-derivation) and replay
//!   only the journal suffix through the incremental path.
//!
//! Both sides are asserted to land on identical fact sets, so the table
//! certifies crash-consistency as well as restart latency.  Two workloads:
//! transitive closure (pure recursion) and hop-count shortest path
//! (recursion feeding a `min` aggregate, whose stratum is recomputed during
//! replay).  Results are written as a JSON artifact (default
//! `BENCH_recover.json`, override with `CARAC_BENCH_JSON`) for CI to
//! archive.  `CARAC_BENCH_SMOKE=1` shrinks the scales so CI finishes in
//! seconds.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use carac::{Carac, EngineConfig};
use carac_analysis::generators::{edge_update_stream, random_digraph, UpdateStreamBatch};
use carac_bench::{
    fmt_secs, fmt_speedup, macro_scale, smoke_mode, speedup, FigureReport, Json, HARNESS_SEED,
};
use carac_datalog::{builder, Program, ProgramBuilder};

/// Builds the transitive-closure program over an explicit edge list.
fn tc_program(edges: &[(u32, u32)]) -> Program {
    let mut b = ProgramBuilder::new();
    b.relation("Edge", 2);
    b.relation("Path", 2);
    b.rule("Path", &["x", "y"]).when("Edge", &["x", "y"]).end();
    b.rule("Path", &["x", "y"])
        .when("Edge", &["x", "z"])
        .when("Path", &["z", "y"])
        .end();
    for &(a, b_) in edges {
        b.fact_ints("Edge", &[a, b_]);
    }
    b.build().expect("tc program validates")
}

/// Builds the hop-count shortest-path program (min aggregate) over an
/// explicit edge list.
fn sp_program(edges: &[(u32, u32)], max_depth: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.relation("Edge", 2);
    b.relation("Source", 1);
    b.relation("Zero", 1);
    b.relation("Succ", 2);
    b.relation("Reach", 2);
    b.relation("Dist", 2);
    b.rule("Reach", &["y", "d"])
        .when("Source", &["y"])
        .when("Zero", &["d"])
        .end();
    b.rule("Reach", &["y", "d2"])
        .when("Reach", &["x", "d1"])
        .when("Edge", &["x", "y"])
        .when("Succ", &["d1", "d2"])
        .end();
    b.rule("Dist", &[builder::v("y"), builder::min_of("d")])
        .when("Reach", &["y", "d"])
        .end();
    for &(a, b_) in edges {
        b.fact_ints("Edge", &[a, b_]);
    }
    b.fact_ints("Source", &[0]);
    b.fact_ints("Zero", &[0]);
    for d in 0..max_depth {
        b.fact_ints("Succ", &[d, d + 1]);
    }
    b.build().expect("shortest-path program validates")
}

/// Builder of a workload program from an explicit edge list.
type ProgramBuilderFn<'a> = &'a dyn Fn(&[(u32, u32)]) -> Program;

struct Outcome {
    workload: &'static str,
    kernel: &'static str,
    batches: usize,
    cold: Duration,
    recover: Duration,
    speedup: f64,
    checkpoint: Duration,
    snapshot_bytes: u64,
    journal_bytes: u64,
    final_facts: usize,
}

fn temp_file(tag: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("carac-fig-recover-{}-{tag}", std::process::id()));
    path
}

/// Runs one workload/kernel combination through crash + both restart paths.
/// Panics if either restart diverges from the pre-crash session.
fn measure(
    workload: &'static str,
    kernel: &'static str,
    config: EngineConfig,
    build: ProgramBuilderFn,
    output: &str,
    base: &[(u32, u32)],
    stream: &[UpdateStreamBatch],
) -> Outcome {
    let snap = temp_file(&format!("{workload}-{kernel}-snap"));
    let wal = temp_file(&format!("{workload}-{kernel}-wal"));

    // The durable session: evaluate, checkpoint, journal the stream, crash.
    let mut durable = Carac::new(build(base)).with_config(config);
    durable.run_live().expect("initial evaluation");
    let started = Instant::now();
    durable.checkpoint(&snap).expect("checkpoint");
    let checkpoint = started.elapsed();
    durable.journal_to(&wal).expect("journal attach");
    for batch in stream {
        durable
            .apply_edge_updates("Edge", &batch.inserts, &batch.retracts)
            .expect("journaled update applies");
    }
    let mut expected = durable.live_tuples(output).expect("output relation");
    expected.sort();
    drop(durable); // the crash: no shutdown courtesy

    // Cold start: full re-derivation from source facts, then re-apply every
    // lost batch (the batches themselves must be re-obtained from the
    // client in this scenario; their apply cost is charged all the same).
    let mut cold_engine = Carac::new(build(base)).with_config(config);
    let started = Instant::now();
    cold_engine.run_live().expect("cold re-derivation");
    for batch in stream {
        cold_engine
            .apply_edge_updates("Edge", &batch.inserts, &batch.retracts)
            .expect("cold re-apply");
    }
    let cold = started.elapsed();
    let mut cold_tuples = cold_engine.live_tuples(output).expect("output relation");
    cold_tuples.sort();
    assert_eq!(
        cold_tuples, expected,
        "{workload}/{kernel}: cold restart diverged from the crashed session"
    );

    // Restore + replay: install the checkpoint, replay the journal suffix.
    let mut warm = Carac::new(build(base)).with_config(config);
    let started = Instant::now();
    let report = warm.recover(&snap, &wal).expect("recover");
    let recover = started.elapsed();
    assert_eq!(report.replayed, stream.len() as u64);
    assert!(!report.torn_tail);
    let mut warm_tuples = warm.live_tuples(output).expect("output relation");
    warm_tuples.sort();
    assert_eq!(
        warm_tuples, expected,
        "{workload}/{kernel}: restore-and-replay diverged from the crashed session"
    );

    let file_len = |p: &PathBuf| std::fs::metadata(p).map_or(0, |m| m.len());
    let outcome = Outcome {
        workload,
        kernel,
        batches: stream.len(),
        cold,
        recover,
        speedup: speedup(cold, recover),
        checkpoint,
        snapshot_bytes: file_len(&snap),
        journal_bytes: file_len(&wal),
        final_facts: expected.len(),
    };
    let _ = std::fs::remove_file(&snap);
    let _ = std::fs::remove_file(&wal);
    outcome
}

/// The outcome's table row and JSON twin for the shared reporter.
fn report_row(o: &Outcome) -> (Vec<String>, Vec<(&'static str, Json)>) {
    (
        vec![
            o.workload.to_string(),
            o.kernel.to_string(),
            o.batches.to_string(),
            fmt_secs(o.cold),
            fmt_secs(o.recover),
            fmt_speedup(o.speedup),
            fmt_secs(o.checkpoint),
            format!("{} KiB", o.snapshot_bytes / 1024),
            o.final_facts.to_string(),
        ],
        vec![
            ("workload", Json::Str(o.workload.to_string())),
            ("kernel", Json::Str(o.kernel.to_string())),
            ("batches", Json::UInt(o.batches as u64)),
            ("cold_secs", Json::Secs(o.cold)),
            ("recover_secs", Json::Secs(o.recover)),
            ("speedup", Json::Ratio(o.speedup)),
            ("checkpoint_secs", Json::Secs(o.checkpoint)),
            ("snapshot_bytes", Json::UInt(o.snapshot_bytes)),
            ("journal_bytes", Json::UInt(o.journal_bytes)),
            ("final_facts", Json::UInt(o.final_facts as u64)),
        ],
    )
}

fn main() {
    let smoke = smoke_mode();
    let scale = macro_scale();
    // Same sparse-digraph shape as fig11: the closure is large enough at
    // macro scale that re-deriving it dominates a cold restart.
    let tc_nodes = (scale * 4).max(16);
    let tc_base = random_digraph(tc_nodes, tc_nodes as usize * 3 / 2, HARNESS_SEED);
    let tc_batches = if smoke { 2 } else { 6 };
    let tc_stream = edge_update_stream(&tc_base, tc_nodes, tc_batches, 1, HARNESS_SEED + 1);

    let sp_nodes = (scale * 4).max(16);
    let sp_depth = 48;
    let sp_base = random_digraph(sp_nodes, sp_nodes as usize * 2, HARNESS_SEED + 2);
    let sp_batches = if smoke { 2 } else { 4 };
    let sp_stream = edge_update_stream(&sp_base, sp_nodes, sp_batches, 2, HARNESS_SEED + 3);

    let sp_build = move |edges: &[(u32, u32)]| sp_program(edges, sp_depth);
    let kernels: Vec<(&'static str, EngineConfig)> = vec![
        (
            "interpreted",
            carac_bench::apply_trace_env(EngineConfig::interpreted()),
        ),
        (
            "specialized",
            carac_bench::apply_trace_env(EngineConfig::jit(
                carac::knobs::BackendKind::Lambda,
                false,
            )),
        ),
    ];

    let json_path =
        std::env::var("CARAC_BENCH_JSON").unwrap_or_else(|_| "BENCH_recover.json".to_string());
    let mut outcomes = Vec::new();
    let mut report = FigureReport::new(
        "fig_recover",
        "Recovery: cold re-derivation vs restore-and-replay after a crash",
        vec![
            "Workload".to_string(),
            "kernel".to_string(),
            "batches".to_string(),
            "cold".to_string(),
            "recover".to_string(),
            "speedup".to_string(),
            "checkpoint".to_string(),
            "snapshot".to_string(),
            "final facts".to_string(),
        ],
    );
    // The JSON is rewritten after every completed row, so a later
    // divergence panic still leaves the finished rows on disk for the CI
    // artifact.
    let push = |outcomes: &mut Vec<Outcome>, report: &mut FigureReport, o: Outcome| {
        let (cells, json) = report_row(&o);
        report.push_row(cells, json);
        report.rewrite_json(&json_path);
        outcomes.push(o);
    };
    for (kernel, config) in &kernels {
        push(
            &mut outcomes,
            &mut report,
            measure(
                "TransitiveClosure",
                kernel,
                *config,
                &tc_program,
                "Path",
                &tc_base,
                &tc_stream,
            ),
        );
        eprintln!("[fig_recover] TransitiveClosure/{kernel} done");
        push(
            &mut outcomes,
            &mut report,
            measure(
                "ShortestPath",
                kernel,
                *config,
                &sp_build,
                "Dist",
                &sp_base,
                &sp_stream,
            ),
        );
        eprintln!("[fig_recover] ShortestPath/{kernel} done");
    }

    report.note("(cold = full semi-naive re-derivation plus re-applying every lost batch;");
    report.note(" recover = read checkpoint + journal, install derived state and support counts,");
    report.note(" replay the journal suffix incrementally.  Fact sets are asserted identical on");
    report.note(" every row, so the speedup column is certified crash-consistent.)");
    report.print();

    // The headline claim: at macro scale, restoring a checkpoint and
    // replaying the journal suffix beats re-deriving the database from
    // scratch.  The bar is asserted on transitive closure, where restart
    // cost is derivation-dominated; the aggregate workload's restarts are
    // dominated by the per-batch stratum recompute both sides pay equally,
    // so its ratio hovers near 1x and is reported without a bar.  Reduced
    // scales (smoke, CARAC_BENCH_SCALE below the default) are too small for
    // stable ratios — fixed per-restart costs dominate — so only
    // correctness is asserted there (inside `measure`).
    if !smoke && scale >= carac_bench::DEFAULT_MACRO_SCALE {
        for o in outcomes
            .iter()
            .filter(|o| o.workload == "TransitiveClosure")
        {
            assert!(
                o.speedup >= 1.5,
                "{}/{}: restore-and-replay speedup {:.2}x below the 1.5x bar",
                o.workload,
                o.kernel,
                o.speedup
            );
        }
    }
}
