//! Figure 6 — macrobenchmark speedup over the "unoptimized" programs.
//!
//! For Andersen's points-to, the inverse-functions analysis and the CSPA
//! sample, reports the speedup of the hand-optimized interpreter and of the
//! six JIT configurations over the interpreted unoptimized program, with
//! indexes on and off.  The paper's headline shape: the JIT configurations
//! reach (and can exceed) the hand-optimized speedup — three orders of
//! magnitude on CSPA — without any input from the user.

use carac_analysis::Formulation;
use carac_bench::{figure_macro_workloads, speedup_figure};

fn main() {
    let workloads = figure_macro_workloads();
    let table = speedup_figure(
        "Figure 6: macrobenchmark speedup over the unoptimized interpreted program",
        &workloads,
        Formulation::Unoptimized,
        Formulation::Unoptimized,
        2,
    );
    println!("{table}");
    println!("(rows: execution configuration; columns: workload with indexes / without indexes;");
    println!(" every value is speedup over the interpreted unoptimized program in the same index setting)");
}
