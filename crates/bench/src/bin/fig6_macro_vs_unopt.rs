//! Figure 6 — macrobenchmark speedup over the "unoptimized" programs.
//!
//! For Andersen's points-to, the inverse-functions analysis and the CSPA
//! sample, reports the speedup of the hand-optimized interpreter and of the
//! six JIT configurations over the interpreted unoptimized program, with
//! indexes on and off.  The paper's headline shape: the JIT configurations
//! reach (and can exceed) the hand-optimized speedup — three orders of
//! magnitude on CSPA — without any input from the user.

use carac_analysis::Formulation;
use carac_bench::{
    figure_macro_workloads, figure_shortest_path, parallel_scaling_table, speedup_figure,
};

fn main() {
    let mut workloads = figure_macro_workloads();
    workloads.push(figure_shortest_path());
    let table = speedup_figure(
        "Figure 6: macrobenchmark speedup over the unoptimized interpreted program",
        &workloads,
        Formulation::Unoptimized,
        Formulation::Unoptimized,
        2,
    );
    println!("{table}");
    println!("(rows: execution configuration; columns: workload with indexes / without indexes;");
    println!(" every value is speedup over the interpreted unoptimized program in the same index setting)");

    // The --threads axis: sharded parallel evaluation of the same workloads
    // (set `--threads 1,4,8` or CARAC_BENCH_THREADS to change the axis).
    let parallel = parallel_scaling_table(
        "Figure 6 (threads axis): sharded parallel evaluation, hand-optimized programs",
        &workloads,
        Formulation::HandOptimized,
        2,
    );
    println!("{parallel}");
    println!("(wall-clock of the interpreted engine; parallel runs are verified to derive the serial fact set)");
}
