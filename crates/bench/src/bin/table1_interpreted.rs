//! Table I — average execution time of interpreted Carac queries.
//!
//! Reproduces the paper's Table I: wall-clock execution time of the pure
//! interpreter on every workload, for the four combinations of
//! {unindexed, indexed} × {unoptimized, hand-optimized}.  The absolute
//! numbers differ from the paper (synthetic data, smaller scale, different
//! hardware); the relationships that must hold are (a) indexed ≤ unindexed
//! and (b) hand-optimized ≤ unoptimized, with the gaps largest for the
//! join-order-sensitive macrobenchmarks.

use carac::EngineConfig;
use carac_analysis::Formulation;
use carac_bench::{
    figure_csda, figure_macro_workloads, figure_micro_workloads, fmt_secs, measure, render_table,
};

fn main() {
    let mut workloads = figure_micro_workloads();
    workloads.extend(figure_macro_workloads());
    workloads.push(figure_csda());

    let headers = vec![
        "Benchmark".to_string(),
        "Unindexed Unoptimized".to_string(),
        "Unindexed Optimized".to_string(),
        "Indexed Unoptimized".to_string(),
        "Indexed Optimized".to_string(),
        "|output|".to_string(),
    ];
    let mut rows = Vec::new();
    for workload in &workloads {
        let cells: Vec<(Formulation, EngineConfig)> = vec![
            (
                Formulation::Unoptimized,
                EngineConfig::interpreted_unindexed(),
            ),
            (
                Formulation::HandOptimized,
                EngineConfig::interpreted_unindexed(),
            ),
            (Formulation::Unoptimized, EngineConfig::interpreted()),
            (Formulation::HandOptimized, EngineConfig::interpreted()),
        ];
        let mut row = vec![workload.name.to_string()];
        let mut output = 0;
        for (formulation, config) in cells {
            let (count, time) = measure(workload, formulation, config, 2);
            output = count;
            row.push(fmt_secs(time));
        }
        row.push(output.to_string());
        rows.push(row);
        eprintln!("[table1] finished {}", workload.name);
    }
    println!(
        "{}",
        render_table(
            "Table I: average execution time (s) of interpreted Carac queries",
            &headers,
            &rows
        )
    );
}
