//! Shared benchmark-harness utilities.
//!
//! Every table and figure of the paper's evaluation (§VI) has a dedicated
//! binary in `src/bin/` that regenerates it; this library holds the pieces
//! they share: the engine-configuration sets matching the paper's legends,
//! the workload suites at "harness scale", speedup arithmetic and plain-text
//! table rendering.
//!
//! Scales are deliberately smaller than the paper's (our inputs are
//! synthetic and the harness must run on a laptop in minutes); the shapes —
//! who wins, by roughly what factor, where the crossovers are — are what the
//! harness reproduces.  Set `CARAC_BENCH_SCALE` to scale the macro workloads
//! up or down.

#![forbid(unsafe_code)]

pub mod report;

use std::time::Duration;

use carac::knobs::BackendKind;
use carac::EngineConfig;
use carac_analysis::{Formulation, Workload};

pub use report::{
    apply_trace_env, export_env_trace, trace_env_path, write_json_array, write_json_sections,
    FigureReport, Json, JsonRow,
};

/// Default scale for the macrobenchmarks (roughly the number of program
/// variables in the synthetic fact generators).
pub const DEFAULT_MACRO_SCALE: u32 = 96;
/// Scale used for the CSPA_20k-style sample.
pub const DEFAULT_CSPA_SCALE: u32 = 72;
/// Domain bound for the microbenchmarks.
pub const DEFAULT_MICRO_BOUND: u32 = 24;
/// Seed used by every harness binary (determinism across runs).
pub const HARNESS_SEED: u64 = 0xCA2AC;

/// Reads the macro scale from `CARAC_BENCH_SCALE`, falling back to a small
/// smoke scale under `CARAC_BENCH_SMOKE=1` and to the default otherwise, so
/// CI can run the figure binaries end-to-end in seconds.
pub fn macro_scale() -> u32 {
    std::env::var("CARAC_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if smoke_mode() {
            16
        } else {
            DEFAULT_MACRO_SCALE
        })
}

/// Whether the harness runs in smoke mode (`CARAC_BENCH_SMOKE=1`): tiny
/// scales and minimal sampling, so CI can assert that the benches still
/// build, run and uphold their invariants (identical fact counts, flat pool
/// smaller than the legacy double-store) in seconds rather than minutes.
pub fn smoke_mode() -> bool {
    std::env::var("CARAC_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Renders the row-pool statistics table printed by the fig6–fig9 binaries
/// alongside their speedup figures: per workload, the derived-fact count
/// and the aggregate pool stats (rows across all three evaluation
/// databases, resident bytes, dedup-table rehashes).  These are the
/// memory-layout numbers that make the flat-pool storage behavior
/// measurable rather than asserted.  The rows come from runs the caller
/// already performed ([`parallel_scaling_table`] captures them from its
/// serial baseline), so no extra workload execution happens here.
fn render_pool_stats_table(title: &str, rows: &[Vec<String>]) -> String {
    let headers = vec![
        "Workload".to_string(),
        "derived facts".to_string(),
        "pool rows".to_string(),
        "resident KiB".to_string(),
        "rehashes".to_string(),
    ];
    render_table(title, &headers, rows)
}

/// The worker-thread axis for the parallel-scaling tables: `--threads 1,4,8`
/// on the command line, else the `CARAC_BENCH_THREADS` environment variable,
/// else `1,4`.  Values are deduplicated, kept in the order given, and `0`
/// entries are dropped.
pub fn thread_axis() -> Vec<usize> {
    let from_args = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--threads")
            .and_then(|i| args.get(i + 1).cloned())
            .or_else(|| {
                args.iter()
                    .find(|a| a.starts_with("--threads="))
                    .map(|a| a["--threads=".len()..].to_string())
            })
    };
    let spec = from_args
        .or_else(|| std::env::var("CARAC_BENCH_THREADS").ok())
        .unwrap_or_else(|| "1,4".to_string());
    let mut axis: Vec<usize> = Vec::new();
    for part in spec.split(',') {
        if let Ok(n) = part.trim().parse::<usize>() {
            if n > 0 && !axis.contains(&n) {
                axis.push(n);
            }
        }
    }
    if axis.is_empty() {
        axis.push(1);
    }
    axis
}

/// The parallel-scaling table shared by the figure binaries' `--threads`
/// axis: for every workload, the serial interpreted wall-clock next to each
/// parallel worker count, with the speedup over serial.  Panics if any
/// parallel run diverges from the serial fact count — the determinism
/// contract is part of what the table certifies.
///
/// The serial baseline run doubles as the capture point for the row-pool
/// statistics, so the returned string carries *two* tables: the scaling
/// table and the flat row-pool statistics of one serial run per workload
/// (no extra workload execution for the storage numbers).
pub fn parallel_scaling_table(
    title: &str,
    workloads: &[Workload],
    formulation: Formulation,
    repeats: usize,
) -> String {
    let threads = thread_axis();
    let mut headers = vec!["Workload".to_string(), "serial".to_string()];
    for &t in &threads {
        if t > 1 {
            headers.push(format!("{t} threads"));
            headers.push(format!("x{t} speedup"));
        }
    }
    let mut rows = Vec::new();
    let mut pool_rows = Vec::new();
    for workload in workloads {
        // The first serial run is kept whole (fact count, wall time *and*
        // pool stats); the remaining repeats only refine the best-of-N time.
        // It is also the run the `CARAC_TRACE` override traces and exports.
        let first = workload
            .run(formulation, apply_trace_env(EngineConfig::interpreted()))
            .unwrap_or_else(|e| panic!("{} failed: {e}", workload.name));
        export_env_trace(title, &first);
        let serial_count = first
            .count(workload.output_relation)
            .expect("workload output relation exists");
        let mut serial_time = first.stats().total_time;
        if repeats > 1 {
            let (count, best) = measure(
                workload,
                formulation,
                EngineConfig::interpreted(),
                repeats - 1,
            );
            assert_eq!(
                count, serial_count,
                "{} serial repeat diverged",
                workload.name
            );
            serial_time = serial_time.min(best);
        }
        let pool = first.pool_stats();
        pool_rows.push(vec![
            workload.name.to_string(),
            first.total_tuples().to_string(),
            pool.rows.to_string(),
            format!("{:.1}", pool.bytes as f64 / 1024.0),
            pool.rehashes.to_string(),
        ]);
        drop(first);
        let mut row = vec![workload.name.to_string(), fmt_secs(serial_time)];
        for &t in &threads {
            if t <= 1 {
                continue;
            }
            let (count, time) = measure(
                workload,
                formulation,
                EngineConfig::interpreted().with_parallelism(t),
                repeats,
            );
            assert_eq!(
                count, serial_count,
                "{} with {t} threads diverged from the serial fact count",
                workload.name
            );
            row.push(fmt_secs(time));
            row.push(fmt_speedup(speedup(serial_time, time)));
        }
        eprintln!("[{title}] parallel scaling for {} done", workload.name);
        rows.push(row);
    }
    let scaling = render_table(title, &headers, &rows);
    let storage = render_pool_stats_table(
        &format!("{title} — storage: flat row-pool statistics (serial run)"),
        &pool_rows,
    );
    format!("{scaling}{storage}")
}

/// The six JIT configurations of Figures 6–9, in the paper's legend order,
/// plus their labels.
pub fn jit_configs() -> Vec<(String, EngineConfig)> {
    let mut configs = vec![(
        "JIT IRGenerator".to_string(),
        EngineConfig::jit(BackendKind::IrGen, false),
    )];
    configs.push((
        "JIT Lambda Blocking".to_string(),
        EngineConfig::jit(BackendKind::Lambda, false),
    ));
    configs.push((
        "JIT Bytecode Async".to_string(),
        EngineConfig::jit(BackendKind::Bytecode, true),
    ));
    configs.push((
        "JIT Bytecode Blocking".to_string(),
        EngineConfig::jit(BackendKind::Bytecode, false),
    ));
    configs.push((
        "JIT Quotes Async".to_string(),
        EngineConfig::jit(BackendKind::Quotes, true),
    ));
    configs.push((
        "JIT Quotes Blocking".to_string(),
        EngineConfig::jit(BackendKind::Quotes, false),
    ));
    configs
}

/// The macrobenchmarks of Figures 6 and 8 at harness scale, plus the
/// degree-distribution workload exercising `count` aggregates and
/// comparison constraints at the same scale.
pub fn figure_macro_workloads() -> Vec<Workload> {
    let scale = macro_scale();
    vec![
        carac_analysis::andersen(scale, HARNESS_SEED),
        carac_analysis::inverse_functions(scale, HARNESS_SEED),
        carac_analysis::cspa(DEFAULT_CSPA_SCALE.min(scale), HARNESS_SEED),
        carac_analysis::degree_distribution(scale * 8, HARNESS_SEED),
    ]
}

/// The shortest-path workload (min aggregation + `<` constraint) at harness
/// scale — the aggregate counterpart of the macro suite, also printed with
/// its own parallel-scaling table by the fig6 binary.
pub fn figure_shortest_path() -> Workload {
    let scale = macro_scale();
    carac_analysis::shortest_path(scale * 4, 24, HARNESS_SEED)
}

/// CSDA at harness scale (used by Figure 8 and Table II).
pub fn figure_csda() -> Workload {
    carac_analysis::csda(macro_scale() * 6, HARNESS_SEED)
}

/// The microbenchmarks of Figures 7, 9 and 10 at harness scale.
pub fn figure_micro_workloads() -> Vec<Workload> {
    vec![
        carac_analysis::ackermann(DEFAULT_MICRO_BOUND),
        carac_analysis::fibonacci(30),
        carac_analysis::primes(300),
    ]
}

/// Runs a `(workload, formulation, config)` combination several times and
/// returns the best-of-N wall time plus the output cardinality (best-of-N
/// smooths out allocator noise without a full statistics framework; the
/// Criterion benches provide the rigorous version).
pub fn measure(
    workload: &Workload,
    formulation: Formulation,
    config: EngineConfig,
    repeats: usize,
) -> (usize, Duration) {
    let mut best = Duration::MAX;
    let mut count = 0;
    for _ in 0..repeats.max(1) {
        let (c, t) = workload
            .measure(formulation, config)
            .unwrap_or_else(|e| panic!("{} failed: {e}", workload.name));
        count = c;
        if t < best {
            best = t;
        }
    }
    (count, best)
}

/// Speedup of `measured` relative to `baseline` (how many times faster the
/// measured configuration is).
pub fn speedup(baseline: Duration, measured: Duration) -> f64 {
    let baseline = baseline.as_secs_f64();
    let measured = measured.as_secs_f64().max(1e-9);
    baseline / measured
}

/// Renders a plain-text table.
pub fn render_table(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(std::string::String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    out.push_str(&header_line.join("  "));
    out.push('\n');
    out.push_str(&"-".repeat(header_line.join("  ").len()));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

/// Formats a duration in seconds with millisecond precision.
pub fn fmt_secs(d: Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Formats a speedup factor.
pub fn fmt_speedup(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}x")
    } else {
        format!("{s:.2}x")
    }
}

/// Produces one of the speedup figures (Figs. 6–9): for every workload,
/// measure the baseline (interpreted, in `baseline_formulation`) and every
/// listed configuration (run on the `measured_formulation`), for both the
/// indexed and unindexed engines, and report speedups over the baseline.
///
/// Returns the rendered table; also used by the Criterion benches' smoke
/// tests and by EXPERIMENTS.md generation.
pub fn speedup_figure(
    title: &str,
    workloads: &[Workload],
    baseline_formulation: Formulation,
    measured_formulation: Formulation,
    repeats: usize,
) -> String {
    let mut configs: Vec<(String, EngineConfig)> = vec![(
        "Hand-Optimized (interp)".to_string(),
        EngineConfig::interpreted(),
    )];
    configs.extend(jit_configs());

    let mut headers = vec!["Configuration".to_string()];
    for workload in workloads {
        headers.push(format!("{} idx", workload.name));
        headers.push(format!("{} noidx", workload.name));
    }

    // Baselines per workload and index setting.
    let mut baselines = Vec::new();
    for workload in workloads {
        let (_, indexed) = measure(
            workload,
            baseline_formulation,
            EngineConfig::interpreted(),
            repeats,
        );
        let (_, unindexed) = measure(
            workload,
            baseline_formulation,
            EngineConfig::interpreted_unindexed(),
            repeats,
        );
        baselines.push((indexed, unindexed));
        eprintln!("[{title}] baseline for {} done", workload.name);
    }

    let mut rows = Vec::new();
    for (label, config) in &configs {
        let mut row = vec![label.clone()];
        for (workload, (base_idx, base_noidx)) in workloads.iter().zip(&baselines) {
            // The hand-optimized row always runs the hand-optimized program;
            // every JIT row runs the `measured_formulation`.
            let formulation = if label.starts_with("Hand-Optimized") {
                Formulation::HandOptimized
            } else {
                measured_formulation
            };
            let (_, t_idx) = measure(workload, formulation, *config, repeats);
            let (_, t_noidx) = measure(workload, formulation, config.without_indexes(), repeats);
            row.push(fmt_speedup(speedup(*base_idx, t_idx)));
            row.push(fmt_speedup(speedup(*base_noidx, t_noidx)));
        }
        eprintln!("[{title}] configuration `{label}` done");
        rows.push(row);
    }
    render_table(title, &headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_arithmetic() {
        assert!((speedup(Duration::from_secs(10), Duration::from_secs(2)) - 5.0).abs() < 1e-9);
        assert!(speedup(Duration::from_secs(1), Duration::ZERO) > 1e6);
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let table = render_table(
            "Demo",
            &["name".to_string(), "value".to_string()],
            &[
                vec!["a".to_string(), "1".to_string()],
                vec!["longer".to_string(), "2.5x".to_string()],
            ],
        );
        assert!(table.contains("Demo"));
        assert!(table.contains("longer"));
        assert!(table.lines().count() >= 5);
    }

    #[test]
    fn config_sets_have_the_papers_labels() {
        let configs = jit_configs();
        assert_eq!(configs.len(), 6);
        assert!(configs.iter().any(|(l, _)| l == "JIT Quotes Async"));
        for (label, config) in configs {
            assert_eq!(label, config.label());
        }
    }

    #[test]
    fn harness_workload_suites_are_nonempty() {
        assert_eq!(figure_macro_workloads().len(), 4);
        assert!(figure_macro_workloads().iter().any(|w| w.name == "DegDist"));
        assert_eq!(figure_micro_workloads().len(), 3);
        assert_eq!(figure_csda().name, "CSDA");
        assert_eq!(figure_shortest_path().name, "ShortestPath");
    }

    #[test]
    fn measure_runs_and_reports() {
        let w = carac_analysis::fibonacci(12);
        let (count, time) = measure(
            &w,
            Formulation::HandOptimized,
            EngineConfig::interpreted(),
            2,
        );
        assert_eq!(count, 13);
        assert!(time > Duration::ZERO);
    }
}
