//! Criterion bench for Figure 5: code-generation time per backend.
//!
//! Benchmarks the cost of generating an executable artifact for the CSPA
//! plan with each backend (warm compiler, full compilation).  The
//! table-printing binary `fig5_codegen` produces the full granularity ×
//! warm/cold × full/snippet matrix; this bench tracks the backend ordering
//! (Quotes ≫ Bytecode ≈ Lambda ≈ IRGen) over time.

use std::time::Duration;

use carac::exec::backends::{compile_artifact, BackendKind, CompileMode, StagingCostModel};
use carac::ir::{generate_plan, EvalStrategy};
use carac_analysis::Formulation;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_codegen(c: &mut Criterion) {
    let workload = carac_analysis::cspa(48, 7);
    let plan = generate_plan(
        workload.program(Formulation::Unoptimized),
        EvalStrategy::SemiNaive,
    );
    let staging = StagingCostModel::default();

    let mut group = c.benchmark_group("fig5_codegen");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for backend in BackendKind::ALL {
        group.bench_function(format!("{backend:?}_full_warm"), |b| {
            b.iter(|| compile_artifact(&plan, backend, CompileMode::Full, &staging, true));
        });
    }
    group.bench_function("Quotes_snippet_warm", |b| {
        b.iter(|| {
            compile_artifact(
                &plan,
                BackendKind::Quotes,
                CompileMode::Snippet,
                &staging,
                true,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_codegen);
criterion_main!(benches);
