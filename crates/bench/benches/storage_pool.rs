//! Storage microbenchmark: the flat row pool against the seed's
//! double-store layout.
//!
//! Three measured sections, mirroring the storage hot paths of the fixpoint
//! loop:
//!
//! * **bulk insert** — deduplicating insertion of a graph-shaped fact set
//!   into the flat-pool [`Relation`] vs. a faithful reimplementation of the
//!   seed layout (`Vec<Tuple>` + `FxHashSet<Tuple>` + per-column
//!   `HashMap<Value, Vec<usize>>` index, every row boxed twice),
//! * **indexed probe** — repeated equality probes through the pool's
//!   borrowed posting lists vs. the legacy index,
//! * **fixpoint iteration** — a transitive-closure fixpoint through the full
//!   engine, the end-to-end number the pool exists to improve.
//!
//! After the timed sections the bench checks the acceptance invariants on a
//! Figure-6 macro workload (Andersen's points-to): the flat pool must be
//! **strictly smaller resident** than the legacy double-store holding the
//! same derived facts, and the specialized, interpreted and parallel engines
//! must derive identical fact counts.  `CARAC_BENCH_SMOKE=1` shrinks the
//! scales so CI can run the whole file in seconds.

use std::time::Duration;

use carac::knobs::BackendKind;
use carac::storage::hasher::{FxHashMap, FxHashSet};
use carac::storage::{RelId, Relation, RelationSchema, Tuple, Value};
use carac::EngineConfig;
use carac_analysis::{andersen, Formulation};
use carac_bench::{smoke_mode, HARNESS_SEED};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// A faithful reimplementation of the seed storage layout, kept here as the
/// measured baseline: every row is a boxed [`Tuple`] stored twice (scan
/// vector + dedup hash set), and each index posting list is a separate
/// `Vec<usize>` allocation.
struct LegacyDoubleStore {
    tuples: Vec<Tuple>,
    set: FxHashSet<Tuple>,
    index: FxHashMap<Value, Vec<usize>>,
    indexed_column: usize,
}

impl LegacyDoubleStore {
    fn new(indexed_column: usize) -> Self {
        LegacyDoubleStore {
            tuples: Vec::new(),
            set: FxHashSet::default(),
            index: FxHashMap::default(),
            indexed_column,
        }
    }

    fn insert(&mut self, tuple: Tuple) -> bool {
        if self.set.contains(&tuple) {
            return false;
        }
        let row = self.tuples.len();
        if let Some(v) = tuple.get(self.indexed_column) {
            self.index.entry(v).or_default().push(row);
        }
        self.set.insert(tuple.clone());
        self.tuples.push(tuple);
        true
    }

    fn lookup(&self, value: Value) -> &[usize] {
        self.index.get(&value).map_or(&[], Vec::as_slice)
    }

    /// Resident bytes, capacity-based — the same accounting discipline as
    /// [`Relation::pool_stats`]: owned vector/table capacity plus per-entry
    /// heap payloads.  Allocator headers are ignored on both sides (which
    /// favors this layout, since it makes ~2N+K small allocations where the
    /// pool makes a handful of large ones).
    fn resident_bytes(&self) -> usize {
        let tuple_word = std::mem::size_of::<Tuple>();
        let boxed: usize = self
            .tuples
            .iter()
            .map(|t| t.arity() * std::mem::size_of::<Value>())
            .sum();
        // Scan vector and dedup set each own a full copy of every row.
        let vec_side = self.tuples.capacity() * tuple_word + boxed;
        let set_side = self.set.capacity() * tuple_word + boxed;
        let index_side = self.index.capacity()
            * (std::mem::size_of::<Value>() + std::mem::size_of::<Vec<usize>>())
            + self
                .index
                .values()
                .map(|v| v.capacity() * std::mem::size_of::<usize>())
                .sum::<usize>();
        vec_side + set_side + index_side
    }
}

/// Deterministic graph-shaped pairs with duplicates (about 1 in 8 repeats),
/// exercising the dedup path the way EDB loading does.
fn edge_facts(n: u32) -> Vec<(u32, u32)> {
    (0..n)
        .map(|i| {
            if i % 8 == 7 {
                (
                    (i / 2).wrapping_mul(7) % 997,
                    (i / 2).wrapping_mul(13) % 997,
                )
            } else {
                (i.wrapping_mul(7) % 997, i.wrapping_mul(13) % 997 + i / 997)
            }
        })
        .collect()
}

fn fresh_relation(indexed: bool) -> Relation {
    let mut r = Relation::new(RelationSchema::new(RelId(0), "Edge", 2, true));
    if indexed {
        r.add_index(0).unwrap();
    }
    r
}

fn bench_bulk_insert(c: &mut Criterion) {
    let n: u32 = if smoke_mode() { 20_000 } else { 200_000 };
    let facts = edge_facts(n);
    let mut group = c.benchmark_group("storage_pool/bulk_insert");
    group
        .sample_size(if smoke_mode() { 3 } else { 10 })
        .measurement_time(Duration::from_secs(if smoke_mode() { 1 } else { 3 }));

    group.bench_function("flat_pool", |b| {
        b.iter(|| {
            let mut r = fresh_relation(true);
            for &(x, y) in &facts {
                r.insert_row(&[Value::int(x), Value::int(y)]).unwrap();
            }
            black_box(r.len())
        });
    });
    group.bench_function("legacy_double_store", |b| {
        b.iter(|| {
            let mut r = LegacyDoubleStore::new(0);
            for &(x, y) in &facts {
                r.insert(Tuple::pair(x, y));
            }
            black_box(r.tuples.len())
        });
    });
    group.finish();
}

fn bench_indexed_probe(c: &mut Criterion) {
    let n: u32 = if smoke_mode() { 20_000 } else { 200_000 };
    let facts = edge_facts(n);
    let mut flat = fresh_relation(true);
    let mut legacy = LegacyDoubleStore::new(0);
    for &(x, y) in &facts {
        flat.insert_row(&[Value::int(x), Value::int(y)]).unwrap();
        legacy.insert(Tuple::pair(x, y));
    }
    let probes: Vec<Value> = (0..997u32).map(Value::int).collect();

    let mut group = c.benchmark_group("storage_pool/indexed_probe");
    group
        .sample_size(if smoke_mode() { 3 } else { 10 })
        .measurement_time(Duration::from_secs(if smoke_mode() { 1 } else { 3 }));

    group.bench_function("flat_pool_posting_lists", |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            let mut hits = 0usize;
            for &v in &probes {
                let probe = flat.probe_rows(&[(0, v)], &mut scratch);
                for row in &probe {
                    hits += usize::from(flat.row(row)[0] == v);
                }
            }
            black_box(hits)
        });
    });
    group.bench_function("legacy_index", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for &v in &probes {
                for &row in legacy.lookup(v) {
                    hits += usize::from(legacy.tuples[row].get(0) == Some(v));
                }
            }
            black_box(hits)
        });
    });
    group.finish();
}

fn bench_fixpoint_iteration(c: &mut Criterion) {
    // A transitive closure over a sparse cyclic graph: the full semi-naive
    // fixpoint (probe, emit, dedup, delta swap) through the engine.
    let nodes: u32 = if smoke_mode() { 150 } else { 400 };
    let mut source = String::from(
        "Path(x, y) :- Edge(x, y).\n\
         Path(x, y) :- Edge(x, z), Path(z, y).\n",
    );
    for i in 0..nodes {
        source.push_str(&format!("Edge({}, {}).\n", i, (i + 1) % nodes));
        if i % 13 == 0 {
            source.push_str(&format!("Edge({}, {}).\n", i, (i * 5 + 2) % nodes));
        }
    }
    let program = carac::datalog::parser::parse(&source).unwrap();

    let mut group = c.benchmark_group("storage_pool/fixpoint_iteration");
    group
        .sample_size(if smoke_mode() { 2 } else { 5 })
        .measurement_time(Duration::from_secs(if smoke_mode() { 2 } else { 5 }));
    group.bench_function("transitive_closure_interpreted", |b| {
        b.iter(|| {
            let result = carac::Carac::new(program.clone())
                .with_config(EngineConfig::interpreted())
                .run()
                .unwrap();
            black_box(result.count("Path").unwrap())
        });
    });
    group.finish();
}

/// The acceptance invariants on the Figure-6 macro workload: identical
/// derived-fact counts across engines, and the flat pool strictly smaller
/// resident than the legacy double-store holding the same facts.
fn check_fig6_invariants(_c: &mut Criterion) {
    let scale = if smoke_mode() { 24 } else { 48 };
    let workload = andersen(scale, HARNESS_SEED);

    let interpreted = workload
        .run(Formulation::HandOptimized, EngineConfig::interpreted())
        .unwrap();
    let specialized = workload
        .run(
            Formulation::HandOptimized,
            EngineConfig::jit(BackendKind::Lambda, false),
        )
        .unwrap();
    let parallel = workload
        .run(
            Formulation::HandOptimized,
            EngineConfig::interpreted().with_parallelism(4),
        )
        .unwrap();
    assert_eq!(
        interpreted.total_tuples(),
        specialized.total_tuples(),
        "specialized engine diverged from interpreted on the fig6 workload"
    );
    assert_eq!(
        interpreted.total_tuples(),
        parallel.total_tuples(),
        "parallel engine diverged from interpreted on the fig6 workload"
    );

    // Rebuild the derived fact set in the legacy double-store layout and
    // compare resident bytes against the pool holding the same rows.
    let program = workload.program(Formulation::HandOptimized);
    let mut legacy_bytes = 0usize;
    let mut flat_bytes = 0usize;
    let mut rows = 0usize;
    for decl in program.relations() {
        let tuples = interpreted.tuples(&decl.name).unwrap();
        let mut legacy = LegacyDoubleStore::new(0);
        let mut flat = Relation::new(RelationSchema::new(
            RelId(0),
            decl.name.clone(),
            decl.arity,
            decl.is_edb,
        ));
        if decl.arity > 0 {
            flat.add_index(0).unwrap();
        }
        for tuple in tuples {
            flat.insert_row(tuple.values()).unwrap();
            legacy.insert(tuple);
        }
        rows += flat.len();
        legacy_bytes += legacy.resident_bytes();
        flat_bytes += flat.pool_stats().bytes;
    }
    println!(
        "\n-- fig6 invariants (Andersen, scale {scale}) --\n\
         derived rows: {rows}\n\
         flat pool resident:     {flat_bytes} bytes\n\
         legacy double-store:    {legacy_bytes} bytes\n\
         ratio (legacy / flat):  {:.2}x",
        legacy_bytes as f64 / flat_bytes.max(1) as f64
    );
    assert!(
        flat_bytes < legacy_bytes,
        "flat pool ({flat_bytes} B) must be strictly smaller than the legacy \
         double-store ({legacy_bytes} B)"
    );
}

/// The observability acceptance invariant: with tracing off, every
/// instrumentation site is one branch on a `None`, and the total cost of
/// those branches over a full fixpoint must stay under 2% of the run.
///
/// Measured deterministically rather than by A/B wall-clock: the per-call
/// cost of the disabled tracer is timed over a million begin/end pairs,
/// the number of instrumented sites a run executes is counted from a
/// traced run of the same program, and the product is compared against
/// the untraced run's wall-clock time.
fn check_tracing_off_overhead(_c: &mut Criterion) {
    use std::time::Instant;

    // Per-site cost of the disabled tracer (one begin + one end).
    let tracer = carac::exec::Tracer::disabled();
    let calls: u32 = 1_000_000;
    let started = Instant::now();
    for i in 0..calls {
        let token = tracer.begin(carac::Phase::Subquery, i);
        tracer.end(black_box(token), &[]);
    }
    let per_site = started.elapsed() / calls;

    // The TC fixpoint from `bench_fixpoint_iteration`, untraced and traced.
    let nodes: u32 = if smoke_mode() { 150 } else { 400 };
    let mut source = String::from(
        "Path(x, y) :- Edge(x, y).\n\
         Path(x, y) :- Edge(x, z), Path(z, y).\n",
    );
    for i in 0..nodes {
        source.push_str(&format!("Edge({}, {}).\n", i, (i + 1) % nodes));
    }
    let program = carac::datalog::parser::parse(&source).unwrap();

    let started = Instant::now();
    let untraced = carac::Carac::new(program.clone())
        .with_config(EngineConfig::interpreted())
        .run()
        .unwrap();
    let run_time = started.elapsed();
    black_box(untraced.count("Path").unwrap());

    let traced = carac::Carac::new(program)
        .with_config(EngineConfig::interpreted().with_tracing(carac::TraceConfig::default()))
        .run()
        .unwrap();
    let tracer = &traced.stats().tracer;
    let sites = (tracer.events().len() as u64 + tracer.dropped()) / 2;

    let branch_cost = per_site * sites as u32;
    let overhead = branch_cost.as_secs_f64() / run_time.as_secs_f64();
    println!(
        "\n-- tracing-off overhead (TC fixpoint, {nodes} nodes) --\n\
         disabled tracer per site:  {:?}\n\
         instrumented sites:        {sites}\n\
         implied branch cost:       {branch_cost:?}\n\
         untraced run:              {run_time:?}\n\
         implied overhead:          {:.4}%",
        per_site,
        overhead * 100.0
    );
    assert!(
        overhead < 0.02,
        "tracing-off instrumentation overhead {:.3}% breaches the 2% bar",
        overhead * 100.0
    );
}

criterion_group!(
    benches,
    bench_bulk_insert,
    bench_indexed_probe,
    bench_fixpoint_iteration,
    check_fig6_invariants,
    check_tracing_off_overhead,
);
criterion_main!(benches);
