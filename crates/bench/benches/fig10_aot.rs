//! Criterion bench for Figure 10: ahead-of-time ("macro") vs. online
//! optimization on a microbenchmark (Fibonacci).

use std::time::Duration;

use carac::knobs::BackendKind;
use carac::EngineConfig;
use carac_analysis::{fibonacci, Formulation};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_aot(c: &mut Criterion) {
    let workload = fibonacci(25);
    let mut group = c.benchmark_group("fig10_fibonacci_aot");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for (label, config) in [
        ("jit_lambda", EngineConfig::jit(BackendKind::Lambda, false)),
        (
            "macro_facts_rules_online",
            EngineConfig::ahead_of_time(true, true),
        ),
        (
            "macro_rules_online",
            EngineConfig::ahead_of_time(false, true),
        ),
        (
            "macro_facts_rules",
            EngineConfig::ahead_of_time(true, false),
        ),
        ("macro_rules", EngineConfig::ahead_of_time(false, false)),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| workload.measure(Formulation::Unoptimized, config).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_aot);
criterion_main!(benches);
