//! Criterion bench for Figure 9: microbenchmark speedup (or slowdown) over
//! the hand-optimized programs (Ackermann — the paper's worst case for
//! optimization overhead).

use std::time::Duration;

use carac::knobs::BackendKind;
use carac::EngineConfig;
use carac_analysis::{ackermann, Formulation};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_ackermann(c: &mut Criterion) {
    let workload = ackermann(18);
    let mut group = c.benchmark_group("fig9_ackermann");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for (label, config) in [
        ("interpreted_hand_optimized", EngineConfig::interpreted()),
        (
            "jit_lambda_blocking_on_hand_optimized",
            EngineConfig::jit(BackendKind::Lambda, false),
        ),
        (
            "jit_quotes_blocking_on_hand_optimized",
            EngineConfig::jit(BackendKind::Quotes, false),
        ),
        (
            "jit_quotes_async_on_hand_optimized",
            EngineConfig::jit(BackendKind::Quotes, true),
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                workload
                    .measure(Formulation::HandOptimized, config)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ackermann);
criterion_main!(benches);
