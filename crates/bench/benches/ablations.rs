//! Ablation benchmarks for the design knobs DESIGN.md calls out:
//!
//! * compilation granularity (Program vs. UnionAllRules vs. Spj),
//! * the freshness threshold gating recompilation,
//! * the constant selectivity factor of the cost model.
//!
//! These are not figures from the paper; they quantify the sensitivity of
//! the adaptive JIT to its own tuning parameters on a mid-size workload.

use std::time::Duration;

use carac::exec::JitConfig;
use carac::knobs::{BackendKind, OpKind, OptimizerConfig};
use carac::EngineConfig;
use carac_analysis::{andersen, Formulation};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_granularity(c: &mut Criterion) {
    let workload = andersen(36, 11);
    let mut group = c.benchmark_group("ablation_granularity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for (label, granularity) in [
        ("program", OpKind::Program),
        ("union_all_rules", OpKind::UnionAllRules),
        ("union_rule", OpKind::UnionRule),
        ("spj", OpKind::Spj),
    ] {
        let config = EngineConfig::jit_with(JitConfig {
            backend: BackendKind::Lambda,
            granularity,
            ..JitConfig::default()
        });
        group.bench_function(label, |b| {
            b.iter(|| workload.measure(Formulation::Unoptimized, config).unwrap());
        });
    }
    group.finish();
}

fn bench_freshness(c: &mut Criterion) {
    let workload = andersen(36, 11);
    let mut group = c.benchmark_group("ablation_freshness_threshold");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for threshold in [0.0, 0.2, 1.0, 1.0e9] {
        let config = EngineConfig::jit_with(JitConfig {
            backend: BackendKind::Lambda,
            optimizer: OptimizerConfig {
                freshness_threshold: threshold,
                ..OptimizerConfig::default()
            },
            ..JitConfig::default()
        });
        group.bench_function(format!("threshold_{threshold}"), |b| {
            b.iter(|| workload.measure(Formulation::Unoptimized, config).unwrap());
        });
    }
    group.finish();
}

fn bench_selectivity(c: &mut Criterion) {
    let workload = andersen(36, 11);
    let mut group = c.benchmark_group("ablation_selectivity_factor");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for selectivity in [0.01, 0.1, 0.5, 1.0] {
        let config = EngineConfig::jit_with(JitConfig {
            backend: BackendKind::IrGen,
            optimizer: OptimizerConfig {
                selectivity_factor: selectivity,
                ..OptimizerConfig::default()
            },
            ..JitConfig::default()
        });
        group.bench_function(format!("selectivity_{selectivity}"), |b| {
            b.iter(|| workload.measure(Formulation::Unoptimized, config).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_granularity,
    bench_freshness,
    bench_selectivity
);
criterion_main!(benches);
