//! Criterion bench for Figure 7: microbenchmark speedup over the
//! unoptimized programs (Fibonacci).

use std::time::Duration;

use carac::knobs::BackendKind;
use carac::EngineConfig;
use carac_analysis::{fibonacci, Formulation};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fibonacci(c: &mut Criterion) {
    let workload = fibonacci(25);
    let mut group = c.benchmark_group("fig7_fibonacci");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));

    for (label, formulation, config) in [
        (
            "interpreted_unoptimized",
            Formulation::Unoptimized,
            EngineConfig::interpreted(),
        ),
        (
            "interpreted_hand_optimized",
            Formulation::HandOptimized,
            EngineConfig::interpreted(),
        ),
        (
            "jit_lambda_blocking_on_unoptimized",
            Formulation::Unoptimized,
            EngineConfig::jit(BackendKind::Lambda, false),
        ),
        (
            "jit_bytecode_blocking_on_unoptimized",
            Formulation::Unoptimized,
            EngineConfig::jit(BackendKind::Bytecode, false),
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| workload.measure(formulation, config).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fibonacci);
criterion_main!(benches);
