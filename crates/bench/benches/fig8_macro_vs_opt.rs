//! Criterion bench for Figure 8: macrobenchmark speedup over the
//! hand-optimized programs (CSDA, where the IRGenerator backend shines).

use std::time::Duration;

use carac::knobs::BackendKind;
use carac::EngineConfig;
use carac_analysis::{csda, Formulation};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_csda(c: &mut Criterion) {
    let workload = csda(300, 7);
    let mut group = c.benchmark_group("fig8_csda");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for (label, config) in [
        ("interpreted_hand_optimized", EngineConfig::interpreted()),
        (
            "jit_irgen_on_hand_optimized",
            EngineConfig::jit(BackendKind::IrGen, false),
        ),
        (
            "jit_lambda_blocking_on_hand_optimized",
            EngineConfig::jit(BackendKind::Lambda, false),
        ),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                workload
                    .measure(Formulation::HandOptimized, config)
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_csda);
criterion_main!(benches);
