//! Criterion bench for Figure 6: macrobenchmark speedup over the
//! unoptimized programs (small-scale Andersen points-to).
//!
//! The full figure is produced by the `fig6_macro_vs_unopt` binary; this
//! bench tracks the key comparison — interpreted unoptimized vs.
//! hand-optimized vs. the adaptive JIT — on one macro workload at a scale
//! small enough for continuous benchmarking.

use std::time::Duration;

use carac::knobs::BackendKind;
use carac::EngineConfig;
use carac_analysis::{andersen, Formulation};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_andersen(c: &mut Criterion) {
    let workload = andersen(40, 7);
    let mut group = c.benchmark_group("fig6_andersen");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    group.bench_function("interpreted_unoptimized", |b| {
        b.iter(|| {
            workload
                .measure(Formulation::Unoptimized, EngineConfig::interpreted())
                .unwrap()
        });
    });
    group.bench_function("interpreted_hand_optimized", |b| {
        b.iter(|| {
            workload
                .measure(Formulation::HandOptimized, EngineConfig::interpreted())
                .unwrap()
        });
    });
    group.bench_function("jit_lambda_blocking_on_unoptimized", |b| {
        b.iter(|| {
            workload
                .measure(
                    Formulation::Unoptimized,
                    EngineConfig::jit(BackendKind::Lambda, false),
                )
                .unwrap()
        });
    });
    group.bench_function("jit_irgen_on_unoptimized", |b| {
        b.iter(|| {
            workload
                .measure(
                    Formulation::Unoptimized,
                    EngineConfig::jit(BackendKind::IrGen, false),
                )
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_andersen);
criterion_main!(benches);
