//! Error type for the storage layer.

use std::fmt;

use crate::schema::RelId;

/// Errors produced by the relational layer.
///
/// The storage layer is intentionally strict: arity mismatches and unknown
/// relation identifiers are programming errors in the layers above, but we
/// surface them as recoverable errors so that the engine can report a
/// readable diagnostic instead of panicking inside a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A tuple with the wrong number of columns was inserted into a relation.
    ArityMismatch {
        /// Relation that rejected the tuple.
        relation: String,
        /// Arity declared in the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A relation id was used that has not been registered with the database.
    UnknownRelation(RelId),
    /// A relation name was looked up that has not been registered.
    UnknownRelationName(String),
    /// A column index outside the relation's arity was referenced.
    ColumnOutOfBounds {
        /// Relation on which the access happened.
        relation: String,
        /// Offending column index.
        column: usize,
        /// Arity of the relation.
        arity: usize,
    },
    /// Two relations that were expected to share a schema did not.
    SchemaMismatch {
        /// Description of the operation that failed.
        context: String,
    },
    /// A [`RowId`](crate::RowId) obtained under an earlier compaction
    /// generation was dereferenced after the pool renumbered its rows:
    /// the slot may now hold a different row (or none), so access is
    /// rejected instead of returning wrong data.
    StaleRowId {
        /// Relation on which the stale access happened.
        relation: String,
        /// The stale row id.
        row: u32,
        /// Generation the id was obtained under.
        held: u64,
        /// The pool's current generation.
        current: u64,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch on relation `{relation}`: expected {expected} columns, got {actual}"
            ),
            StorageError::UnknownRelation(id) => write!(f, "unknown relation id {id:?}"),
            StorageError::UnknownRelationName(name) => {
                write!(f, "unknown relation name `{name}`")
            }
            StorageError::ColumnOutOfBounds {
                relation,
                column,
                arity,
            } => write!(
                f,
                "column {column} out of bounds for relation `{relation}` of arity {arity}"
            ),
            StorageError::SchemaMismatch { context } => {
                write!(f, "schema mismatch: {context}")
            }
            StorageError::StaleRowId {
                relation,
                row,
                held,
                current,
            } => write!(
                f,
                "stale row id {row} on relation `{relation}`: obtained under compaction \
                 generation {held}, pool is now at generation {current}"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = StorageError::ArityMismatch {
            relation: "Edge".to_string(),
            expected: 2,
            actual: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains("Edge"));
        assert!(msg.contains('2'));
        assert!(msg.contains('3'));
    }

    #[test]
    fn unknown_relation_display() {
        let err = StorageError::UnknownRelation(RelId(42));
        assert!(err.to_string().contains("42"));
    }

    #[test]
    fn column_out_of_bounds_display() {
        let err = StorageError::ColumnOutOfBounds {
            relation: "R".into(),
            column: 5,
            arity: 2,
        };
        assert!(err.to_string().contains('5'));
        assert!(err.to_string().contains('2'));
    }
}
