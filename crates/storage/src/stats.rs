//! Runtime cardinality statistics.
//!
//! The adaptive optimizer never estimates cardinalities across iterations:
//! it reads the *actual* cardinalities of the derived and delta databases at
//! the moment the optimization is applied (paper §IV).  A [`StatsSnapshot`]
//! is that read — a cheap, immutable capture of per-relation sizes that can
//! be compared against a previous snapshot by the freshness test.

use crate::database::{DbKind, StorageManager};
use crate::schema::RelId;

/// Cardinalities of one relation across the three evaluation databases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RelationStats {
    /// Tuples in the derived (full) database.
    pub derived: usize,
    /// Tuples in the delta-known (previous iteration) database.
    pub delta_known: usize,
    /// Tuples in the delta-new (current iteration, write-only) database.
    pub delta_new: usize,
}

impl RelationStats {
    /// Cardinality of the database an atom reads from.
    pub fn for_db(&self, kind: DbKind) -> usize {
        match kind {
            DbKind::Derived => self.derived,
            DbKind::DeltaKnown => self.delta_known,
            DbKind::DeltaNew => self.delta_new,
        }
    }
}

/// An immutable capture of every relation's cardinalities at a point in
/// time, plus the iteration at which it was taken.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    per_relation: Vec<RelationStats>,
    /// Per relation: `(column, distinct values)` for every single-column
    /// index on the derived database's row pool.  The observed-selectivity
    /// input of the adaptive optimizer: an equality probe on an indexed
    /// column is expected to match `derived / distinct` rows, replacing the
    /// constant fallback factor.  Empty for snapshots built from raw stats.
    derived_index_distinct: Vec<Vec<(usize, usize)>>,
    /// Iteration counter supplied by the execution engine (0 before the
    /// first iteration).  Stored here so freshness decisions can reason
    /// about how stale a snapshot is.
    pub iteration: u64,
}

impl StatsSnapshot {
    /// Captures the current cardinalities from a storage manager.
    pub fn capture(storage: &StorageManager) -> StatsSnapshot {
        let n = storage.relation_count();
        let mut per_relation = Vec::with_capacity(n);
        let mut derived_index_distinct = Vec::with_capacity(n);
        for i in 0..n {
            let rel = RelId(i as u32);
            derived_index_distinct.push(
                storage
                    .db(DbKind::Derived)
                    .relation(rel)
                    .map(super::relation::Relation::indexed_distincts)
                    .unwrap_or_default(),
            );
            per_relation.push(RelationStats {
                derived: storage.db(DbKind::Derived).cardinality(rel),
                delta_known: storage.db(DbKind::DeltaKnown).cardinality(rel),
                delta_new: storage.db(DbKind::DeltaNew).cardinality(rel),
            });
        }
        StatsSnapshot {
            per_relation,
            derived_index_distinct,
            iteration: 0,
        }
    }

    /// Builds a snapshot directly from raw stats (used by optimizer tests
    /// that do not want to materialize relations).  No per-column index
    /// observations are attached; add them with
    /// [`StatsSnapshot::with_index_distinct`].
    pub fn from_stats(per_relation: Vec<RelationStats>, iteration: u64) -> Self {
        StatsSnapshot {
            per_relation,
            derived_index_distinct: Vec::new(),
            iteration,
        }
    }

    /// Records an observed `(column, distinct values)` pair for `rel`'s
    /// derived database (builder-style; tests and synthetic snapshots).
    pub fn with_index_distinct(mut self, rel: RelId, column: usize, distinct: usize) -> Self {
        if self.derived_index_distinct.len() <= rel.index() {
            self.derived_index_distinct
                .resize(rel.index() + 1, Vec::new());
        }
        self.derived_index_distinct[rel.index()].push((column, distinct));
        self
    }

    /// Distinct values observed by the single-column index on `(rel,
    /// column)` in the derived database; 0 when unindexed or unobserved.
    pub fn index_distinct(&self, rel: RelId, column: usize) -> usize {
        self.derived_index_distinct
            .get(rel.index())
            .and_then(|cols| cols.iter().find(|&&(c, _)| c == column))
            .map_or(0, |&(_, d)| d)
    }

    /// Stats for one relation; zeroes if the relation is unknown.
    pub fn relation(&self, rel: RelId) -> RelationStats {
        self.per_relation
            .get(rel.index())
            .copied()
            .unwrap_or_default()
    }

    /// Cardinality of `(rel, db)`.
    pub fn cardinality(&self, rel: RelId, db: DbKind) -> usize {
        self.relation(rel).for_db(db)
    }

    /// Number of relations captured.
    pub fn len(&self) -> usize {
        self.per_relation.len()
    }

    /// True when no relation was captured.
    pub fn is_empty(&self) -> bool {
        self.per_relation.is_empty()
    }

    /// Maximum relative change of any relation's derived or delta-known
    /// cardinality between `self` (older) and `newer`.
    ///
    /// The result is in `[0, +inf)`; `0` means nothing changed.  Relations
    /// growing from zero count as a change of `1.0` per new tuple bucket
    /// (i.e. "infinite" growth is capped to the new cardinality) so a single
    /// new fact in an empty relation still registers.
    pub fn max_relative_change(&self, newer: &StatsSnapshot) -> f64 {
        let mut max_change: f64 = 0.0;
        let n = self.len().max(newer.len());
        for i in 0..n {
            let rel = RelId(i as u32);
            let old = self.relation(rel);
            let new = newer.relation(rel);
            for db in [DbKind::Derived, DbKind::DeltaKnown] {
                let o = old.for_db(db) as f64;
                let nw = new.for_db(db) as f64;
                let change = if o == 0.0 { nw } else { ((nw - o) / o).abs() };
                if change > max_change {
                    max_change = change;
                }
            }
        }
        max_change
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    #[test]
    fn capture_reads_all_databases() {
        let mut sm = StorageManager::new(true);
        let edge = sm.register("Edge", 2, true);
        let path = sm.register("Path", 2, false);
        sm.insert_fact(edge, Tuple::pair(1, 2)).unwrap();
        sm.insert_derived(path, Tuple::pair(1, 2)).unwrap();

        let snap = sm.stats();
        assert_eq!(snap.cardinality(edge, DbKind::Derived), 1);
        assert_eq!(snap.cardinality(edge, DbKind::DeltaKnown), 1);
        assert_eq!(snap.cardinality(path, DbKind::DeltaNew), 1);
        assert_eq!(snap.cardinality(path, DbKind::Derived), 0);
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn unknown_relation_reads_as_zero() {
        let snap = StatsSnapshot::default();
        assert_eq!(snap.cardinality(RelId(7), DbKind::Derived), 0);
        assert_eq!(snap.index_distinct(RelId(7), 0), 0);
    }

    #[test]
    fn capture_records_per_column_index_distinct() {
        let mut sm = StorageManager::new(true);
        let edge = sm.register("Edge", 2, true);
        sm.add_index(edge, 0).unwrap();
        sm.add_index(edge, 1).unwrap();
        // 3 distinct sources, 6 distinct targets.
        for i in 0..6u32 {
            sm.insert_fact(edge, Tuple::pair(i % 3, 10 + i)).unwrap();
        }
        let snap = sm.stats();
        assert_eq!(snap.index_distinct(edge, 0), 3);
        assert_eq!(snap.index_distinct(edge, 1), 6);
        // Unindexed / unknown columns read as unobserved.
        assert_eq!(snap.index_distinct(edge, 2), 0);
    }

    #[test]
    fn relative_change_detects_growth() {
        let old = StatsSnapshot::from_stats(
            vec![RelationStats {
                derived: 100,
                delta_known: 10,
                ..Default::default()
            }],
            1,
        );
        let new = StatsSnapshot::from_stats(
            vec![RelationStats {
                derived: 150,
                delta_known: 10,
                ..Default::default()
            }],
            2,
        );
        let change = old.max_relative_change(&new);
        assert!((change - 0.5).abs() < 1e-9);
    }

    #[test]
    fn relative_change_from_zero_counts_new_tuples() {
        let old = StatsSnapshot::from_stats(vec![RelationStats::default()], 0);
        let new = StatsSnapshot::from_stats(
            vec![RelationStats {
                derived: 3,
                ..Default::default()
            }],
            1,
        );
        assert!(old.max_relative_change(&new) >= 3.0);
    }

    #[test]
    fn identical_snapshots_have_zero_change() {
        let snap = StatsSnapshot::from_stats(
            vec![RelationStats {
                derived: 5,
                delta_known: 5,
                delta_new: 5,
            }],
            3,
        );
        assert_eq!(snap.max_relative_change(&snap.clone()), 0.0);
    }
}
