//! Databases and the semi-naive storage manager.
//!
//! Bottom-up semi-naive evaluation (paper §II-A, §V-D) needs three databases
//! per relation:
//!
//! * **derived** — every fact discovered so far (plus the EDB facts),
//! * **delta-known** — the facts discovered in the *previous* iteration
//!   (read-only during the current iteration),
//! * **delta-new** — the facts discovered in the *current* iteration
//!   (write-only during the current iteration).
//!
//! Splitting the delta into a read-only and a write-only half is what lets
//! any IROp boundary act as a safe point and enables asynchronous
//! compilation: no operator ever observes a relation it is concurrently
//! writing.  At the end of each iteration [`StorageManager::swap_and_clear`]
//! merges delta-new into derived, swaps the two delta databases and clears
//! the new write-side.

use crate::error::StorageError;
use crate::hasher::FxHashMap;
use crate::relation::Relation;
use crate::schema::{RelId, RelationSchema};
use crate::stats::StatsSnapshot;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// Which of the three evaluation databases an operator reads from or writes
/// to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbKind {
    /// All facts discovered so far (including EDB facts).
    Derived,
    /// Facts discovered in the previous iteration (read side of the delta).
    DeltaKnown,
    /// Facts discovered in the current iteration (write side of the delta).
    DeltaNew,
}

impl DbKind {
    /// All database kinds, useful for exhaustive iteration in tests.
    pub const ALL: [DbKind; 3] = [DbKind::Derived, DbKind::DeltaKnown, DbKind::DeltaNew];
}

/// A set of relations addressed by [`RelId`].
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: Vec<Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Registers a relation.  Ids must be registered densely in order
    /// (0, 1, 2, ...), which the frontend guarantees.
    pub fn register(&mut self, schema: RelationSchema) {
        debug_assert_eq!(
            schema.id.index(),
            self.relations.len(),
            "relations must be registered in id order"
        );
        self.relations.push(Relation::new(schema));
    }

    /// Number of registered relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Immutable access to a relation.
    pub fn relation(&self, id: RelId) -> Result<&Relation> {
        self.relations
            .get(id.index())
            .ok_or(StorageError::UnknownRelation(id))
    }

    /// Mutable access to a relation.
    pub fn relation_mut(&mut self, id: RelId) -> Result<&mut Relation> {
        self.relations
            .get_mut(id.index())
            .ok_or(StorageError::UnknownRelation(id))
    }

    /// Iterator over all relations.
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.iter()
    }

    /// Cardinality of a relation, 0 if unknown (defensive for stats paths).
    pub fn cardinality(&self, id: RelId) -> usize {
        self.relations.get(id.index()).map_or(0, Relation::len)
    }
}

/// The storage manager owns the three evaluation databases plus the schema
/// catalog, and implements the iteration-boundary operations used by the
/// execution layer.
#[derive(Debug, Clone)]
pub struct StorageManager {
    schemas: Vec<RelationSchema>,
    derived: Database,
    delta_known: Database,
    delta_new: Database,
    /// Whether hash indexes are maintained (the indexed/unindexed axis of
    /// the evaluation).
    use_indexes: bool,
}

impl StorageManager {
    /// Creates an empty storage manager.  `use_indexes` controls whether
    /// join-key indexes requested via [`StorageManager::add_index`] are
    /// honoured.
    pub fn new(use_indexes: bool) -> Self {
        StorageManager {
            schemas: Vec::new(),
            derived: Database::new(),
            delta_known: Database::new(),
            delta_new: Database::new(),
            use_indexes,
        }
    }

    /// Whether indexes are enabled.
    pub fn indexes_enabled(&self) -> bool {
        self.use_indexes
    }

    /// Registers a relation in all three databases and returns its id.
    pub fn register(&mut self, name: impl Into<String>, arity: usize, is_edb: bool) -> RelId {
        let id = RelId(u32::try_from(self.schemas.len()).expect("too many relations"));
        let schema = RelationSchema::new(id, name, arity, is_edb);
        self.schemas.push(schema.clone());
        self.derived.register(schema.clone());
        self.delta_known.register(schema.clone());
        self.delta_new.register(schema);
        id
    }

    /// The schema catalog.
    pub fn schemas(&self) -> &[RelationSchema] {
        &self.schemas
    }

    /// Looks up a schema by id.
    pub fn schema(&self, id: RelId) -> Result<&RelationSchema> {
        self.schemas
            .get(id.index())
            .ok_or(StorageError::UnknownRelation(id))
    }

    /// Looks up a relation id by name.
    pub fn rel_by_name(&self, name: &str) -> Result<RelId> {
        self.schemas
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.id)
            .ok_or_else(|| StorageError::UnknownRelationName(name.to_string()))
    }

    /// Number of registered relations.
    pub fn relation_count(&self) -> usize {
        self.schemas.len()
    }

    /// Requests a hash index on `(rel, column)` in the derived and
    /// delta-known databases (the two read-side databases).  No-op when the
    /// manager was created with indexes disabled.
    pub fn add_index(&mut self, rel: RelId, column: usize) -> Result<()> {
        if !self.use_indexes {
            return Ok(());
        }
        self.derived.relation_mut(rel)?.add_index(column)?;
        self.delta_known.relation_mut(rel)?.add_index(column)?;
        Ok(())
    }

    /// Requests a composite hash index on `(rel, columns)` in the two
    /// read-side databases.  No-op when indexes are disabled.
    pub fn add_composite_index(&mut self, rel: RelId, columns: &[usize]) -> Result<()> {
        if !self.use_indexes {
            return Ok(());
        }
        self.derived
            .relation_mut(rel)?
            .add_composite_index(columns)?;
        self.delta_known
            .relation_mut(rel)?
            .add_composite_index(columns)?;
        Ok(())
    }

    /// Shards every relation (in all three databases) into `shard_count`
    /// hash partitions keyed on the first column, the default join key.
    /// `shard_count <= 1` disables sharding.  Nullary relations are left
    /// unsharded — there is nothing to partition by.
    ///
    /// Sharding only adds a partition view over the row offsets; scans,
    /// lookups and insertion order are unaffected, so serial evaluation on a
    /// sharded manager is identical to evaluation on an unsharded one.
    pub fn set_sharding(&mut self, shard_count: usize) -> Result<()> {
        for db in [
            &mut self.derived,
            &mut self.delta_known,
            &mut self.delta_new,
        ] {
            for schema in &self.schemas {
                if schema.arity == 0 {
                    continue;
                }
                db.relation_mut(schema.id)?.set_sharding(shard_count, 0)?;
            }
        }
        Ok(())
    }

    /// The shard count configured for `rel` (1 when unsharded).
    pub fn shard_count(&self, rel: RelId) -> usize {
        self.derived.relation(rel).map_or(1, Relation::shard_count)
    }

    /// Read access to one of the three databases.
    pub fn db(&self, kind: DbKind) -> &Database {
        match kind {
            DbKind::Derived => &self.derived,
            DbKind::DeltaKnown => &self.delta_known,
            DbKind::DeltaNew => &self.delta_new,
        }
    }

    /// Mutable access to one of the three databases.
    pub fn db_mut(&mut self, kind: DbKind) -> &mut Database {
        match kind {
            DbKind::Derived => &mut self.derived,
            DbKind::DeltaKnown => &mut self.delta_known,
            DbKind::DeltaNew => &mut self.delta_new,
        }
    }

    /// Convenience accessor: relation `rel` in database `kind`.
    pub fn relation(&self, kind: DbKind, rel: RelId) -> Result<&Relation> {
        self.db(kind).relation(rel)
    }

    /// Inserts an EDB fact: the tuple lands in both the derived database and
    /// the delta-known database so that the first semi-naive iteration sees
    /// every base fact as "new".
    pub fn insert_fact(&mut self, rel: RelId, tuple: Tuple) -> Result<bool> {
        self.insert_fact_row(rel, tuple.values())
    }

    /// [`StorageManager::insert_fact`] over a raw row slice: one pooled
    /// append per database, no tuple clones anywhere on the path.
    pub fn insert_fact_row(&mut self, rel: RelId, values: &[Value]) -> Result<bool> {
        let fresh = self.derived.relation_mut(rel)?.insert_row(values)?;
        if fresh {
            self.delta_known.relation_mut(rel)?.insert_row(values)?;
        }
        Ok(fresh)
    }

    /// Inserts a derived fact produced during the current iteration.  The
    /// fact is recorded in delta-new only if it is not already present in
    /// the derived database (semi-naive deduplication); the derived database
    /// itself is only extended at the next [`swap_and_clear`].
    ///
    /// Returns `true` if the fact was genuinely new.
    ///
    /// [`swap_and_clear`]: StorageManager::swap_and_clear
    pub fn insert_derived(&mut self, rel: RelId, tuple: Tuple) -> Result<bool> {
        self.insert_derived_row(rel, tuple.values())
    }

    /// [`StorageManager::insert_derived`] over a raw row slice — the form
    /// the join kernels emit through.  The row hash is computed once and
    /// shared between the derived-database membership test and the
    /// delta-new insert.
    ///
    /// Every call records one *derivation*: a fact already present (in
    /// derived or in this iteration's delta-new) has its support count
    /// incremented instead of being stored again, so after a single
    /// evaluation pass the count equals the number of distinct derivations —
    /// the quantity the incremental subsystem's counted-deletion fast path
    /// consumes for non-recursive strata.  (Recursive strata re-emit
    /// derivations across delta variants, so their counts over-approximate
    /// and the incremental subsystem uses delete/re-derive there instead.)
    pub fn insert_derived_row(&mut self, rel: RelId, values: &[Value]) -> Result<bool> {
        let hash = crate::pool::row_hash(values);
        let derived = self.derived.relation_mut(rel)?;
        if values.len() != derived.arity() {
            return Err(StorageError::ArityMismatch {
                relation: derived.name().to_string(),
                expected: derived.arity(),
                actual: values.len(),
            });
        }
        if let Some(row) = derived.find_row_hashed(values, hash) {
            derived.add_support(row, 1);
            return Ok(false);
        }
        let delta_new = self.delta_new.relation_mut(rel)?;
        match delta_new.insert_row_hashed_id(values, hash) {
            Some(_) => Ok(true),
            None => {
                if let Some(row) = delta_new.find_row_hashed(values, hash) {
                    delta_new.add_support(row, 1);
                }
                Ok(false)
            }
        }
    }

    /// Retracts an EDB (or base) fact from the derived database, unlinking
    /// it from every index and shard partition.  Returns `true` if the fact
    /// was present.  Derived consequences are *not* touched — maintaining
    /// them is the job of the incremental subsystem in `carac-exec`.
    pub fn retract_fact_row(&mut self, rel: RelId, values: &[Value]) -> Result<bool> {
        self.derived.relation_mut(rel)?.retract_row(values)
    }

    /// Retracts a derived fact from the derived database (the physical side
    /// of over-deletion).  Identical to [`StorageManager::retract_fact_row`];
    /// named separately so call sites document intent.
    pub fn retract_derived_row(&mut self, rel: RelId, values: &[Value]) -> Result<bool> {
        self.derived.relation_mut(rel)?.retract_row(values)
    }

    /// Iteration boundary: merge delta-new into derived, move delta-new into
    /// delta-known (replacing the previous contents) and leave delta-new
    /// empty for the next iteration.
    ///
    /// The merge appends rows straight from delta-new's pool, reusing its
    /// retained row hashes; the rotation itself is an O(1) swap of pool
    /// internals (no row is copied, reinserted or rehashed).
    ///
    /// Returns the number of facts merged into the derived database across
    /// all listed relations; the caller uses "0" as the fixpoint signal.
    pub fn swap_and_clear(&mut self, relations: &[RelId]) -> Result<usize> {
        let mut merged = 0;
        for &rel in relations {
            // Merge the freshly discovered facts into the derived database
            // (split field borrows: derived is written, delta-new only read).
            {
                let (derived_db, new_db) = (&mut self.derived, &self.delta_new);
                let new_rel = new_db.relation(rel)?;
                merged += derived_db.relation_mut(rel)?.union_in_place(new_rel)?;
            }
            // delta-known <- delta-new ; delta-new <- empty.  The swap moves
            // the pools in O(1); only the (already-consumed) old read side
            // is cleared, and `clear` keeps its capacity for the next fill.
            let (known_db, new_db) = (&mut self.delta_known, &mut self.delta_new);
            let known = known_db.relation_mut(rel)?;
            let new = new_db.relation_mut(rel)?;
            known.clear();
            known.swap_contents(new);
        }
        Ok(merged)
    }

    /// Whether every listed relation's delta-known database is empty — the
    /// fixpoint test used by `DoWhileOp`.
    pub fn deltas_empty(&self, relations: &[RelId]) -> Result<bool> {
        for &rel in relations {
            if !self.delta_known.relation(rel)?.is_empty() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Clears the delta databases of the given relations (used when
    /// re-running a program on the same manager).
    pub fn clear_deltas(&mut self, relations: &[RelId]) -> Result<()> {
        for &rel in relations {
            self.delta_known.relation_mut(rel)?.clear();
            self.delta_new.relation_mut(rel)?.clear();
        }
        Ok(())
    }

    /// Stratum-boundary aggregation: groups the rows of `input`'s *derived*
    /// database by every column **not** listed in `aggs`, folds the listed
    /// columns with their aggregation functions, and inserts one result row
    /// per group into `output`'s delta-new database (deduplicated against
    /// derived, like every other derived insert).
    ///
    /// The output row layout matches the input layout: group columns keep
    /// their value, aggregate columns carry the finalized aggregate.  Group
    /// keys are hashed through the same per-row hash unit as the row pool
    /// ([`crate::pool::row_hash`]), with full-key equality confirmation on
    /// collision.
    ///
    /// Returns `(groups_emitted, rows_inserted)`.
    pub fn aggregate_into(
        &mut self,
        input: RelId,
        output: RelId,
        aggs: &[(usize, crate::ops::AggFunc)],
    ) -> Result<(u64, u64)> {
        let (group_cols, groups, order) = self.aggregate_groups(input, output, aggs)?;
        let arity = self.derived.relation(input)?.arity();

        // Emit one row per group, in first-seen group order (deterministic
        // for a given input row order).
        let mut out_row = vec![Value::default(); arity];
        let mut emitted = 0u64;
        let mut inserted = 0u64;
        for (hash, slot) in order {
            let (key, accs) = &groups[&hash][slot];
            for (i, &c) in group_cols.iter().enumerate() {
                out_row[c] = key[i];
            }
            for (i, &(col, func)) in aggs.iter().enumerate() {
                out_row[col] = func.finish(accs[i]);
            }
            emitted += 1;
            if self.insert_derived_row(output, &out_row)? {
                inserted += 1;
            }
        }
        Ok((emitted, inserted))
    }

    /// In-recursion (monotone lattice) aggregation: like
    /// [`StorageManager::aggregate_into`], but the fold runs *inside* the
    /// input's fixpoint loop, so `output` may already hold a previous
    /// optimum per group.  For each group the freshly folded row is compared
    /// against the group's existing derived row (the output relation is
    /// written only by its fold, so each group key has at most one):
    ///
    /// * unchanged groups emit nothing — they stay out of the delta and do
    ///   not re-drive the recursion;
    /// * improved groups retract the old optimum from the derived database
    ///   and insert the new row into delta-new, which re-enters the loop at
    ///   the next iteration boundary.
    ///
    /// Monotonicity of the four fold functions over a growing input set
    /// (min only decreases, max/sum/count only increase, the latter two
    /// saturating) guarantees a retracted value is never re-derived and the
    /// per-group value chain is finite, so the fixpoint terminates.
    ///
    /// Returns `(groups_changed, rows_inserted)`.
    pub fn aggregate_lattice_into(
        &mut self,
        input: RelId,
        output: RelId,
        aggs: &[(usize, crate::ops::AggFunc)],
    ) -> Result<(u64, u64)> {
        let (group_cols, groups, order) = self.aggregate_groups(input, output, aggs)?;
        let arity = self.derived.relation(input)?.arity();

        // Current optimum per group, read from the output's derived rows.
        type OutBucket = Vec<(Vec<Value>, Vec<Value>)>;
        let mut current: FxHashMap<u64, OutBucket> = FxHashMap::default();
        {
            let output_rel = self.derived.relation(output)?;
            let mut key_buf: Vec<Value> = Vec::with_capacity(group_cols.len());
            for row in output_rel.iter_rows() {
                key_buf.clear();
                key_buf.extend(group_cols.iter().map(|&c| row[c]));
                let hash = crate::pool::row_hash(&key_buf);
                current
                    .entry(hash)
                    .or_default()
                    .push((key_buf.clone(), row.to_vec()));
            }
        }

        let mut out_row = vec![Value::default(); arity];
        let mut changed = 0u64;
        let mut inserted = 0u64;
        for (hash, slot) in order {
            let (key, accs) = &groups[&hash][slot];
            for (i, &c) in group_cols.iter().enumerate() {
                out_row[c] = key[i];
            }
            for (i, &(col, func)) in aggs.iter().enumerate() {
                out_row[col] = func.finish(accs[i]);
            }
            let existing = current
                .get(&hash)
                .and_then(|bucket| bucket.iter().find(|(k, _)| k == key))
                .map(|(_, row)| row.clone());
            match existing {
                Some(old) if old == out_row => {}
                Some(old) => {
                    self.retract_derived_row(output, &old)?;
                    changed += 1;
                    if self.insert_derived_row(output, &out_row)? {
                        inserted += 1;
                    }
                }
                None => {
                    changed += 1;
                    if self.insert_derived_row(output, &out_row)? {
                        inserted += 1;
                    }
                }
            }
        }
        Ok((changed, inserted))
    }

    /// Shared grouping pass of the two aggregation entry points: validates
    /// shapes, then groups `input`'s derived rows by the hash of their
    /// group-key columns (buckets confirm by full-key equality, so hash
    /// collisions stay correct) and folds the aggregate columns.  Returns
    /// the group columns, the folded buckets, and the first-seen group
    /// order.
    #[allow(clippy::type_complexity)]
    fn aggregate_groups(
        &self,
        input: RelId,
        output: RelId,
        aggs: &[(usize, crate::ops::AggFunc)],
    ) -> Result<(
        Vec<usize>,
        FxHashMap<u64, Vec<(Vec<Value>, Vec<u64>)>>,
        Vec<(u64, usize)>,
    )> {
        use crate::ops::AggFunc;

        let input_rel = self.derived.relation(input)?;
        let arity = input_rel.arity();
        {
            let output_rel = self.derived.relation(output)?;
            if output_rel.arity() != arity {
                return Err(StorageError::ArityMismatch {
                    relation: output_rel.name().to_string(),
                    expected: output_rel.arity(),
                    actual: arity,
                });
            }
        }
        let mut is_agg = vec![false; arity];
        for &(col, _) in aggs {
            if col >= arity {
                return Err(StorageError::ColumnOutOfBounds {
                    relation: input_rel.name().to_string(),
                    column: col,
                    arity,
                });
            }
            is_agg[col] = true;
        }
        let group_cols: Vec<usize> = (0..arity).filter(|&c| !is_agg[c]).collect();

        type Bucket = Vec<(Vec<Value>, Vec<u64>)>;
        let mut groups: FxHashMap<u64, Bucket> = FxHashMap::default();
        let mut order: Vec<(u64, usize)> = Vec::new();
        let mut key_buf: Vec<Value> = Vec::with_capacity(group_cols.len());
        for row in input_rel.iter_rows() {
            key_buf.clear();
            key_buf.extend(group_cols.iter().map(|&c| row[c]));
            let hash = crate::pool::row_hash(&key_buf);
            let bucket = groups.entry(hash).or_default();
            let slot = match bucket.iter().position(|(k, _)| k == &key_buf) {
                Some(i) => i,
                None => {
                    let accs: Vec<u64> = aggs
                        .iter()
                        .map(|&(_, f): &(usize, AggFunc)| f.init())
                        .collect();
                    bucket.push((key_buf.clone(), accs));
                    order.push((hash, bucket.len() - 1));
                    bucket.len() - 1
                }
            };
            let accs = &mut bucket[slot].1;
            for (i, &(col, func)) in aggs.iter().enumerate() {
                accs[i] = func.fold(accs[i], row[col]);
            }
        }
        Ok((group_cols, groups, order))
    }

    /// Mutable access to `rel`'s derived relation — the restore path of the
    /// snapshot subsystem rebuilds rows, support counts and the generation
    /// counter through this.
    pub(crate) fn derived_relation_mut(&mut self, rel: RelId) -> Result<&mut Relation> {
        self.derived.relation_mut(rel)
    }

    /// The compaction generation of `rel`'s derived row pool (see
    /// [`Relation::generation`]): callers holding [`crate::RowId`]s across
    /// statements snapshot this and validate it on re-access
    /// ([`Relation::row_checked`]) so a [`StorageManager::compact_derived`]
    /// in between surfaces as a typed [`StorageError::StaleRowId`] instead
    /// of wrong rows.
    pub fn derived_generation(&self, rel: RelId) -> Result<u64> {
        Ok(self.derived.relation(rel)?.generation())
    }

    /// Compacts every derived relation whose tombstone count warrants it
    /// (more dead slots than live rows, with a small absolute floor so tiny
    /// relations never bother).  Returns the number of relations compacted;
    /// each compaction bumps that relation's generation counter
    /// ([`StorageManager::derived_generation`]), so stale-id access is
    /// detectable.  Only safe at points where no [`crate::RowId`] into the
    /// derived database is held across the call — the incremental engine
    /// invokes this between update batches, after every watermark and
    /// candidate set of the batch has been consumed.
    pub fn compact_derived(&mut self) -> usize {
        let mut compacted = 0;
        for schema in &self.schemas {
            if let Ok(rel) = self.derived.relation_mut(schema.id) {
                if rel.dead_count() > rel.len().max(64) {
                    rel.compact();
                    compacted += 1;
                }
            }
        }
        compacted
    }

    /// Snapshot of current cardinalities for the optimizer.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot::capture(self)
    }

    /// Aggregate row-pool statistics (rows, resident bytes, dedup-table
    /// rehashes) across every relation of all three evaluation databases —
    /// the numbers the benchmark harness reports to make the flat-pool
    /// memory behavior measurable.
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        [&self.derived, &self.delta_known, &self.delta_new]
            .into_iter()
            .flat_map(Database::relations)
            .map(Relation::pool_stats)
            .fold(
                crate::pool::PoolStats::default(),
                crate::pool::PoolStats::merge,
            )
    }

    /// Total number of derived tuples across all relations (used by tests
    /// and by the benchmark harness to validate result sizes).
    pub fn total_derived(&self) -> usize {
        self.derived.relations().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> (StorageManager, RelId, RelId) {
        let mut sm = StorageManager::new(true);
        let edge = sm.register("Edge", 2, true);
        let path = sm.register("Path", 2, false);
        (sm, edge, path)
    }

    #[test]
    fn register_assigns_dense_ids() {
        let (sm, edge, path) = manager();
        assert_eq!(edge, RelId(0));
        assert_eq!(path, RelId(1));
        assert_eq!(sm.relation_count(), 2);
        assert_eq!(sm.rel_by_name("Edge").unwrap(), edge);
        assert!(sm.rel_by_name("Missing").is_err());
    }

    #[test]
    fn insert_fact_populates_derived_and_delta_known() {
        let (mut sm, edge, _) = manager();
        assert!(sm.insert_fact(edge, Tuple::pair(1, 2)).unwrap());
        assert!(!sm.insert_fact(edge, Tuple::pair(1, 2)).unwrap());
        assert_eq!(sm.relation(DbKind::Derived, edge).unwrap().len(), 1);
        assert_eq!(sm.relation(DbKind::DeltaKnown, edge).unwrap().len(), 1);
        assert_eq!(sm.relation(DbKind::DeltaNew, edge).unwrap().len(), 0);
    }

    #[test]
    fn insert_derived_dedups_against_derived() {
        let (mut sm, _, path) = manager();
        assert!(sm.insert_derived(path, Tuple::pair(1, 2)).unwrap());
        // Not yet merged into derived, so the same tuple dedups against
        // delta-new instead.
        assert!(!sm.insert_derived(path, Tuple::pair(1, 2)).unwrap());
        sm.swap_and_clear(&[path]).unwrap();
        // Now it is in derived, so re-deriving it is a no-op.
        assert!(!sm.insert_derived(path, Tuple::pair(1, 2)).unwrap());
    }

    #[test]
    fn swap_and_clear_merges_and_swaps() {
        let (mut sm, _, path) = manager();
        sm.insert_derived(path, Tuple::pair(1, 2)).unwrap();
        sm.insert_derived(path, Tuple::pair(2, 3)).unwrap();
        let merged = sm.swap_and_clear(&[path]).unwrap();
        assert_eq!(merged, 2);
        assert_eq!(sm.relation(DbKind::Derived, path).unwrap().len(), 2);
        assert_eq!(sm.relation(DbKind::DeltaKnown, path).unwrap().len(), 2);
        assert!(sm.relation(DbKind::DeltaNew, path).unwrap().is_empty());

        // A second boundary with nothing new drains the delta.
        let merged = sm.swap_and_clear(&[path]).unwrap();
        assert_eq!(merged, 0);
        assert!(sm.deltas_empty(&[path]).unwrap());
    }

    #[test]
    fn swap_and_clear_rotates_pools_in_place() {
        // The O(1)-rotation contract at the manager level: the delta-new
        // pool moves wholesale into delta-known — identical stats object
        // (rows, resident bytes, lifetime rehash count), so nothing was
        // copied, reinserted or rehashed on the way.
        let (mut sm, _, path) = manager();
        for i in 0..500u32 {
            sm.insert_derived(path, Tuple::pair(i, i + 1)).unwrap();
        }
        let before = sm.relation(DbKind::DeltaNew, path).unwrap().pool_stats();
        assert_eq!(before.rows, 500);
        let merged = sm.swap_and_clear(&[path]).unwrap();
        assert_eq!(merged, 500);
        let after = sm.relation(DbKind::DeltaKnown, path).unwrap().pool_stats();
        assert_eq!(before, after);
        assert!(sm.relation(DbKind::DeltaNew, path).unwrap().is_empty());
        assert_eq!(sm.relation(DbKind::Derived, path).unwrap().len(), 500);
    }

    #[test]
    fn insert_derived_counts_support_per_derivation() {
        let (mut sm, _, path) = manager();
        // First emission creates the fact in delta-new with support 1; a
        // duplicate emission in the same iteration bumps the delta-new copy.
        assert!(sm.insert_derived(path, Tuple::pair(1, 2)).unwrap());
        assert!(!sm.insert_derived(path, Tuple::pair(1, 2)).unwrap());
        sm.swap_and_clear(&[path]).unwrap();
        let derived = sm.relation(DbKind::Derived, path).unwrap();
        let row = derived
            .find_row_hashed(
                &[Value::int(1), Value::int(2)],
                crate::pool::row_hash(&[Value::int(1), Value::int(2)]),
            )
            .unwrap();
        assert_eq!(derived.support_of(row), 2);
        // A re-derivation after the merge bumps the derived copy.
        assert!(!sm.insert_derived(path, Tuple::pair(1, 2)).unwrap());
        assert_eq!(
            sm.relation(DbKind::Derived, path).unwrap().support_of(row),
            3
        );
    }

    #[test]
    fn retract_fact_removes_from_derived_only() {
        let (mut sm, edge, _) = manager();
        sm.insert_fact(edge, Tuple::pair(1, 2)).unwrap();
        sm.insert_fact(edge, Tuple::pair(2, 3)).unwrap();
        assert!(sm
            .retract_fact_row(edge, &[Value::int(1), Value::int(2)])
            .unwrap());
        assert!(!sm
            .retract_fact_row(edge, &[Value::int(1), Value::int(2)])
            .unwrap());
        assert_eq!(sm.relation(DbKind::Derived, edge).unwrap().len(), 1);
        // The delta copy made by insert_fact is untouched (callers clear
        // deltas before incremental maintenance).
        assert_eq!(sm.relation(DbKind::DeltaKnown, edge).unwrap().len(), 2);
    }

    #[test]
    fn indexes_can_be_disabled_globally() {
        let mut sm = StorageManager::new(false);
        let edge = sm.register("Edge", 2, true);
        sm.add_index(edge, 0).unwrap();
        assert!(!sm.relation(DbKind::Derived, edge).unwrap().has_index(0));

        let mut sm_on = StorageManager::new(true);
        let edge = sm_on.register("Edge", 2, true);
        sm_on.add_index(edge, 0).unwrap();
        assert!(sm_on.relation(DbKind::Derived, edge).unwrap().has_index(0));
    }

    #[test]
    fn sharding_applies_to_all_databases_and_survives_swap() {
        let (mut sm, edge, path) = manager();
        sm.set_sharding(4).unwrap();
        assert_eq!(sm.shard_count(edge), 4);
        for i in 0..32u32 {
            sm.insert_fact(edge, Tuple::pair(i, i + 1)).unwrap();
            sm.insert_derived(path, Tuple::pair(i, i + 1)).unwrap();
        }
        let delta = sm.relation(DbKind::DeltaNew, path).unwrap();
        let partitioned: usize = (0..4).map(|s| delta.shard_rows(s).len()).sum();
        assert_eq!(partitioned, 32);
        sm.swap_and_clear(&[path]).unwrap();
        // After the swap the read side carries the partitions...
        let known = sm.relation(DbKind::DeltaKnown, path).unwrap();
        let partitioned: usize = (0..4).map(|s| known.shard_rows(s).len()).sum();
        assert_eq!(partitioned, 32);
        // ...and the fresh write side is empty but still sharded.
        let new = sm.relation(DbKind::DeltaNew, path).unwrap();
        assert!(new.is_empty());
        assert_eq!(new.shard_count(), 4);
    }

    #[test]
    fn composite_index_requests_respect_the_global_toggle() {
        let (mut sm, edge, _) = manager();
        sm.add_composite_index(edge, &[0, 1]).unwrap();
        assert!(sm
            .relation(DbKind::Derived, edge)
            .unwrap()
            .has_composite_index(&[0, 1]));

        let mut off = StorageManager::new(false);
        let edge = off.register("Edge", 2, true);
        off.add_composite_index(edge, &[0, 1]).unwrap();
        assert!(!off
            .relation(DbKind::Derived, edge)
            .unwrap()
            .has_composite_index(&[0, 1]));
    }

    #[test]
    fn clear_deltas_resets_only_deltas() {
        let (mut sm, edge, path) = manager();
        sm.insert_fact(edge, Tuple::pair(1, 2)).unwrap();
        sm.insert_derived(path, Tuple::pair(1, 2)).unwrap();
        sm.clear_deltas(&[edge, path]).unwrap();
        assert!(sm.deltas_empty(&[edge, path]).unwrap());
        assert_eq!(sm.relation(DbKind::Derived, edge).unwrap().len(), 1);
    }

    #[test]
    fn aggregate_into_groups_and_folds() {
        use crate::ops::AggFunc;
        let mut sm = StorageManager::new(true);
        let input = sm.register("DegIn", 2, false);
        let output = sm.register("Deg", 2, false);
        // Rows (x, y): group by column 0, count column 1.
        for (x, y) in [(1, 10), (1, 11), (1, 12), (2, 10), (3, 30)] {
            sm.insert_fact(input, Tuple::pair(x, y)).unwrap();
        }
        let (emitted, inserted) = sm
            .aggregate_into(input, output, &[(1, AggFunc::Count)])
            .unwrap();
        assert_eq!(emitted, 3);
        assert_eq!(inserted, 3);
        let out = sm.relation(DbKind::DeltaNew, output).unwrap();
        assert!(out.contains(&Tuple::pair(1, 3)));
        assert!(out.contains(&Tuple::pair(2, 1)));
        assert!(out.contains(&Tuple::pair(3, 1)));
    }

    #[test]
    fn aggregate_min_max_sum() {
        use crate::ops::AggFunc;
        let mut sm = StorageManager::new(false);
        let input = sm.register("In", 2, false);
        for (g, v) in [(7, 5), (7, 2), (7, 9), (8, 4)] {
            sm.insert_fact(input, Tuple::pair(g, v)).unwrap();
        }
        for (func, a, b) in [
            (AggFunc::Min, 2, 4),
            (AggFunc::Max, 9, 4),
            (AggFunc::Sum, 16, 4),
        ] {
            let output = sm.register(format!("Out{}", func.name()), 2, false);
            sm.aggregate_into(input, output, &[(1, func)]).unwrap();
            let out = sm.relation(DbKind::DeltaNew, output).unwrap();
            assert!(out.contains(&Tuple::pair(7, a)), "{func:?}");
            assert!(out.contains(&Tuple::pair(8, b)), "{func:?}");
            assert_eq!(out.len(), 2);
        }
    }

    #[test]
    fn aggregate_lattice_emits_only_improved_groups() {
        use crate::ops::AggFunc;
        let mut sm = StorageManager::new(true);
        let input = sm.register("DistIn", 2, false);
        let output = sm.register("Dist", 2, false);
        // First fold: group 1 folds to min 5 and enters the delta.
        sm.insert_fact(input, Tuple::pair(1, 5)).unwrap();
        let (changed, inserted) = sm
            .aggregate_lattice_into(input, output, &[(1, AggFunc::Min)])
            .unwrap();
        assert_eq!((changed, inserted), (1, 1));
        sm.swap_and_clear(&[output]).unwrap();
        // Unchanged input: the group stays out of the delta.
        let (changed, _) = sm
            .aggregate_lattice_into(input, output, &[(1, AggFunc::Min)])
            .unwrap();
        assert_eq!(changed, 0);
        assert!(sm.relation(DbKind::DeltaNew, output).unwrap().is_empty());
        // A strictly better row: the old optimum is retracted and the
        // improved row re-enters the delta.
        sm.insert_fact(input, Tuple::pair(1, 3)).unwrap();
        let (changed, inserted) = sm
            .aggregate_lattice_into(input, output, &[(1, AggFunc::Min)])
            .unwrap();
        assert_eq!((changed, inserted), (1, 1));
        sm.swap_and_clear(&[output]).unwrap();
        let derived = sm.relation(DbKind::Derived, output).unwrap();
        assert_eq!(derived.len(), 1);
        assert!(derived.contains(&Tuple::pair(1, 3)));
        assert!(!derived.contains(&Tuple::pair(1, 5)));
    }

    #[test]
    fn aggregate_rejects_bad_shapes() {
        use crate::ops::AggFunc;
        let mut sm = StorageManager::new(false);
        let input = sm.register("In", 2, false);
        let narrow = sm.register("Narrow", 1, false);
        assert!(matches!(
            sm.aggregate_into(input, narrow, &[(1, AggFunc::Count)]),
            Err(StorageError::ArityMismatch { .. })
        ));
        let output = sm.register("Out", 2, false);
        assert!(matches!(
            sm.aggregate_into(input, output, &[(5, AggFunc::Count)]),
            Err(StorageError::ColumnOutOfBounds { .. })
        ));
    }

    #[test]
    fn unknown_relation_errors() {
        let (sm, _, _) = manager();
        assert!(matches!(
            sm.relation(DbKind::Derived, RelId(99)),
            Err(StorageError::UnknownRelation(_))
        ));
    }
}
