//! The flat row pool: row-major value storage with hash-confirm dedup.
//!
//! Prior to the pool, every tuple was a separate `Box<[Value]>` heap
//! allocation and every relation stored each row **twice** — once in a
//! `Vec<Tuple>` scan vector and once in a `FxHashSet<Tuple>` used for
//! duplicate elimination.  The pool collapses both into one structure:
//!
//! * all rows of a relation live in a single row-major `Vec<Value>` with an
//!   arity stride — inserting a row is an `extend_from_slice`, never a
//!   per-tuple allocation,
//! * row identity is a dense [`RowId`] (`u32`), the offset of the row in the
//!   pool divided by the stride,
//! * duplicate elimination goes through a single `FxHashMap<u64, PostingList>`
//!   keyed by a 64-bit row hash; a hit is confirmed by comparing the actual
//!   row slice, so hash collisions cost a comparison, never a wrong answer,
//! * the per-row hash is retained in a side vector, so merging one pool into
//!   another ([`RowPool::insert_hashed`]) never rehashes a row.
//!
//! The same per-value mixing ([`value_hash`]) feeds the row hash *and* the
//! shard assignment of the parallel evaluation layer, so one hash pass per
//! row serves dedup, the posting-list maps and sharding alike.

use crate::hasher::FxHashMap;
use crate::value::Value;

/// Dense row identifier within one relation's row pool.
///
/// Row ids are assigned in insertion order, starting at 0, and stay stable
/// for the lifetime of the pool.  A row can be *retracted*
/// ([`RowPool::retract_hashed`]): its slot is tombstoned (the id is never
/// reused and the values stay readable) but the row no longer participates
/// in membership tests, iteration or statistics.  `u32` keeps posting lists
/// half the size of `usize` offsets; a relation holds at most `u32::MAX`
/// row slots over its lifetime.
pub type RowId = u32;

/// Multiplicative constant shared with [`crate::hasher::FxHasher`].
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Initial state of a row hash (an arbitrary odd constant, so the empty
/// nullary row still hashes to something non-zero).  Public so callers that
/// fold [`value_hash`] units themselves (e.g. the relation's single-pass
/// insert) produce hashes identical to [`row_hash`].
pub const ROW_HASH_INIT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Hash of one value — the per-column unit shared by row hashing
/// ([`row_hash`]) and shard assignment ([`shard_of_hash`]): the shard key's
/// value hash is computed once per inserted row and feeds both.
#[inline]
pub fn value_hash(value: Value) -> u64 {
    (value.raw() as u64 ^ ROW_HASH_INIT).wrapping_mul(SEED)
}

/// Folds one per-value hash into a row (or composite-key) hash.
#[inline]
pub fn mix_hash(hash: u64, value_hash: u64) -> u64 {
    (hash.rotate_left(5) ^ value_hash).wrapping_mul(SEED)
}

/// Hash of a full row slice, built from the same per-value units as
/// [`value_hash`] so callers that need both (row dedup plus shard
/// assignment) can share one pass over the values.
#[inline]
pub fn row_hash(values: &[Value]) -> u64 {
    values
        .iter()
        .fold(ROW_HASH_INIT, |h, &v| mix_hash(h, value_hash(v)))
}

/// Deterministic shard for a precomputed value hash: identical on every
/// platform and across runs, so shard membership never depends on process
/// state.  `shard_count` must be non-zero.
#[inline]
pub fn shard_of_hash(value_hash: u64, shard_count: usize) -> usize {
    // Reduce in u64 before narrowing: `as usize` first would keep only the
    // low 32 bits on 32-bit targets and break cross-platform agreement.
    ((value_hash >> 7) % shard_count as u64) as usize
}

/// Sentinel support count marking a row whose true derivation count
/// overflowed the `u32` range at some point.  The sentinel is **sticky**:
/// once a row saturates, [`RowPool::add_support`] and
/// [`RowPool::sub_support`] leave it saturated — the stored number no longer
/// tracks the true count, so decrementing it would fabricate a bound the
/// pool cannot justify.  Consumers (the incremental engine's counted
/// deletion) must treat saturated rows as "count unknown" and take the
/// exact-recount path instead of trusting the stored value.
pub const SUPPORT_SATURATED: u32 = u32::MAX;

/// Number of row ids a [`PostingList`] holds without spilling to the heap.
///
/// Chosen so the inline variant is no larger than the spilled one (a `Vec`
/// is three words): most join keys in EDB graphs have few matches, so the
/// common posting list never allocates.
pub const POSTING_INLINE_ROWS: usize = 4;

/// A compact list of row ids: up to [`POSTING_INLINE_ROWS`] rows inline,
/// spilling to a heap vector only for high-fanout keys.
///
/// Used as the bucket type of every hash structure in the storage layer
/// (dedup table, single-column and composite indexes), where the typical
/// key maps to a handful of rows.
#[derive(Debug, Clone)]
pub enum PostingList {
    /// At most [`POSTING_INLINE_ROWS`] rows stored in place.
    Inline {
        /// Number of occupied slots in `rows`.
        len: u8,
        /// The row ids; slots at `len..` are unspecified.
        rows: [RowId; POSTING_INLINE_ROWS],
    },
    /// More rows than fit inline.
    Spill(Vec<RowId>),
}

impl Default for PostingList {
    fn default() -> Self {
        PostingList::Inline {
            len: 0,
            rows: [0; POSTING_INLINE_ROWS],
        }
    }
}

impl PostingList {
    /// Appends a row id (insertion order is preserved).
    #[inline]
    pub fn push(&mut self, row: RowId) {
        match self {
            PostingList::Inline { len, rows } => {
                let n = *len as usize;
                if n < POSTING_INLINE_ROWS {
                    rows[n] = row;
                    *len += 1;
                } else {
                    let mut spill = Vec::with_capacity(POSTING_INLINE_ROWS * 2);
                    spill.extend_from_slice(rows);
                    spill.push(row);
                    *self = PostingList::Spill(spill);
                }
            }
            PostingList::Spill(rows) => rows.push(row),
        }
    }

    /// The row ids, in insertion order.
    #[inline]
    pub fn as_slice(&self) -> &[RowId] {
        match self {
            PostingList::Inline { len, rows } => &rows[..*len as usize],
            PostingList::Spill(rows) => rows,
        }
    }

    /// Removes the first occurrence of `row`, preserving the order of the
    /// remaining ids (scan order determinism).  Returns whether the id was
    /// present.  A spilled list stays spilled — posting lists shrink rarely
    /// and the capacity is reused by later insertions.
    pub fn remove(&mut self, row: RowId) -> bool {
        match self {
            PostingList::Inline { len, rows } => {
                let n = *len as usize;
                match rows[..n].iter().position(|&r| r == row) {
                    Some(pos) => {
                        rows.copy_within(pos + 1..n, pos);
                        *len -= 1;
                        true
                    }
                    None => false,
                }
            }
            PostingList::Spill(rows) => match rows.iter().position(|&r| r == row) {
                Some(pos) => {
                    rows.remove(pos);
                    true
                }
                None => false,
            },
        }
    }

    /// Number of rows listed.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            PostingList::Inline { len, .. } => *len as usize,
            PostingList::Spill(rows) => rows.len(),
        }
    }

    /// Whether no rows are listed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the list has spilled to the heap (exposed for tests and
    /// stats; the transition is an implementation detail otherwise).
    #[inline]
    pub fn is_spilled(&self) -> bool {
        matches!(self, PostingList::Spill(_))
    }

    /// Heap bytes owned by this list (0 while inline).
    pub fn heap_bytes(&self) -> usize {
        match self {
            PostingList::Inline { .. } => 0,
            PostingList::Spill(rows) => rows.capacity() * std::mem::size_of::<RowId>(),
        }
    }
}

/// Resident-memory snapshot of one pool (see [`RowPool::stats`]).
///
/// `bytes` counts owned capacity (values, retained hashes, dedup table
/// buckets and spilled posting lists), i.e. what the structure keeps
/// resident — the quantity the storage microbench compares against the
/// legacy double-store layout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Number of rows stored.
    pub rows: usize,
    /// Resident bytes owned by the pool (capacity-based estimate).
    pub bytes: usize,
    /// Times the dedup table grew (rehash events) over the pool's lifetime.
    pub rehashes: u64,
}

impl PoolStats {
    /// Component-wise sum (used to aggregate across relations/databases).
    pub fn merge(self, other: PoolStats) -> PoolStats {
        PoolStats {
            rows: self.rows + other.rows,
            bytes: self.bytes + other.bytes,
            rehashes: self.rehashes + other.rehashes,
        }
    }
}

/// Row-major storage for the rows of one relation, with hash-confirm
/// duplicate elimination.  See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct RowPool {
    /// Row stride (the relation's arity).
    arity: usize,
    /// All rows, row-major: row `r` occupies `values[r*arity..(r+1)*arity]`.
    values: Vec<Value>,
    /// `hashes[r]` is the row hash of row `r` (retained so merges and
    /// rebuilds never rehash).
    hashes: Vec<u64>,
    /// Per-row derivation support count, parallel to `hashes`: how many
    /// derivations are known for the row (1 on plain insertion).  Maintained
    /// by the storage manager's derived-insert path and consumed by the
    /// incremental maintenance subsystem's counted-deletion fast path;
    /// meaningless (and ignored) for rows of recursive strata.
    support: Vec<u32>,
    /// Tombstones, parallel to `hashes`: `dead[r]` marks a retracted slot.
    /// Left empty (all-live) until the first retraction so the common
    /// insert-only pool pays nothing for the feature.
    dead: Vec<bool>,
    /// Number of tombstoned slots (`0` for insert-only pools).
    dead_count: usize,
    /// Row hash → first row carrying that hash.  Membership is confirmed by
    /// slice equality against the pool, so collisions are harmless — and
    /// keeping the common bucket a single 12-byte entry (instead of a
    /// posting list) is what makes the dedup table cheaper than the second
    /// `HashSet<Tuple>` copy it replaces.  Retracted rows are unlinked, so
    /// the table only ever resolves live rows.
    dedup: FxHashMap<u64, RowId>,
    /// Additional *distinct* rows whose hash collides with an earlier row
    /// (a true 64-bit collision; essentially always empty).
    overflow: FxHashMap<u64, Vec<RowId>>,
    /// Lifetime count of dedup-table growth events.
    rehashes: u64,
    /// Compaction generation: incremented every time [`RowPool::compact`]
    /// renumbers rows.  [`RowId`]s are only meaningful together with the
    /// generation they were obtained under; holders compare generations to
    /// detect (and reject) stale ids instead of silently reading whatever
    /// row now occupies the slot.
    generation: u64,
}

impl RowPool {
    /// Creates an empty pool for rows of `arity` columns.
    pub fn new(arity: usize) -> Self {
        RowPool {
            arity,
            values: Vec::new(),
            hashes: Vec::new(),
            support: Vec::new(),
            dead: Vec::new(),
            dead_count: 0,
            dedup: FxHashMap::default(),
            overflow: FxHashMap::default(),
            rehashes: 0,
            generation: 0,
        }
    }

    /// The pool's compaction generation: bumped whenever a
    /// [`RowPool::compact`] renumbers row ids.  A [`RowId`] obtained under
    /// one generation must not be dereferenced under another.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Overwrites the compaction generation — used by snapshot restore to
    /// carry the counter across a process restart so the monotonic history
    /// of any persisted [`RowId`]-with-generation pair stays meaningful.
    #[inline]
    pub(crate) fn set_generation(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Row stride.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of *live* rows stored (retracted slots excluded) — the
    /// cardinality every consumer (optimizer statistics, fixpoint tests,
    /// result counting) observes.
    #[inline]
    pub fn len(&self) -> usize {
        self.hashes.len() - self.dead_count
    }

    /// Number of row slots ever allocated, including tombstoned ones — the
    /// exclusive upper bound of valid [`RowId`]s.
    #[inline]
    pub fn slots(&self) -> usize {
        self.hashes.len()
    }

    /// Whether the pool holds no live rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether any slot has been tombstoned by a retraction.  While this is
    /// `false` (the insert-only common case) every slot is live and callers
    /// may iterate `0..slots()` directly.
    #[inline]
    pub fn has_dead(&self) -> bool {
        self.dead_count > 0
    }

    /// Whether the slot `row` holds a live (non-retracted) row.
    #[inline]
    pub fn is_live(&self, row: RowId) -> bool {
        self.dead.get(row as usize).copied() != Some(true)
    }

    /// The values of row `row`.
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds.
    #[inline]
    pub fn row(&self, row: RowId) -> &[Value] {
        let start = row as usize * self.arity;
        &self.values[start..start + self.arity]
    }

    /// The retained hash of row `row`.
    #[inline]
    pub fn hash_of(&self, row: RowId) -> u64 {
        self.hashes[row as usize]
    }

    /// The support count of row `row` (number of known derivations).
    #[inline]
    pub fn support_of(&self, row: RowId) -> u32 {
        self.support[row as usize]
    }

    /// Overwrites the support count of row `row`.
    #[inline]
    pub fn set_support(&mut self, row: RowId, count: u32) {
        self.support[row as usize] = count;
    }

    /// Adds `n` derivations to row `row`'s support count.  Counts that
    /// would reach or exceed [`SUPPORT_SATURATED`] stick at the sentinel:
    /// the row's true count is no longer representable, and pretending the
    /// clamped value were exact would silently break the counted-deletion
    /// invariant (`stored <= true derivations` must never flip through a
    /// sequence of saturated adds and exact subtracts being trusted as a
    /// survivor proof).
    #[inline]
    pub fn add_support(&mut self, row: RowId, n: u32) {
        let slot = &mut self.support[row as usize];
        *slot = match slot.checked_add(n) {
            Some(v) if v < SUPPORT_SATURATED => v,
            _ => SUPPORT_SATURATED,
        };
    }

    /// Removes `n` derivations from row `row`'s support count (saturating at
    /// zero) and returns the new count.  A saturated row stays saturated —
    /// see [`SUPPORT_SATURATED`].
    #[inline]
    pub fn sub_support(&mut self, row: RowId, n: u32) -> u32 {
        let slot = &mut self.support[row as usize];
        if *slot != SUPPORT_SATURATED {
            *slot = slot.saturating_sub(n);
        }
        *slot
    }

    /// Whether row `row`'s support count has overflowed and is therefore
    /// unusable as a derivation count (see [`SUPPORT_SATURATED`]).
    #[inline]
    pub fn support_saturated(&self, row: RowId) -> bool {
        self.support[row as usize] == SUPPORT_SATURATED
    }

    /// Iterator over all live rows in insertion order.
    #[inline]
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[Value]> + '_ {
        // `chunks_exact(0)` would panic; nullary rows are all the same empty
        // slice, repeated once per stored row.
        RowsIter {
            pool: self,
            next: 0,
            remaining: self.len(),
        }
    }

    /// Iterator over `(id, values)` of all live rows in insertion order —
    /// the retraction-aware replacement for `rows().enumerate()` (slot
    /// offsets stop being row counts once tombstones exist).
    #[inline]
    pub fn live_rows(&self) -> impl Iterator<Item = (RowId, &[Value])> + '_ {
        (0..self.slots() as RowId)
            .filter(move |&row| self.is_live(row))
            .map(move |row| (row, self.row(row)))
    }

    /// Whether an equal row is already stored.
    #[inline]
    pub fn contains(&self, values: &[Value]) -> bool {
        self.contains_hashed(values, row_hash(values))
    }

    /// [`RowPool::contains`] with the row hash precomputed by the caller.
    #[inline]
    pub fn contains_hashed(&self, values: &[Value], hash: u64) -> bool {
        self.find_hashed(values, hash).is_some()
    }

    /// The live row equal to `values` (hash precomputed), if any.
    #[inline]
    pub fn find_hashed(&self, values: &[Value], hash: u64) -> Option<RowId> {
        match self.dedup.get(&hash) {
            Some(&first) => {
                if self.row(first) == values {
                    Some(first)
                } else {
                    self.overflow
                        .get(&hash)
                        .and_then(|rows| rows.iter().copied().find(|&r| self.row(r) == values))
                }
            }
            None => None,
        }
    }

    /// Tombstones the live row equal to `values` (hash precomputed by the
    /// caller): the slot keeps its id, hash and values, but the row leaves
    /// the dedup table, the length and all iteration.  Returns the retracted
    /// row's id, or `None` when no equal live row exists.
    ///
    /// # Panics
    ///
    /// Panics when `hash` is not the row hash of `values`.  The hash keys
    /// the dedup table, so a mismatched pair would unlink the wrong bucket
    /// and corrupt membership silently; the public entry validates
    /// unconditionally (release builds included).  The storage crate's own
    /// retained-hash paths go through the unchecked internal variant —
    /// their hashes come from the pool itself and never rehash.
    pub fn retract_hashed(&mut self, values: &[Value], hash: u64) -> Option<RowId> {
        assert_eq!(
            hash,
            row_hash(values),
            "caller-supplied row hash does not match the row values; \
             refusing to corrupt the dedup table"
        );
        self.retract_hashed_retained(values, hash)
    }

    /// [`RowPool::retract_hashed`] without the always-on validation:
    /// crate-internal paths whose hashes are retained pool hashes (merge,
    /// compaction, the relation's single-pass fold) use this to keep the
    /// never-rehash guarantee.
    pub(crate) fn retract_hashed_retained(&mut self, values: &[Value], hash: u64) -> Option<RowId> {
        debug_assert_eq!(hash, row_hash(values), "caller-supplied hash mismatch");
        let row = self.find_hashed(values, hash)?;
        // Unlink from the dedup table, promoting a colliding overflow row
        // into the primary slot when one exists.
        if self.dedup.get(&hash) == Some(&row) {
            let promoted = self
                .overflow
                .get_mut(&hash)
                .and_then(|rows| (!rows.is_empty()).then(|| rows.remove(0)));
            match promoted {
                Some(next) => {
                    self.dedup.insert(hash, next);
                }
                None => {
                    self.dedup.remove(&hash);
                }
            }
        } else if let Some(rows) = self.overflow.get_mut(&hash) {
            if let Some(pos) = rows.iter().position(|&r| r == row) {
                rows.remove(pos);
            }
        }
        if let Some(rows) = self.overflow.get(&hash) {
            if rows.is_empty() {
                self.overflow.remove(&hash);
            }
        }
        if self.dead.is_empty() {
            self.dead = vec![false; self.hashes.len()];
        }
        self.dead[row as usize] = true;
        self.dead_count += 1;
        self.support[row as usize] = 0;
        Some(row)
    }

    /// Inserts a row, returning its new [`RowId`], or `None` when an equal
    /// row is already stored (set semantics).
    #[inline]
    pub fn insert(&mut self, values: &[Value]) -> Option<RowId> {
        self.insert_hashed(values, row_hash(values))
    }

    /// [`RowPool::insert`] with the row hash precomputed by the caller.
    ///
    /// # Panics
    ///
    /// Panics when `hash` is not the row hash of `values`: a mismatched
    /// pair would register the row under a key no lookup ever computes,
    /// silently breaking deduplication (rows stored twice, membership tests
    /// lying) — exactly the corruption a `debug_assert` used to let through
    /// in release builds.  The validation is unconditional here; the
    /// crate-internal merge path ([`Relation::union_in_place`]) goes
    /// through the unchecked variant with hashes retained by the pool
    /// itself, so iteration boundaries still never rehash a row.
    ///
    /// [`Relation::union_in_place`]: crate::relation::Relation::union_in_place
    pub fn insert_hashed(&mut self, values: &[Value], hash: u64) -> Option<RowId> {
        assert_eq!(
            hash,
            row_hash(values),
            "caller-supplied row hash does not match the row values; \
             refusing to corrupt the dedup table"
        );
        self.insert_hashed_retained(values, hash)
    }

    /// [`RowPool::insert_hashed`] without the always-on validation — the
    /// crate-internal fast path for hashes the storage layer computed or
    /// retained itself.
    pub(crate) fn insert_hashed_retained(&mut self, values: &[Value], hash: u64) -> Option<RowId> {
        debug_assert_eq!(
            values.len(),
            self.arity,
            "row width must match the pool stride"
        );
        debug_assert_eq!(hash, row_hash(values), "caller-supplied hash mismatch");
        assert!(
            self.hashes.len() < RowId::MAX as usize,
            "row pool exceeds the RowId (u32) capacity"
        );
        let row = self.hashes.len() as RowId;
        let buckets_before = self.dedup.capacity();
        // One dedup-table probe serves both the membership test and the
        // insertion: a vacant slot means the row is certainly new; an
        // occupied one is confirmed by slice equality before the (rare)
        // collision is recorded on the side.
        match self.dedup.entry(hash) {
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(row);
            }
            std::collections::hash_map::Entry::Occupied(slot) => {
                let first = *slot.get();
                if self.row(first) == values
                    || self
                        .overflow
                        .get(&hash)
                        .is_some_and(|rows| rows.iter().any(|&r| self.row(r) == values))
                {
                    return None;
                }
                // A distinct row with a colliding hash.
                self.overflow.entry(hash).or_default().push(row);
            }
        }
        if self.dedup.capacity() != buckets_before {
            self.rehashes += 1;
        }
        self.values.extend_from_slice(values);
        self.hashes.push(hash);
        self.support.push(1);
        if !self.dead.is_empty() {
            self.dead.push(false);
        }
        Some(row)
    }

    /// Compacts tombstoned slots away: live rows keep their relative order
    /// but are **renumbered densely from 0**, and the dedup table is
    /// rebuilt.  A no-op when nothing is dead.  Returns whether ids moved —
    /// callers must then rebuild every structure holding [`RowId`]s into
    /// this pool (indexes, shard partitions); [`Relation::compact`] does
    /// exactly that.  Without periodic compaction a long-lived session
    /// under a sustained update stream grows with total churn rather than
    /// live data (ids are never reused and tombstoned slots keep their
    /// values resident).
    ///
    /// [`Relation::compact`]: crate::relation::Relation::compact
    pub fn compact(&mut self) -> bool {
        if !self.has_dead() {
            return false;
        }
        let arity = self.arity;
        let live = self.len();
        let mut values = Vec::with_capacity(live * arity);
        let mut hashes = Vec::with_capacity(live);
        let mut support = Vec::with_capacity(live);
        self.dedup.clear();
        self.overflow.clear();
        for old in 0..self.hashes.len() {
            if self.dead[old] {
                continue;
            }
            let row = hashes.len() as RowId;
            let start = old * arity;
            values.extend_from_slice(&self.values[start..start + arity]);
            let hash = self.hashes[old];
            hashes.push(hash);
            support.push(self.support[old]);
            // Rows are distinct by construction; only true 64-bit hash
            // collisions spill into the overflow side table.
            match self.dedup.entry(hash) {
                std::collections::hash_map::Entry::Vacant(slot) => {
                    slot.insert(row);
                }
                std::collections::hash_map::Entry::Occupied(_) => {
                    self.overflow.entry(hash).or_default().push(row);
                }
            }
        }
        self.values = values;
        self.hashes = hashes;
        self.support = support;
        self.dead.clear();
        self.dead_count = 0;
        // Ids moved: everything holding a RowId into this pool is now
        // stale, observable through the generation counter.
        self.generation += 1;
        true
    }

    /// Drops all rows but keeps allocated capacity (vectors and the dedup
    /// table), so a cleared delta pool re-fills without reallocating.
    pub fn clear(&mut self) {
        self.values.clear();
        self.hashes.clear();
        self.support.clear();
        self.dead.clear();
        self.dead_count = 0;
        self.dedup.clear();
        self.overflow.clear();
    }

    /// Resident-memory and lifetime counters for this pool.
    pub fn stats(&self) -> PoolStats {
        let bucket = std::mem::size_of::<(u64, RowId)>();
        let overflow = self.overflow.capacity()
            * (std::mem::size_of::<u64>() + std::mem::size_of::<Vec<RowId>>())
            + self
                .overflow
                .values()
                .map(|v| v.capacity() * std::mem::size_of::<RowId>())
                .sum::<usize>();
        PoolStats {
            rows: self.len(),
            bytes: self.values.capacity() * std::mem::size_of::<Value>()
                + self.hashes.capacity() * std::mem::size_of::<u64>()
                + self.support.capacity() * std::mem::size_of::<u32>()
                + self.dead.capacity() * std::mem::size_of::<bool>()
                + self.dedup.capacity() * bucket
                + overflow,
            rehashes: self.rehashes,
        }
    }
}

/// Iterator behind [`RowPool::rows`] (explicit struct so nullary relations,
/// whose stride is 0, still yield one empty slice per stored row; skips
/// tombstoned slots).
struct RowsIter<'a> {
    pool: &'a RowPool,
    next: RowId,
    remaining: usize,
}

impl<'a> Iterator for RowsIter<'a> {
    type Item = &'a [Value];

    #[inline]
    fn next(&mut self) -> Option<&'a [Value]> {
        while (self.next as usize) < self.pool.slots() {
            let id = self.next;
            self.next += 1;
            if self.pool.is_live(id) {
                self.remaining -= 1;
                return Some(self.pool.row(id));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for RowsIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn vals(ints: &[u32]) -> Vec<Value> {
        ints.iter().copied().map(Value::int).collect()
    }

    #[test]
    fn insert_assigns_dense_row_ids_and_dedups() {
        let mut pool = RowPool::new(2);
        assert_eq!(pool.insert(&vals(&[1, 2])), Some(0));
        assert_eq!(pool.insert(&vals(&[3, 4])), Some(1));
        assert_eq!(pool.insert(&vals(&[1, 2])), None);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.row(0), &vals(&[1, 2])[..]);
        assert_eq!(pool.row(1), &vals(&[3, 4])[..]);
        assert!(pool.contains(&vals(&[3, 4])));
        assert!(!pool.contains(&vals(&[4, 3])));
    }

    #[test]
    fn rows_iterate_in_insertion_order() {
        let mut pool = RowPool::new(1);
        for i in 0..5u32 {
            pool.insert(&vals(&[i]));
        }
        let collected: Vec<u32> = pool.rows().map(|r| r[0].raw()).collect();
        assert_eq!(collected, vec![0, 1, 2, 3, 4]);
        assert_eq!(pool.rows().len(), 5);
    }

    #[test]
    fn nullary_pool_holds_at_most_one_row() {
        let mut pool = RowPool::new(0);
        assert_eq!(pool.insert(&[]), Some(0));
        assert_eq!(pool.insert(&[]), None);
        assert_eq!(pool.len(), 1);
        assert_eq!(pool.rows().count(), 1);
        assert!(pool.row(0).is_empty());
    }

    #[test]
    fn retained_hashes_match_recomputation() {
        let mut pool = RowPool::new(3);
        pool.insert(&vals(&[7, 8, 9]));
        assert_eq!(pool.hash_of(0), row_hash(&vals(&[7, 8, 9])));
    }

    #[test]
    fn clear_keeps_capacity_and_accepts_reinsertion() {
        let mut pool = RowPool::new(2);
        for i in 0..100u32 {
            pool.insert(&vals(&[i, i + 1]));
        }
        let cap = pool.stats().bytes;
        pool.clear();
        assert!(pool.is_empty());
        assert_eq!(pool.stats().rows, 0);
        // Capacity (and so resident bytes) is retained for refill.
        assert_eq!(pool.stats().bytes, cap);
        assert_eq!(pool.insert(&vals(&[1, 2])), Some(0));
    }

    #[test]
    fn posting_list_inlines_then_spills() {
        let mut list = PostingList::default();
        for i in 0..POSTING_INLINE_ROWS as RowId {
            list.push(i);
            assert!(!list.is_spilled(), "inline capacity reached too early");
        }
        assert_eq!(list.len(), POSTING_INLINE_ROWS);
        assert_eq!(list.heap_bytes(), 0);
        list.push(99);
        assert!(list.is_spilled());
        assert!(list.heap_bytes() > 0);
        let expected: Vec<RowId> = (0..POSTING_INLINE_ROWS as RowId).chain([99]).collect();
        assert_eq!(list.as_slice(), &expected[..]);
    }

    #[test]
    fn row_hash_shares_value_hash_units() {
        // The row hash folds exactly the per-value hashes that shard
        // assignment consumes — one hash pass serves both.
        let row = vals(&[10, 20]);
        let folded = mix_hash(
            mix_hash(ROW_HASH_INIT, value_hash(row[0])),
            value_hash(row[1]),
        );
        assert_eq!(row_hash(&row), folded);
    }

    #[test]
    fn shard_of_hash_is_stable_and_in_range() {
        for v in 0..1000u32 {
            let s = shard_of_hash(value_hash(Value::int(v)), 8);
            assert!(s < 8);
            assert_eq!(s, shard_of_hash(value_hash(Value::int(v)), 8));
        }
        // All 8 shards are reachable at this scale.
        let hit: std::collections::HashSet<usize> = (0..1000u32)
            .map(|v| shard_of_hash(value_hash(Value::int(v)), 8))
            .collect();
        assert_eq!(hit.len(), 8);
    }

    #[test]
    fn retract_tombstones_and_unlinks_dedup() {
        let mut pool = RowPool::new(2);
        pool.insert(&vals(&[1, 2]));
        pool.insert(&vals(&[3, 4]));
        pool.insert(&vals(&[5, 6]));
        let row = pool
            .retract_hashed(&vals(&[3, 4]), row_hash(&vals(&[3, 4])))
            .expect("row present");
        assert_eq!(row, 1);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.slots(), 3);
        assert!(pool.has_dead());
        assert!(!pool.is_live(1));
        assert!(!pool.contains(&vals(&[3, 4])));
        // Values of the tombstoned slot stay readable; iteration skips it.
        assert_eq!(pool.row(1), &vals(&[3, 4])[..]);
        let seen: Vec<u32> = pool.rows().map(|r| r[0].raw()).collect();
        assert_eq!(seen, vec![1, 5]);
        assert_eq!(pool.rows().len(), 2);
        let live: Vec<RowId> = pool.live_rows().map(|(id, _)| id).collect();
        assert_eq!(live, vec![0, 2]);
        // Retracting again is a no-op; re-inserting allocates a fresh slot.
        assert_eq!(
            pool.retract_hashed(&vals(&[3, 4]), row_hash(&vals(&[3, 4]))),
            None
        );
        assert_eq!(pool.insert(&vals(&[3, 4])), Some(3));
        assert_eq!(pool.len(), 3);
        assert!(pool.contains(&vals(&[3, 4])));
    }

    #[test]
    fn support_counts_ride_on_rows() {
        let mut pool = RowPool::new(1);
        let row = pool.insert(&vals(&[9])).unwrap();
        assert_eq!(pool.support_of(row), 1);
        pool.add_support(row, 2);
        assert_eq!(pool.support_of(row), 3);
        assert_eq!(pool.sub_support(row, 1), 2);
        assert_eq!(pool.sub_support(row, 10), 0); // saturates
        pool.set_support(row, 7);
        assert_eq!(pool.support_of(row), 7);
    }

    #[test]
    fn support_saturation_is_sticky_and_forces_unknown() {
        // Regression: support counts used to saturate silently at u32::MAX
        // with `saturating_add`/`saturating_sub`.  A saturated row whose
        // true count exceeded u32::MAX could then be decremented to a
        // positive stored count and pass as a "survivor" in counted
        // deletion even when its true count had reached zero.  The sentinel
        // is sticky: adds and subs leave it in place, and consumers are
        // told the count is unknown.
        let mut pool = RowPool::new(1);
        let row = pool.insert(&vals(&[1])).unwrap();
        assert!(!pool.support_saturated(row));
        pool.set_support(row, SUPPORT_SATURATED - 2);
        pool.add_support(row, 1);
        assert!(!pool.support_saturated(row)); // MAX-1 is still exact
        pool.add_support(row, 1);
        assert!(pool.support_saturated(row)); // reached the sentinel
                                              // Sticky under both directions.
        assert_eq!(pool.sub_support(row, 1_000), SUPPORT_SATURATED);
        assert!(pool.support_saturated(row));
        pool.add_support(row, 7);
        assert!(pool.support_saturated(row));
        // An exact overwrite clears the sentinel.
        pool.set_support(row, 3);
        assert!(!pool.support_saturated(row));
        assert_eq!(pool.sub_support(row, 1), 2);
    }

    #[test]
    #[should_panic(expected = "refusing to corrupt the dedup table")]
    fn insert_hashed_rejects_mismatched_hashes() {
        // Regression: a mismatched caller-supplied hash was only caught by
        // a debug_assert, so release builds registered the row under a key
        // no lookup computes — rows stored twice, membership tests lying.
        let mut pool = RowPool::new(2);
        pool.insert_hashed(&vals(&[1, 2]), 0xDEAD_BEEF);
    }

    #[test]
    #[should_panic(expected = "refusing to corrupt the dedup table")]
    fn retract_hashed_rejects_mismatched_hashes() {
        let mut pool = RowPool::new(2);
        pool.insert(&vals(&[1, 2]));
        pool.retract_hashed(&vals(&[1, 2]), 0xDEAD_BEEF);
    }

    #[test]
    fn insert_hashed_accepts_correct_hashes() {
        let mut pool = RowPool::new(2);
        let row = vals(&[3, 4]);
        assert_eq!(pool.insert_hashed(&row, row_hash(&row)), Some(0));
        assert_eq!(pool.retract_hashed(&row, row_hash(&row)), Some(0));
    }

    #[test]
    fn compaction_bumps_the_generation() {
        let mut pool = RowPool::new(1);
        assert_eq!(pool.generation(), 0);
        for i in 0..10u32 {
            pool.insert(&vals(&[i]));
        }
        pool.retract_hashed(&vals(&[3]), row_hash(&vals(&[3])));
        assert_eq!(pool.generation(), 0); // retraction alone moves no ids
        assert!(pool.compact());
        assert_eq!(pool.generation(), 1);
        assert!(!pool.compact()); // nothing dead: no-op, no bump
        assert_eq!(pool.generation(), 1);
    }

    #[test]
    fn posting_list_remove_preserves_order() {
        let mut list = PostingList::default();
        for i in 0..3 {
            list.push(i);
        }
        assert!(list.remove(1));
        assert_eq!(list.as_slice(), &[0, 2]);
        assert!(!list.remove(9));
        // Spilled list.
        for i in 10..20 {
            list.push(i);
        }
        assert!(list.is_spilled());
        assert!(list.remove(0));
        assert_eq!(list.as_slice()[0], 2);
        assert_eq!(list.len(), 11);
    }

    #[test]
    fn rehash_counter_grows_with_the_table() {
        let mut pool = RowPool::new(1);
        for i in 0..10_000u32 {
            pool.insert(&vals(&[i]));
        }
        assert!(pool.stats().rehashes > 0);
        assert_eq!(pool.stats().rows, 10_000);
    }
}
