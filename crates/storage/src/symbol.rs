//! String interning.
//!
//! Datalog facts frequently contain string constants (function names,
//! variable names extracted by a program analysis front-end).  The engine
//! never compares strings during evaluation: every string is interned once,
//! and joins operate on the resulting 32-bit [`Value`]s.

use crate::hasher::FxHashMap;
use crate::value::Value;

/// Bidirectional map between strings and interned [`Value`]s.
///
/// Interning is append-only: symbols are never removed, so a `Value` handed
/// out once stays valid for the lifetime of the table.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    by_name: FxHashMap<String, u32>,
    names: Vec<String>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning the same [`Value`] for repeated calls with
    /// the same string.
    pub fn intern(&mut self, name: &str) -> Value {
        if let Some(&idx) = self.by_name.get(name) {
            return Value::symbol(idx);
        }
        let idx = u32::try_from(self.names.len()).expect("symbol table overflow");
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), idx);
        Value::symbol(idx)
    }

    /// Looks up an already-interned string without inserting it.
    pub fn lookup(&self, name: &str) -> Option<Value> {
        self.by_name.get(name).copied().map(Value::symbol)
    }

    /// Resolves a symbol value back to its string.
    ///
    /// Returns `None` for plain integer values or unknown symbol indices.
    pub fn resolve(&self, value: Value) -> Option<&str> {
        let idx = value.symbol_index()? as usize;
        self.names.get(idx).map(String::as_str)
    }

    /// Renders any value for human consumption: symbols resolve to their
    /// string, integers print as numbers.
    pub fn display(&self, value: Value) -> String {
        match self.resolve(value) {
            Some(name) => name.to_string(),
            None => value
                .as_int()
                .map_or_else(|| format!("{value:?}"), |n| n.to_string()),
        }
    }

    /// Number of distinct interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut table = SymbolTable::new();
        let a1 = table.intern("serialize");
        let a2 = table.intern("serialize");
        let b = table.intern("deserialize");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut table = SymbolTable::new();
        let v = table.intern("to_json");
        assert_eq!(table.resolve(v), Some("to_json"));
        assert_eq!(table.lookup("to_json"), Some(v));
        assert_eq!(table.lookup("missing"), None);
    }

    #[test]
    fn resolve_of_plain_int_is_none() {
        let table = SymbolTable::new();
        assert_eq!(table.resolve(Value::int(7)), None);
        assert_eq!(table.display(Value::int(7)), "7");
    }

    #[test]
    fn display_of_symbol_uses_name() {
        let mut table = SymbolTable::new();
        let v = table.intern("atoi");
        assert_eq!(table.display(v), "atoi");
    }
}
