//! # carac-storage
//!
//! The physical relational layer of the Carac-rs engine (paper §V-D).
//!
//! This crate owns everything that touches rows at runtime:
//!
//! * [`Value`] — interned 32-bit constants plus a [`SymbolTable`] mapping
//!   them back to strings/integers,
//! * [`Tuple`] — a fixed-arity row of values, the *boundary* type for
//!   loading facts and reading results (the evaluation hot paths speak
//!   `&[Value]` row slices and [`RowId`]s instead),
//! * [`pool`] — the flat row pool: one row-major `Vec<Value>` per relation
//!   with hash-confirm dedup and compact inline-or-spill posting lists,
//! * [`Relation`] — an insertion-ordered, duplicate-free set of rows over a
//!   [`RowPool`], with optional per-column and composite hash indexes and
//!   the allocation-free [`Relation::probe_rows`] access path,
//! * [`Database`] — a collection of relations addressed by [`RelId`],
//! * [`StorageManager`] — the three evaluation databases used by semi-naive
//!   evaluation (*derived*, *delta-known*, *delta-new*) together with the
//!   `swap`, `clear`, `merge` and `diff` operations the execution layer
//!   needs at iteration boundaries,
//! * [`ops`] — basic relational operators (select, project, join, union,
//!   difference) usable both directly and as building blocks for the
//!   execution backends,
//! * [`stats`] — cardinality snapshots consumed by the adaptive optimizer,
//! * [`snapshot`] / [`journal`] — the durable-storage layer: CRC-checked
//!   on-disk snapshots of the derived database plus the append-only
//!   write-ahead update journal with its torn-tail recovery policy.
//!
//! The layer is deliberately storage-engine-agnostic from the point of view
//! of the upper layers: the execution engine only talks to it through the
//! APIs exposed here, mirroring the paper's "pluggable relational layer".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod database;
pub mod error;
pub mod hasher;
pub mod index;
pub mod journal;
pub mod ops;
pub mod pool;
pub mod relation;
pub mod schema;
pub mod snapshot;
pub mod stats;
pub mod symbol;
pub mod tuple;
pub mod value;

pub use database::{Database, DbKind, StorageManager};
pub use error::StorageError;
pub use index::{ColumnIndex, CompositeIndex};
pub use journal::{read_journal, JournalContents, JournalRecord, JournalWriter};
pub use ops::{AggFunc, CmpOp, DeltaSign};
pub use pool::{PoolStats, PostingList, RowId, RowPool, SUPPORT_SATURATED};
pub use relation::{ProbeIter, ProbeRows, Relation};
pub use schema::{RelId, RelationSchema};
pub use snapshot::{read_snapshot, write_snapshot, PersistError, RelationSnapshot, Snapshot};
pub use stats::{RelationStats, StatsSnapshot};
pub use symbol::SymbolTable;
pub use tuple::Tuple;
pub use value::Value;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, StorageError>;
