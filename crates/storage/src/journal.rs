//! The append-only write-ahead update journal.
//!
//! Durability contract: an update batch is length-prefixed, checksummed and
//! fsync'd to the journal **before** it is applied to the live session, so
//! after a crash the journal is always a superset of the applied batches.
//! Recovery re-applies the journal suffix past the checkpoint's watermark;
//! a batch that reached the engine but not the journal cannot exist.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! header:  magic "CARACWAL" | version u32 | endianness tag u32
//! record:  len u32 | crc u32 | seq u64 | payload (len bytes)
//! ```
//!
//! `crc` is the CRC-32 of `seq || payload`, so neither the payload nor its
//! position in the sequence can be altered undetected.  Sequence numbers
//! start at 1 and increase by exactly 1 per record: a duplicated record (a
//! fault mode the checksum alone cannot catch, since the copied bytes carry
//! a valid CRC) or a dropped record surfaces as a non-monotonic sequence —
//! a typed [`PersistError::Corrupt`].
//!
//! **Torn-tail policy.**  A crash can tear the *final* record: the write of
//! `len|crc|seq|payload` was cut short, or reached the disk partially.  The
//! reader therefore treats an incomplete frame at end-of-file, or a
//! checksum failure on a record that extends to end-of-file, as a clean end
//! of log: the record is dropped and [`JournalContents::torn_tail`] reports
//! it.  A checksum failure in the *middle* of the file cannot be a torn
//! write (later records made it to disk after this one) and is a typed
//! [`PersistError::ChecksumMismatch`].  The flip side: a bit flip in the
//! final record is indistinguishable from a torn write and degrades to
//! "clean end of log one record early" — recovered state is still a
//! consistent prefix of the uncrashed run, never a divergent one.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use crate::snapshot::{crc32, ByteReader, PersistError};

/// Magic bytes opening every journal file.
pub const JOURNAL_MAGIC: [u8; 8] = *b"CARACWAL";
/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;
/// Byte length of the file header.
pub const JOURNAL_HEADER_LEN: u64 = 16;
/// Byte length of a record frame (`len | crc | seq`), excluding the payload.
pub const RECORD_FRAME_LEN: u64 = 16;

/// Appending side of the journal: owns the file handle, the committed byte
/// length and the next sequence number.  Every [`JournalWriter::append`] is
/// synced to disk before it returns — that is the write-ahead guarantee the
/// recovery protocol is built on.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    len: u64,
    next_seq: u64,
}

impl JournalWriter {
    /// Creates (or truncates) the journal at `path`, writes the header and
    /// syncs it.  The first appended record will carry sequence number 1.
    pub fn create(path: &Path) -> Result<Self, PersistError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(JOURNAL_HEADER_LEN as usize);
        header.extend_from_slice(&JOURNAL_MAGIC);
        header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        header.extend_from_slice(&crate::snapshot::ENDIAN_TAG.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(JournalWriter {
            file,
            len: JOURNAL_HEADER_LEN,
            next_seq: 1,
        })
    }

    /// Reopens an existing journal for appending after recovery: the file is
    /// truncated to `clean_len` (dropping any torn tail the reader
    /// identified) and the next record will carry `next_seq`.  The caller
    /// derives both from [`read_journal`].
    pub fn open_at(path: &Path, clean_len: u64, next_seq: u64) -> Result<Self, PersistError> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(clean_len)?;
        file.sync_all()?;
        Ok(JournalWriter {
            file,
            len: clean_len,
            next_seq,
        })
    }

    /// Appends one checksummed record carrying `payload` and **syncs it to
    /// disk** before returning.  Returns the record's sequence number.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, PersistError> {
        let seq = self.next_seq;
        let mut record = Vec::with_capacity(RECORD_FRAME_LEN as usize + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        // CRC over seq || payload: those bytes are contiguous on disk, so
        // the reader validates them with one pass over the raw file slice.
        let mut checked = Vec::with_capacity(8 + payload.len());
        checked.extend_from_slice(&seq.to_le_bytes());
        checked.extend_from_slice(payload);
        record.extend_from_slice(&crc32(&checked).to_le_bytes());
        record.extend_from_slice(&checked);
        self.file.seek(SeekFrom::Start(self.len))?;
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        self.len += record.len() as u64;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Rolls the journal back to a previous `(byte length, next sequence)`
    /// pair — the undo step when a journaled batch fails to apply, restoring
    /// the invariant that the journal holds exactly the applied batches.
    pub fn truncate_to(&mut self, len: u64, next_seq: u64) -> Result<(), PersistError> {
        self.file.set_len(len)?;
        self.file.sync_data()?;
        self.len = len;
        self.next_seq = next_seq;
        Ok(())
    }

    /// Current committed byte length of the journal (header included).
    pub fn byte_len(&self) -> u64 {
        self.len
    }

    /// Sequence number the next [`JournalWriter::append`] will use.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }
}

/// One fully validated journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// The record's sequence number (1-based, gapless).
    pub seq: u64,
    /// The opaque payload (an encoded update batch at the core layer).
    pub payload: Vec<u8>,
}

/// The validated contents of a journal file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalContents {
    /// Every complete, checksum-valid record in order.
    pub records: Vec<JournalRecord>,
    /// Byte offset just past the last valid record — the length to truncate
    /// to before appending again ([`JournalWriter::open_at`]).
    pub clean_len: u64,
    /// Whether a torn (incomplete or checksum-failing) final record was
    /// dropped.
    pub torn_tail: bool,
}

impl JournalContents {
    /// Sequence number the next appended record should carry (1 for an
    /// empty journal).
    pub fn next_seq(&self) -> u64 {
        self.records.last().map_or(1, |r| r.seq + 1)
    }
}

/// Reads and validates the journal at `path` under the torn-tail policy
/// described in the module docs.  Header problems and mid-file corruption
/// are typed errors; only the final record may be silently dropped (and is
/// then reported via [`JournalContents::torn_tail`]).
pub fn read_journal(path: &Path) -> Result<JournalContents, PersistError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < JOURNAL_HEADER_LEN as usize {
        return Err(PersistError::Truncated {
            context: "journal header".to_string(),
        });
    }
    {
        let mut r = ByteReader::new(&bytes);
        let magic = r.take(8, "journal header")?;
        if magic != JOURNAL_MAGIC {
            return Err(PersistError::BadMagic {
                expected: "journal",
            });
        }
        let version = r.u32("journal header")?;
        if version != JOURNAL_VERSION {
            return Err(PersistError::BadVersion {
                found: version,
                expected: JOURNAL_VERSION,
            });
        }
        if r.u32("journal header")? != crate::snapshot::ENDIAN_TAG {
            return Err(PersistError::BadEndianness);
        }
    }

    let mut records = Vec::new();
    let mut offset = JOURNAL_HEADER_LEN as usize;
    let mut torn_tail = false;
    let mut expected_seq = 1u64;
    while offset < bytes.len() {
        // An incomplete frame can only be the torn final record.
        if bytes.len() - offset < RECORD_FRAME_LEN as usize {
            torn_tail = true;
            break;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        let body_start = offset + 8;
        let payload_start = body_start + 8;
        let end = match payload_start.checked_add(len) {
            Some(end) if end <= bytes.len() => end,
            // The declared payload runs past end-of-file: torn final write
            // (either the payload was cut short or the length field itself
            // is part of the torn bytes — both resolve to dropping the
            // record).
            _ => {
                torn_tail = true;
                break;
            }
        };
        if crc32(&bytes[body_start..end]) != crc {
            if end == bytes.len() {
                // Checksum failure on the record that extends to
                // end-of-file: indistinguishable from a torn write, treated
                // as clean end of log (module docs).
                torn_tail = true;
                break;
            }
            return Err(PersistError::ChecksumMismatch {
                context: format!("journal record at byte offset {offset}"),
            });
        }
        let seq = u64::from_le_bytes(bytes[body_start..payload_start].try_into().unwrap());
        if seq != expected_seq {
            return Err(PersistError::Corrupt {
                context: format!(
                    "journal record at byte offset {offset} carries sequence {seq}, expected \
                     {expected_seq} (duplicated, dropped or reordered record)"
                ),
            });
        }
        expected_seq += 1;
        records.push(JournalRecord {
            seq,
            payload: bytes[payload_start..end].to_vec(),
        });
        offset = end;
    }
    let clean_len = if torn_tail {
        offset as u64
    } else {
        bytes.len() as u64
    };
    Ok(JournalContents {
        records,
        clean_len,
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("carac-wal-{}-{name}", std::process::id()));
        p
    }

    fn write_records(path: &Path, payloads: &[&[u8]]) -> JournalWriter {
        let mut w = JournalWriter::create(path).unwrap();
        for p in payloads {
            w.append(p).unwrap();
        }
        w
    }

    #[test]
    fn roundtrips_records_in_order() {
        let path = temp_path("roundtrip");
        let w = write_records(&path, &[b"alpha", b"", b"gamma-longer-payload"]);
        let contents = read_journal(&path).unwrap();
        assert!(!contents.torn_tail);
        assert_eq!(contents.clean_len, w.byte_len());
        assert_eq!(contents.next_seq(), 4);
        assert_eq!(contents.records.len(), 3);
        assert_eq!(contents.records[0].payload, b"alpha");
        assert_eq!(contents.records[1].payload, b"");
        assert_eq!(contents.records[2].payload, b"gamma-longer-payload");
        assert_eq!(
            contents.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_journal_reads_clean() {
        let path = temp_path("empty");
        JournalWriter::create(&path).unwrap();
        let contents = read_journal(&path).unwrap();
        assert!(contents.records.is_empty());
        assert!(!contents.torn_tail);
        assert_eq!(contents.next_seq(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_tail_truncation_is_a_clean_prefix() {
        // The core torn-write property: cutting the file at ANY byte length
        // yields a valid record prefix (possibly with torn_tail), never an
        // error and never a divergent record — except inside the header,
        // which is a typed truncation error.
        let path = temp_path("truncate");
        write_records(&path, &[b"one", b"two", b"three"]);
        let pristine = std::fs::read(&path).unwrap();
        let full = read_journal(&path).unwrap();
        for len in 0..pristine.len() {
            std::fs::write(&path, &pristine[..len]).unwrap();
            if len < JOURNAL_HEADER_LEN as usize {
                assert!(read_journal(&path).is_err(), "short header at {len} parsed");
                continue;
            }
            let cut = read_journal(&path).unwrap();
            // Every surviving record matches the uncut journal's prefix.
            assert_eq!(
                cut.records[..],
                full.records[..cut.records.len()],
                "divergent prefix at cut {len}"
            );
            assert!(cut.records.len() <= full.records.len());
            // A cut exactly at a record boundary *is* a clean shorter log;
            // any partial record bytes past the boundary must be reported.
            assert_eq!(
                cut.torn_tail,
                len as u64 > cut.clean_len,
                "torn_tail mis-reported at cut {len}"
            );
            assert!(cut.clean_len <= len as u64);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_mid_file_is_typed_corruption() {
        let path = temp_path("midflip");
        write_records(&path, &[b"one", b"two", b"three"]);
        let pristine = std::fs::read(&path).unwrap();
        // Flip a payload bit of the FIRST record: later records still check
        // out, so this cannot be a torn write and must be a typed error.
        let mut bytes = pristine.clone();
        let first_payload = JOURNAL_HEADER_LEN as usize + RECORD_FRAME_LEN as usize;
        bytes[first_payload] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(PersistError::ChecksumMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_in_final_record_degrades_to_torn_tail() {
        let path = temp_path("tailflip");
        write_records(&path, &[b"one", b"two"]);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        std::fs::write(&path, &bytes).unwrap();
        let contents = read_journal(&path).unwrap();
        assert!(contents.torn_tail);
        assert_eq!(contents.records.len(), 1);
        assert_eq!(contents.records[0].payload, b"one");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicated_record_is_typed_corruption() {
        // A byte-exact copy of a record carries a valid checksum; only the
        // sequence monotonicity check can catch it.
        let path = temp_path("dup");
        write_records(&path, &[b"one", b"two"]);
        let mut bytes = std::fs::read(&path).unwrap();
        let rec1_start = JOURNAL_HEADER_LEN as usize;
        let rec1_end = rec1_start + RECORD_FRAME_LEN as usize + 3;
        let copy = bytes[rec1_start..rec1_end].to_vec();
        bytes.extend_from_slice(&copy);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(PersistError::Corrupt { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_corruption_is_typed() {
        let path = temp_path("header");
        write_records(&path, &[b"x"]);
        let pristine = std::fs::read(&path).unwrap();

        let mut bad_magic = pristine.clone();
        bad_magic[0] ^= 0xFF;
        std::fs::write(&path, &bad_magic).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(PersistError::BadMagic { .. })
        ));

        let mut bad_version = pristine.clone();
        bad_version[8..12].copy_from_slice(&7u32.to_le_bytes());
        std::fs::write(&path, &bad_version).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(PersistError::BadVersion { found: 7, .. })
        ));

        let mut bad_endian = pristine;
        bad_endian[12..16].copy_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, &bad_endian).unwrap();
        assert!(matches!(
            read_journal(&path),
            Err(PersistError::BadEndianness)
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_at_truncates_torn_tail_and_resumes_sequencing() {
        let path = temp_path("resume");
        write_records(&path, &[b"one", b"two"]);
        // Tear the final record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        let contents = read_journal(&path).unwrap();
        assert!(contents.torn_tail);
        assert_eq!(contents.records.len(), 1);
        // Resume appending where the clean prefix ends.
        let mut w = JournalWriter::open_at(&path, contents.clean_len, contents.next_seq()).unwrap();
        assert_eq!(w.next_seq(), 2);
        w.append(b"two-again").unwrap();
        let reread = read_journal(&path).unwrap();
        assert!(!reread.torn_tail);
        assert_eq!(reread.records.len(), 2);
        assert_eq!(reread.records[1].payload, b"two-again");
        assert_eq!(reread.records[1].seq, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncate_to_rolls_back_the_last_append() {
        let path = temp_path("rollback");
        let mut w = JournalWriter::create(&path).unwrap();
        w.append(b"keep").unwrap();
        let (len, seq) = (w.byte_len(), w.next_seq());
        w.append(b"discard").unwrap();
        w.truncate_to(len, seq).unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 1);
        assert_eq!(contents.records[0].payload, b"keep");
        // The writer keeps appending correctly after the rollback.
        w.append(b"next").unwrap();
        let contents = read_journal(&path).unwrap();
        assert_eq!(contents.records.len(), 2);
        assert_eq!(contents.records[1].payload, b"next");
        assert_eq!(contents.records[1].seq, 2);
        std::fs::remove_file(&path).ok();
    }
}
