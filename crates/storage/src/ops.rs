//! Basic relational operators.
//!
//! The execution backends implement their own fused n-way join kernels for
//! performance, but the relational layer also exposes the textbook unary and
//! binary operators (paper §V-D: "select, project, join, and union").  They
//! are used by the baseline engines, by tests as an executable specification
//! of the fused kernels, and by users who want to poke at relations directly.

use crate::hasher::FxHashMap;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// A selection predicate on a single relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// Column `col` must equal the constant `value`.
    ColumnEqualsConst {
        /// Filtered column position.
        col: usize,
        /// Constant the column must carry.
        value: Value,
    },
    /// Column `left` must equal column `right` (a self-join condition within
    /// one tuple).
    ColumnsEqual {
        /// Left column position.
        left: usize,
        /// Right column position.
        right: usize,
    },
}

impl Predicate {
    /// Evaluates the predicate against one tuple.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.matches_row(tuple.values())
    }

    /// Evaluates the predicate against one row slice (the storage-layout
    /// variant used when scanning a relation's row pool directly).
    pub fn matches_row(&self, row: &[Value]) -> bool {
        match *self {
            Predicate::ColumnEqualsConst { col, value } => row.get(col) == Some(&value),
            Predicate::ColumnsEqual { left, right } => {
                row.get(left).is_some() && row.get(left) == row.get(right)
            }
        }
    }
}

/// σ: returns the tuples of `input` satisfying all `predicates`.
pub fn select(input: &Relation, predicates: &[Predicate]) -> Vec<Tuple> {
    input
        .iter_rows()
        .filter(|row| predicates.iter().all(|p| p.matches_row(row)))
        .map(Tuple::from_row)
        .collect()
}

/// π: projects each tuple of `input` onto `columns` (in the given order).
/// Duplicates introduced by the projection are preserved in the returned
/// vector; callers inserting into a [`Relation`] get set semantics back.
pub fn project(input: &[Tuple], columns: &[usize]) -> Vec<Tuple> {
    input.iter().map(|t| t.project(columns)).collect()
}

/// ⋈: hash join of `left` and `right` on `left_col = right_col`.
///
/// The output tuples are the concatenation of the left tuple and the right
/// tuple (no column elimination); use [`project`] afterwards to shape the
/// result.  The smaller side is used as the build side.
pub fn hash_join(
    left: &[Tuple],
    right: &[Tuple],
    left_col: usize,
    right_col: usize,
) -> Vec<Tuple> {
    // Build on the smaller input to bound the hash table size.
    if right.len() < left.len() {
        let swapped = hash_join(right, left, right_col, left_col);
        // Re-concatenate in the caller's expected order (left ++ right).
        return swapped
            .into_iter()
            .map(|t| {
                let values = t.values();
                let (r, l) = values.split_at(right.first().map_or(0, Tuple::arity));
                Tuple::new(l.iter().chain(r.iter()).copied().collect())
            })
            .collect();
    }

    let mut table: FxHashMap<Value, Vec<&Tuple>> = FxHashMap::default();
    for tuple in left {
        if let Some(key) = tuple.get(left_col) {
            table.entry(key).or_default().push(tuple);
        }
    }
    let mut out = Vec::new();
    for r in right {
        let Some(key) = r.get(right_col) else { continue };
        if let Some(matches) = table.get(&key) {
            for l in matches {
                out.push(l.concat(r));
            }
        }
    }
    out
}

/// Cartesian product of two tuple sets (the degenerate join with no key).
pub fn cartesian_product(left: &[Tuple], right: &[Tuple]) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(left.len() * right.len());
    for l in left {
        for r in right {
            out.push(l.concat(r));
        }
    }
    out
}

/// ∪: set union of two tuple collections.
pub fn union(left: &[Tuple], right: &[Tuple]) -> Vec<Tuple> {
    let mut seen: crate::hasher::FxHashSet<Tuple> = crate::hasher::FxHashSet::default();
    let mut out = Vec::with_capacity(left.len() + right.len());
    for t in left.iter().chain(right.iter()) {
        if seen.insert(t.clone()) {
            out.push(t.clone());
        }
    }
    out
}

/// ∖: tuples of `left` that are not in `right`.
pub fn difference(left: &[Tuple], right: &Relation) -> Vec<Tuple> {
    left.iter()
        .filter(|t| !right.contains(t))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelId, RelationSchema};

    fn rel(name: &str, arity: usize, rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(RelationSchema::new(RelId(0), name, arity, true));
        for row in rows {
            r.insert(Tuple::from_ints(row)).unwrap();
        }
        r
    }

    #[test]
    fn select_filters_by_constant_and_column_equality() {
        let r = rel("R", 2, &[&[1, 1], &[1, 2], &[2, 2]]);
        let by_const = select(
            &r,
            &[Predicate::ColumnEqualsConst {
                col: 0,
                value: Value::int(1),
            }],
        );
        assert_eq!(by_const.len(), 2);

        let diagonal = select(&r, &[Predicate::ColumnsEqual { left: 0, right: 1 }]);
        assert_eq!(diagonal, vec![Tuple::pair(1, 1), Tuple::pair(2, 2)]);
    }

    #[test]
    fn project_reorders_columns() {
        let rows = vec![Tuple::pair(1, 2), Tuple::pair(3, 4)];
        let projected = project(&rows, &[1, 0]);
        assert_eq!(projected, vec![Tuple::pair(2, 1), Tuple::pair(4, 3)]);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let left = vec![Tuple::pair(1, 10), Tuple::pair(2, 20), Tuple::pair(3, 10)];
        let right = vec![Tuple::pair(10, 100), Tuple::pair(10, 200), Tuple::pair(20, 300)];
        let mut joined = hash_join(&left, &right, 1, 0);
        let mut expected = Vec::new();
        for l in &left {
            for r in &right {
                if l.get(1) == r.get(0) {
                    expected.push(l.concat(r));
                }
            }
        }
        joined.sort();
        expected.sort();
        assert_eq!(joined, expected);
        assert_eq!(joined.len(), 5);
    }

    #[test]
    fn hash_join_swaps_build_side_transparently() {
        // Left bigger than right triggers the swap path; output order of
        // columns must still be left ++ right.
        let left = vec![
            Tuple::pair(1, 5),
            Tuple::pair(2, 5),
            Tuple::pair(3, 5),
            Tuple::pair(4, 6),
        ];
        let right = vec![Tuple::pair(5, 50)];
        let joined = hash_join(&left, &right, 1, 0);
        assert_eq!(joined.len(), 3);
        for t in &joined {
            assert_eq!(t.arity(), 4);
            assert_eq!(t.get(1), Some(Value::int(5)));
            assert_eq!(t.get(2), Some(Value::int(5)));
            assert_eq!(t.get(3), Some(Value::int(50)));
        }
    }

    #[test]
    fn cartesian_product_sizes_multiply() {
        let left = vec![Tuple::from_ints(&[1]), Tuple::from_ints(&[2])];
        let right = vec![Tuple::from_ints(&[3]), Tuple::from_ints(&[4]), Tuple::from_ints(&[5])];
        assert_eq!(cartesian_product(&left, &right).len(), 6);
    }

    #[test]
    fn union_dedups() {
        let a = vec![Tuple::pair(1, 2), Tuple::pair(3, 4)];
        let b = vec![Tuple::pair(3, 4), Tuple::pair(5, 6)];
        let u = union(&a, &b);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn difference_removes_existing() {
        let existing = rel("R", 2, &[&[1, 2]]);
        let candidate = vec![Tuple::pair(1, 2), Tuple::pair(7, 8)];
        assert_eq!(difference(&candidate, &existing), vec![Tuple::pair(7, 8)]);
    }
}
