//! Basic relational operators.
//!
//! The execution backends implement their own fused n-way join kernels for
//! performance, but the relational layer also exposes the textbook unary and
//! binary operators (paper §V-D: "select, project, join, and union").  They
//! are used by the baseline engines, by tests as an executable specification
//! of the fused kernels, and by users who want to poke at relations directly.

use crate::hasher::FxHashMap;
use crate::relation::Relation;
use crate::tuple::Tuple;
use crate::value::Value;

/// The sign of one fact in a signed delta relation: whether the fact is
/// being added to or removed from the extensional database.  Update batches
/// ship `(relation, sign, row)` triples; the incremental maintenance
/// subsystem turns them into counted semi-naive (non-recursive strata) or
/// delete/re-derive (recursive strata) propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaSign {
    /// The fact enters the database.
    Insert,
    /// The fact leaves the database.
    Retract,
}

/// A binary comparison operator between two [`Value`]s.
///
/// Comparisons are over the raw 32-bit representation: plain integers order
/// numerically, interned symbols order by interning id (and always above
/// every integer).  The frontend exposes these as the `<`, `<=`, `>`, `>=`,
/// `=`, `!=` body constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
}

impl CmpOp {
    /// Evaluates the comparison on two values (raw 32-bit order).
    #[inline]
    pub fn eval(self, a: Value, b: Value) -> bool {
        match self {
            CmpOp::Lt => a.raw() < b.raw(),
            CmpOp::Le => a.raw() <= b.raw(),
            CmpOp::Gt => a.raw() > b.raw(),
            CmpOp::Ge => a.raw() >= b.raw(),
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        }
    }

    /// The concrete-syntax spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        }
    }

    /// The operator with its operands swapped (`a op b` ⇔ `b op.flip() a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }
}

/// An aggregation function applicable to one column of a relation.
///
/// Aggregation runs under set semantics: the aggregated relation is a set of
/// rows, so `Count` counts distinct rows per group and `Sum` adds each
/// distinct row's value once.  `Sum` and `Count` results saturate at the top
/// of the plain-integer value range ([`Value::SYMBOL_BASE`]` - 1`) so they
/// can never collide with an interned symbol; `Min`/`Max` return one of the
/// input values unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of distinct rows in the group.
    Count,
    /// Sum of the column over the group's distinct rows.
    Sum,
    /// Smallest value of the column in the group (raw 32-bit order).
    Min,
    /// Largest value of the column in the group (raw 32-bit order).
    Max,
}

impl AggFunc {
    /// The concrete-syntax spelling of the function.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Parses a concrete-syntax spelling.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// Fresh accumulator state for this function.
    #[inline]
    pub fn init(self) -> u64 {
        match self {
            AggFunc::Count | AggFunc::Sum => 0,
            AggFunc::Min => u64::MAX,
            AggFunc::Max => 0,
        }
    }

    /// Folds one row's column value into the accumulator.
    #[inline]
    pub fn fold(self, acc: u64, value: Value) -> u64 {
        let raw = value.raw() as u64;
        match self {
            AggFunc::Count => acc + 1,
            AggFunc::Sum => acc.saturating_add(raw),
            AggFunc::Min => acc.min(raw),
            AggFunc::Max => acc.max(raw),
        }
    }

    /// Finalizes the accumulator into a value.  `Count`/`Sum` saturate at
    /// the top of the plain-integer range; `Min` over an empty group (which
    /// the engine never produces — empty groups emit no row) would saturate
    /// the same way.
    #[inline]
    pub fn finish(self, acc: u64) -> Value {
        match self {
            AggFunc::Count | AggFunc::Sum => Value(acc.min((Value::SYMBOL_BASE - 1) as u64) as u32),
            AggFunc::Min | AggFunc::Max => Value(acc.min(u32::MAX as u64) as u32),
        }
    }
}

/// A selection predicate on a single relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// Column `col` must equal the constant `value`.
    ColumnEqualsConst {
        /// Filtered column position.
        col: usize,
        /// Constant the column must carry.
        value: Value,
    },
    /// Column `left` must equal column `right` (a self-join condition within
    /// one tuple).
    ColumnsEqual {
        /// Left column position.
        left: usize,
        /// Right column position.
        right: usize,
    },
}

impl Predicate {
    /// Evaluates the predicate against one tuple.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        self.matches_row(tuple.values())
    }

    /// Evaluates the predicate against one row slice (the storage-layout
    /// variant used when scanning a relation's row pool directly).
    pub fn matches_row(&self, row: &[Value]) -> bool {
        match *self {
            Predicate::ColumnEqualsConst { col, value } => row.get(col) == Some(&value),
            Predicate::ColumnsEqual { left, right } => {
                row.get(left).is_some() && row.get(left) == row.get(right)
            }
        }
    }
}

/// σ: returns the tuples of `input` satisfying all `predicates`.
pub fn select(input: &Relation, predicates: &[Predicate]) -> Vec<Tuple> {
    input
        .iter_rows()
        .filter(|row| predicates.iter().all(|p| p.matches_row(row)))
        .map(Tuple::from_row)
        .collect()
}

/// π: projects each tuple of `input` onto `columns` (in the given order).
/// Duplicates introduced by the projection are preserved in the returned
/// vector; callers inserting into a [`Relation`] get set semantics back.
pub fn project(input: &[Tuple], columns: &[usize]) -> Vec<Tuple> {
    input.iter().map(|t| t.project(columns)).collect()
}

/// ⋈: hash join of `left` and `right` on `left_col = right_col`.
///
/// The output tuples are the concatenation of the left tuple and the right
/// tuple (no column elimination); use [`project`] afterwards to shape the
/// result.  The smaller side is used as the build side.
pub fn hash_join(left: &[Tuple], right: &[Tuple], left_col: usize, right_col: usize) -> Vec<Tuple> {
    // Build on the smaller input to bound the hash table size.
    if right.len() < left.len() {
        let swapped = hash_join(right, left, right_col, left_col);
        // Re-concatenate in the caller's expected order (left ++ right).
        return swapped
            .into_iter()
            .map(|t| {
                let values = t.values();
                let (r, l) = values.split_at(right.first().map_or(0, Tuple::arity));
                Tuple::new(l.iter().chain(r.iter()).copied().collect())
            })
            .collect();
    }

    let mut table: FxHashMap<Value, Vec<&Tuple>> = FxHashMap::default();
    for tuple in left {
        if let Some(key) = tuple.get(left_col) {
            table.entry(key).or_default().push(tuple);
        }
    }
    let mut out = Vec::new();
    for r in right {
        let Some(key) = r.get(right_col) else {
            continue;
        };
        if let Some(matches) = table.get(&key) {
            for l in matches {
                out.push(l.concat(r));
            }
        }
    }
    out
}

/// Cartesian product of two tuple sets (the degenerate join with no key).
pub fn cartesian_product(left: &[Tuple], right: &[Tuple]) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(left.len() * right.len());
    for l in left {
        for r in right {
            out.push(l.concat(r));
        }
    }
    out
}

/// ∪: set union of two tuple collections.
pub fn union(left: &[Tuple], right: &[Tuple]) -> Vec<Tuple> {
    let mut seen: crate::hasher::FxHashSet<Tuple> = crate::hasher::FxHashSet::default();
    let mut out = Vec::with_capacity(left.len() + right.len());
    for t in left.iter().chain(right.iter()) {
        if seen.insert(t.clone()) {
            out.push(t.clone());
        }
    }
    out
}

/// ∖: tuples of `left` that are not in `right`.
pub fn difference(left: &[Tuple], right: &Relation) -> Vec<Tuple> {
    left.iter()
        .filter(|t| !right.contains(t))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{RelId, RelationSchema};

    fn rel(name: &str, arity: usize, rows: &[&[u32]]) -> Relation {
        let mut r = Relation::new(RelationSchema::new(RelId(0), name, arity, true));
        for row in rows {
            r.insert(Tuple::from_ints(row)).unwrap();
        }
        r
    }

    #[test]
    fn cmp_op_eval_and_flip() {
        let a = Value::int(3);
        let b = Value::int(7);
        assert!(CmpOp::Lt.eval(a, b));
        assert!(CmpOp::Le.eval(a, a));
        assert!(CmpOp::Gt.eval(b, a));
        assert!(CmpOp::Ge.eval(b, b));
        assert!(CmpOp::Eq.eval(a, a));
        assert!(CmpOp::Ne.eval(a, b));
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert_eq!(op.eval(a, b), op.flip().eval(b, a));
            assert_eq!(AggFunc::from_name(op.symbol()), None);
        }
    }

    #[test]
    fn agg_func_fold_and_saturation() {
        // Sum saturates below the symbol range instead of wrapping into it.
        let mut acc = AggFunc::Sum.init();
        for _ in 0..3 {
            acc = AggFunc::Sum.fold(acc, Value::int(Value::SYMBOL_BASE - 1));
        }
        let result = AggFunc::Sum.finish(acc);
        assert!(!result.is_symbol());
        assert_eq!(result.raw(), Value::SYMBOL_BASE - 1);
        // Count counts folds.
        let mut c = AggFunc::Count.init();
        c = AggFunc::Count.fold(c, Value::int(9));
        c = AggFunc::Count.fold(c, Value::int(1));
        assert_eq!(AggFunc::Count.finish(c), Value::int(2));
        // Round-trip names.
        for f in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            assert_eq!(AggFunc::from_name(f.name()), Some(f));
        }
    }

    #[test]
    fn select_filters_by_constant_and_column_equality() {
        let r = rel("R", 2, &[&[1, 1], &[1, 2], &[2, 2]]);
        let by_const = select(
            &r,
            &[Predicate::ColumnEqualsConst {
                col: 0,
                value: Value::int(1),
            }],
        );
        assert_eq!(by_const.len(), 2);

        let diagonal = select(&r, &[Predicate::ColumnsEqual { left: 0, right: 1 }]);
        assert_eq!(diagonal, vec![Tuple::pair(1, 1), Tuple::pair(2, 2)]);
    }

    #[test]
    fn project_reorders_columns() {
        let rows = vec![Tuple::pair(1, 2), Tuple::pair(3, 4)];
        let projected = project(&rows, &[1, 0]);
        assert_eq!(projected, vec![Tuple::pair(2, 1), Tuple::pair(4, 3)]);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let left = vec![Tuple::pair(1, 10), Tuple::pair(2, 20), Tuple::pair(3, 10)];
        let right = vec![
            Tuple::pair(10, 100),
            Tuple::pair(10, 200),
            Tuple::pair(20, 300),
        ];
        let mut joined = hash_join(&left, &right, 1, 0);
        let mut expected = Vec::new();
        for l in &left {
            for r in &right {
                if l.get(1) == r.get(0) {
                    expected.push(l.concat(r));
                }
            }
        }
        joined.sort();
        expected.sort();
        assert_eq!(joined, expected);
        assert_eq!(joined.len(), 5);
    }

    #[test]
    fn hash_join_swaps_build_side_transparently() {
        // Left bigger than right triggers the swap path; output order of
        // columns must still be left ++ right.
        let left = vec![
            Tuple::pair(1, 5),
            Tuple::pair(2, 5),
            Tuple::pair(3, 5),
            Tuple::pair(4, 6),
        ];
        let right = vec![Tuple::pair(5, 50)];
        let joined = hash_join(&left, &right, 1, 0);
        assert_eq!(joined.len(), 3);
        for t in &joined {
            assert_eq!(t.arity(), 4);
            assert_eq!(t.get(1), Some(Value::int(5)));
            assert_eq!(t.get(2), Some(Value::int(5)));
            assert_eq!(t.get(3), Some(Value::int(50)));
        }
    }

    #[test]
    fn cartesian_product_sizes_multiply() {
        let left = vec![Tuple::from_ints(&[1]), Tuple::from_ints(&[2])];
        let right = vec![
            Tuple::from_ints(&[3]),
            Tuple::from_ints(&[4]),
            Tuple::from_ints(&[5]),
        ];
        assert_eq!(cartesian_product(&left, &right).len(), 6);
    }

    #[test]
    fn union_dedups() {
        let a = vec![Tuple::pair(1, 2), Tuple::pair(3, 4)];
        let b = vec![Tuple::pair(3, 4), Tuple::pair(5, 6)];
        let u = union(&a, &b);
        assert_eq!(u.len(), 3);
    }

    #[test]
    fn difference_removes_existing() {
        let existing = rel("R", 2, &[&[1, 2]]);
        let candidate = vec![Tuple::pair(1, 2), Tuple::pair(7, 8)];
        assert_eq!(difference(&candidate, &existing), vec![Tuple::pair(7, 8)]);
    }
}
