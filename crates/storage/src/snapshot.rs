//! On-disk snapshots of the derived database and symbol table.
//!
//! A snapshot captures everything a live session needs to resume
//! incremental maintenance without re-evaluation: the symbol dictionary (in
//! interning order, so the 32-bit [`Value`] encoding of every stored row
//! stays meaningful), and — per relation — the live rows of the *derived*
//! database in row-major form together with their support counts and the
//! pool's compaction generation.  The delta databases are deliberately not
//! captured: the incremental subsystem clears them defensively at the start
//! of every batch, so the derived database alone is the resumable state.
//!
//! The format is std-only and integrity-checked end to end: a file-level
//! header (magic, format version, endianness tag) followed by framed
//! sections, each carrying its payload length and a CRC-32.  Readers
//! validate the frame *before* parsing the payload — a truncated or
//! bit-flipped file is detected and rejected with a typed
//! [`PersistError`], never deserialized into wrong state.
//!
//! All multi-byte integers are little-endian on disk regardless of the host
//! (`to_le_bytes`/`from_le_bytes` on both sides); the endianness tag in the
//! header is a sanity marker against foreign writers, not a switch.
//!
//! Writes are atomic: the snapshot is assembled in memory, written to a
//! sibling temp file, fsync'd, and renamed over the destination (with a
//! best-effort fsync of the parent directory), so a crash mid-checkpoint
//! leaves either the old snapshot or the new one — never a torn hybrid.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use crate::database::{DbKind, StorageManager};
use crate::error::StorageError;
use crate::pool::RowId;
use crate::schema::RelId;
use crate::symbol::SymbolTable;
use crate::value::Value;

/// Magic bytes opening every snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CARACSNP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Endianness tag stored in the header: decodes to this constant only when
/// the file was written little-endian by this format.
pub const ENDIAN_TAG: u32 = 0x0A0B_0C0D;

const SECTION_META: u32 = 1;
const SECTION_SYMBOLS: u32 = 2;
const SECTION_RELATIONS: u32 = 3;

/// Errors of the persistence layer (snapshots and journals).
///
/// Every corruption mode a fault can introduce — truncation, bit flips,
/// foreign or future files — maps to a typed variant here, so callers can
/// distinguish "this file is damaged" from "this file belongs to a
/// different program" and recovery never panics on bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An I/O operation failed (the message carries the OS error).
    Io(String),
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// Which kind of file was expected ("snapshot" or "journal").
        expected: &'static str,
    },
    /// The file carries a format version this build cannot read.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The header's endianness tag does not match the format constant.
    BadEndianness,
    /// The file ends before a complete header, frame or payload.
    Truncated {
        /// What was being read when the bytes ran out.
        context: String,
    },
    /// A section or record checksum does not match its payload.
    ChecksumMismatch {
        /// The section or record that failed validation.
        context: String,
    },
    /// The file is well-framed but its contents do not match the engine
    /// state it is being restored into (relation catalog, symbol table).
    SchemaMismatch {
        /// Description of the disagreement.
        context: String,
    },
    /// The file is framed and checksummed correctly but semantically
    /// invalid (duplicate rows, out-of-range symbol indices, non-monotonic
    /// journal sequence numbers).
    Corrupt {
        /// Description of the invalid content.
        context: String,
    },
    /// A storage-layer error surfaced while rebuilding state.
    Storage(StorageError),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(msg) => write!(f, "persistence I/O error: {msg}"),
            PersistError::BadMagic { expected } => {
                write!(f, "not a carac {expected} file (bad magic)")
            }
            PersistError::BadVersion { found, expected } => write!(
                f,
                "unsupported format version {found} (this build reads version {expected})"
            ),
            PersistError::BadEndianness => {
                write!(
                    f,
                    "endianness tag mismatch: file written by a foreign encoder"
                )
            }
            PersistError::Truncated { context } => {
                write!(f, "file truncated while reading {context}")
            }
            PersistError::ChecksumMismatch { context } => {
                write!(f, "checksum mismatch in {context}")
            }
            PersistError::SchemaMismatch { context } => {
                write!(f, "snapshot does not match the engine state: {context}")
            }
            PersistError::Corrupt { context } => write!(f, "corrupt file contents: {context}"),
            PersistError::Storage(err) => write!(f, "storage error during restore: {err}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Storage(err) => Some(err),
            _ => None,
        }
    }
}

impl From<StorageError> for PersistError {
    fn from(err: StorageError) -> Self {
        PersistError::Storage(err)
    }
}

impl From<std::io::Error> for PersistError {
    fn from(err: std::io::Error) -> Self {
        PersistError::Io(err.to_string())
    }
}

/// CRC-32 (ISO-HDLC, the zlib/PNG polynomial) over `bytes` — the per-section
/// and per-record integrity check of the snapshot and journal formats.
/// Table-driven, std-only.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Bounds-checked little-endian reader over a byte buffer: every primitive
/// read reports a typed [`PersistError::Truncated`] instead of panicking,
/// which is what lets arbitrary fault-injected bytes flow through the
/// parser safely.
pub(crate) struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize, context: &str) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated {
                context: context.to_string(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, context: &str) -> Result<u8, PersistError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn u32(&mut self, context: &str) -> Result<u32, PersistError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, context: &str) -> Result<u64, PersistError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// One relation's captured derived state: schema identity, the pool's
/// compaction generation, and the live rows (row-major) with their support
/// counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSnapshot {
    /// Relation name (restore matches it against the target catalog).
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// Whether the relation is extensional.
    pub is_edb: bool,
    /// The row pool's compaction generation at capture time, restored so
    /// the generation counter stays monotonic across a process restart.
    pub generation: u64,
    /// All live rows, row-major (`rows * arity` values).
    pub values: Vec<Value>,
    /// Per-row support counts, parallel to the rows.
    pub support: Vec<u32>,
}

impl RelationSnapshot {
    /// Number of rows captured.
    pub fn row_count(&self) -> usize {
        self.support.len()
    }
}

/// A fully parsed, integrity-checked snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Number of journaled update batches already folded into this
    /// snapshot — recovery replays only journal records with a sequence
    /// number above this.
    pub journal_seq: u64,
    /// The symbol dictionary in interning order (index = symbol index).
    pub symbols: Vec<String>,
    /// Per-relation captured state, in relation-id order.
    pub relations: Vec<RelationSnapshot>,
}

impl Snapshot {
    /// Checks that `table` interns every snapshot symbol at the same index,
    /// so the [`Value`]s stored in the snapshot's rows decode to the same
    /// constants in the restoring program.  The table may hold *more*
    /// symbols (interning is append-only); it must agree on the prefix.
    pub fn validate_symbols(&self, table: &SymbolTable) -> Result<(), PersistError> {
        if self.symbols.len() > table.len() {
            return Err(PersistError::SchemaMismatch {
                context: format!(
                    "snapshot interns {} symbols, the program only {}",
                    self.symbols.len(),
                    table.len()
                ),
            });
        }
        for (idx, name) in self.symbols.iter().enumerate() {
            let expected = Value::symbol(idx as u32);
            if table.lookup(name) != Some(expected) {
                return Err(PersistError::SchemaMismatch {
                    context: format!(
                        "symbol `{name}` is interned at index {idx} in the snapshot but not in \
                         the program"
                    ),
                });
            }
        }
        Ok(())
    }

    /// Replaces the derived database of `storage` with the snapshot's
    /// contents: every relation is cleared (deltas included) and refilled
    /// with the captured rows, support counts and generation counter.
    /// Index and shard *definitions* on the target are kept and maintained
    /// through the normal insert path.
    ///
    /// The target's relation catalog must match the snapshot exactly (same
    /// names, arities and EDB flags in id order) — restoring a snapshot
    /// into a different program is a typed [`PersistError::SchemaMismatch`].
    pub fn apply(&self, storage: &mut StorageManager) -> Result<(), PersistError> {
        if storage.relation_count() != self.relations.len() {
            return Err(PersistError::SchemaMismatch {
                context: format!(
                    "snapshot holds {} relations, the engine declares {}",
                    self.relations.len(),
                    storage.relation_count()
                ),
            });
        }
        for (idx, snap) in self.relations.iter().enumerate() {
            let schema = storage.schema(RelId(idx as u32))?;
            if schema.name != snap.name
                || schema.arity != snap.arity
                || schema.is_edb != snap.is_edb
            {
                return Err(PersistError::SchemaMismatch {
                    context: format!(
                        "relation {idx}: snapshot has {}/{} ({}), engine declares {}/{} ({})",
                        snap.name,
                        snap.arity,
                        if snap.is_edb { "edb" } else { "idb" },
                        schema.name,
                        schema.arity,
                        if schema.is_edb { "edb" } else { "idb" },
                    ),
                });
            }
        }
        let all: Vec<RelId> = (0..self.relations.len()).map(|i| RelId(i as u32)).collect();
        storage.clear_deltas(&all)?;
        for (idx, snap) in self.relations.iter().enumerate() {
            let rel = storage.derived_relation_mut(RelId(idx as u32))?;
            rel.clear();
            for row in 0..snap.row_count() {
                let values = if snap.arity == 0 {
                    &[][..]
                } else {
                    &snap.values[row * snap.arity..(row + 1) * snap.arity]
                };
                if !rel.insert_row(values)? {
                    return Err(PersistError::Corrupt {
                        context: format!("duplicate row {row} in relation `{}`", snap.name),
                    });
                }
                rel.set_support(row as RowId, snap.support[row]);
            }
            rel.set_generation(snap.generation);
        }
        Ok(())
    }
}

/// Serializes the derived database of `storage` plus the symbol dictionary
/// of `symbols` into the snapshot format and writes it **atomically** to
/// `path` (temp file + fsync + rename).  `journal_seq` records how many
/// journaled update batches are already folded into this state.
pub fn write_snapshot(
    path: &Path,
    storage: &StorageManager,
    symbols: &SymbolTable,
    journal_seq: u64,
) -> Result<(), PersistError> {
    let bytes = encode_snapshot(storage, symbols, journal_seq);
    let tmp = tmp_sibling(path);
    {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    if let Err(err) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(err.into());
    }
    // Durability of the rename itself: fsync the parent directory where the
    // platform supports opening directories (best-effort elsewhere).
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// Reads and fully validates the snapshot at `path`.  Any framing, checksum
/// or content problem surfaces as a typed [`PersistError`]; no partially
/// parsed state escapes.
pub fn read_snapshot(path: &Path) -> Result<Snapshot, PersistError> {
    let bytes = std::fs::read(path)?;
    decode_snapshot(&bytes)
}

/// Name of the temp file a snapshot is staged in before the atomic rename
/// (a sibling so the rename never crosses filesystems).
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path
        .file_name()
        .map(std::ffi::OsStr::to_os_string)
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_section(out: &mut Vec<u8>, tag: u32, payload: &[u8]) {
    push_u32(out, tag);
    push_u64(out, payload.len() as u64);
    push_u32(out, crc32(payload));
    out.extend_from_slice(payload);
}

fn encode_snapshot(storage: &StorageManager, symbols: &SymbolTable, journal_seq: u64) -> Vec<u8> {
    // META: the journal watermark.
    let mut meta = Vec::new();
    push_u64(&mut meta, journal_seq);

    // SYMBOLS: the dictionary in interning order.
    let mut syms = Vec::new();
    push_u32(&mut syms, symbols.len() as u32);
    for idx in 0..symbols.len() as u32 {
        let name = symbols
            .resolve(Value::symbol(idx))
            .expect("symbol indices are dense");
        push_str(&mut syms, name);
    }

    // RELATIONS: row-major frames of the derived database.
    let mut rels = Vec::new();
    push_u32(&mut rels, storage.relation_count() as u32);
    for schema in storage.schemas() {
        let rel = storage
            .relation(DbKind::Derived, schema.id)
            .expect("catalog ids are dense");
        push_str(&mut rels, &schema.name);
        push_u32(&mut rels, schema.arity as u32);
        rels.push(u8::from(schema.is_edb));
        push_u64(&mut rels, rel.generation());
        push_u64(&mut rels, rel.len() as u64);
        // Live rows in insertion order, values then support counts — the
        // on-disk image is the compacted form of the pool.
        for row in 0..rel.slot_count() as RowId {
            if !rel.is_live(row) {
                continue;
            }
            for &v in rel.row(row) {
                push_u32(&mut rels, v.raw());
            }
        }
        for row in 0..rel.slot_count() as RowId {
            if rel.is_live(row) {
                push_u32(&mut rels, rel.support_of(row));
            }
        }
    }

    let mut out = Vec::with_capacity(24 + meta.len() + syms.len() + rels.len() + 48);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    push_u32(&mut out, SNAPSHOT_VERSION);
    push_u32(&mut out, ENDIAN_TAG);
    push_u32(&mut out, 3); // section count
    push_section(&mut out, SECTION_META, &meta);
    push_section(&mut out, SECTION_SYMBOLS, &syms);
    push_section(&mut out, SECTION_RELATIONS, &rels);
    out
}

/// Validates header + frames and parses the three sections.
fn decode_snapshot(bytes: &[u8]) -> Result<Snapshot, PersistError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take(8, "snapshot header")?;
    if magic != SNAPSHOT_MAGIC {
        return Err(PersistError::BadMagic {
            expected: "snapshot",
        });
    }
    let version = r.u32("snapshot header")?;
    if version != SNAPSHOT_VERSION {
        return Err(PersistError::BadVersion {
            found: version,
            expected: SNAPSHOT_VERSION,
        });
    }
    if r.u32("snapshot header")? != ENDIAN_TAG {
        return Err(PersistError::BadEndianness);
    }
    let section_count = r.u32("snapshot header")?;
    if section_count != 3 {
        return Err(PersistError::Corrupt {
            context: format!("expected 3 sections, header declares {section_count}"),
        });
    }

    let mut meta = None;
    let mut symbols = None;
    let mut relations = None;
    for _ in 0..section_count {
        let tag = r.u32("section frame")?;
        let len = r.u64("section frame")?;
        let crc = r.u32("section frame")?;
        let len = usize::try_from(len).map_err(|_| PersistError::Corrupt {
            context: "section length overflows the address space".to_string(),
        })?;
        let payload = r.take(len, "section payload")?;
        // Integrity first: a payload whose checksum fails is never parsed.
        if crc32(payload) != crc {
            return Err(PersistError::ChecksumMismatch {
                context: format!("section tag {tag}"),
            });
        }
        match tag {
            SECTION_META => meta = Some(decode_meta(payload)?),
            SECTION_SYMBOLS => symbols = Some(decode_symbols(payload)?),
            SECTION_RELATIONS => relations = Some(payload),
            other => {
                return Err(PersistError::Corrupt {
                    context: format!("unknown section tag {other}"),
                })
            }
        }
    }
    if r.remaining() != 0 {
        return Err(PersistError::Corrupt {
            context: format!("{} trailing bytes after the last section", r.remaining()),
        });
    }
    let journal_seq = meta.ok_or_else(|| PersistError::Corrupt {
        context: "missing META section".to_string(),
    })?;
    let symbols = symbols.ok_or_else(|| PersistError::Corrupt {
        context: "missing SYMBOLS section".to_string(),
    })?;
    let relations_payload = relations.ok_or_else(|| PersistError::Corrupt {
        context: "missing RELATIONS section".to_string(),
    })?;
    let relations = decode_relations(relations_payload, symbols.len() as u32)?;
    Ok(Snapshot {
        journal_seq,
        symbols,
        relations,
    })
}

fn decode_meta(payload: &[u8]) -> Result<u64, PersistError> {
    let mut r = ByteReader::new(payload);
    let seq = r.u64("META section")?;
    if r.remaining() != 0 {
        return Err(PersistError::Corrupt {
            context: "trailing bytes in META section".to_string(),
        });
    }
    Ok(seq)
}

fn decode_symbols(payload: &[u8]) -> Result<Vec<String>, PersistError> {
    let mut r = ByteReader::new(payload);
    let count = r.u32("SYMBOLS section")? as usize;
    let mut symbols = Vec::with_capacity(count.min(payload.len()));
    for i in 0..count {
        let len = r.u32("symbol length")? as usize;
        let bytes = r.take(len, "symbol bytes")?;
        let name = std::str::from_utf8(bytes).map_err(|_| PersistError::Corrupt {
            context: format!("symbol {i} is not valid UTF-8"),
        })?;
        symbols.push(name.to_string());
    }
    if r.remaining() != 0 {
        return Err(PersistError::Corrupt {
            context: "trailing bytes in SYMBOLS section".to_string(),
        });
    }
    Ok(symbols)
}

fn decode_relations(
    payload: &[u8],
    symbol_count: u32,
) -> Result<Vec<RelationSnapshot>, PersistError> {
    let mut r = ByteReader::new(payload);
    let count = r.u32("RELATIONS section")? as usize;
    let mut relations = Vec::with_capacity(count.min(payload.len()));
    for idx in 0..count {
        let name_len = r.u32("relation name length")? as usize;
        let name_bytes = r.take(name_len, "relation name")?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| PersistError::Corrupt {
                context: format!("relation {idx} name is not valid UTF-8"),
            })?
            .to_string();
        let arity = r.u32("relation arity")? as usize;
        let is_edb = match r.u8("relation kind")? {
            0 => false,
            1 => true,
            other => {
                return Err(PersistError::Corrupt {
                    context: format!("relation `{name}` kind byte is {other}"),
                })
            }
        };
        let generation = r.u64("relation generation")?;
        let rows = r.u64("relation row count")?;
        let rows = usize::try_from(rows).map_err(|_| PersistError::Corrupt {
            context: format!("relation `{name}` row count overflows"),
        })?;
        // The frame must physically fit before any value is decoded.
        let value_bytes = rows
            .checked_mul(arity)
            .and_then(|n| n.checked_mul(4))
            .ok_or_else(|| PersistError::Corrupt {
                context: format!("relation `{name}` frame size overflows"),
            })?;
        if r.remaining() < value_bytes + rows * 4 {
            return Err(PersistError::Truncated {
                context: format!("rows of relation `{name}`"),
            });
        }
        let mut values = Vec::with_capacity(rows * arity);
        for _ in 0..rows * arity {
            let raw = r.u32("row value")?;
            let value = Value(raw);
            if let Some(sym) = value.symbol_index() {
                if sym >= symbol_count {
                    return Err(PersistError::Corrupt {
                        context: format!(
                            "relation `{name}` references symbol {sym}, dictionary holds \
                             {symbol_count}"
                        ),
                    });
                }
            }
            values.push(value);
        }
        let mut support = Vec::with_capacity(rows);
        for _ in 0..rows {
            support.push(r.u32("support count")?);
        }
        relations.push(RelationSnapshot {
            name,
            arity,
            is_edb,
            generation,
            values,
            support,
        });
    }
    if r.remaining() != 0 {
        return Err(PersistError::Corrupt {
            context: "trailing bytes in RELATIONS section".to_string(),
        });
    }
    Ok(relations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("carac-snap-{}-{name}", std::process::id()));
        p
    }

    fn sample_state() -> (StorageManager, SymbolTable) {
        let mut sm = StorageManager::new(true);
        let edge = sm.register("Edge", 2, true);
        let path = sm.register("Path", 2, false);
        sm.register("Flag", 0, true);
        let mut symbols = SymbolTable::new();
        let a = symbols.intern("alpha");
        let b = symbols.intern("beta");
        sm.insert_fact(edge, Tuple::pair(1, 2)).unwrap();
        sm.insert_fact(edge, Tuple::new(vec![a, b])).unwrap();
        sm.insert_derived(path, Tuple::pair(1, 2)).unwrap();
        sm.insert_derived(path, Tuple::pair(1, 2)).unwrap(); // support 2
        sm.swap_and_clear(&[path]).unwrap();
        (sm, symbols)
    }

    fn fresh_target() -> StorageManager {
        let mut sm = StorageManager::new(true);
        sm.register("Edge", 2, true);
        sm.register("Path", 2, false);
        sm.register("Flag", 0, true);
        sm
    }

    #[test]
    fn snapshot_roundtrips_rows_support_and_generation() {
        let (mut sm, symbols) = sample_state();
        // Exercise the tombstone path: retract then compact so the source
        // pool's generation moves and the snapshot stores live rows only.
        let edge = sm.rel_by_name("Edge").unwrap();
        sm.retract_fact_row(edge, &[Value::int(1), Value::int(2)])
            .unwrap();
        let path = temp_path("roundtrip");
        write_snapshot(&path, &sm, &symbols, 7).unwrap();
        let snap = read_snapshot(&path).unwrap();
        assert_eq!(snap.journal_seq, 7);
        assert_eq!(snap.symbols, vec!["alpha".to_string(), "beta".to_string()]);
        assert_eq!(snap.relations.len(), 3);
        assert_eq!(snap.relations[0].row_count(), 1); // retracted row dropped
        snap.validate_symbols(&symbols).unwrap();

        let mut target = fresh_target();
        snap.apply(&mut target).unwrap();
        let edge_rel = target.relation(DbKind::Derived, edge).unwrap();
        assert_eq!(edge_rel.len(), 1);
        assert!(edge_rel.contains(&Tuple::new(vec![
            symbols.lookup("alpha").unwrap(),
            symbols.lookup("beta").unwrap()
        ])));
        let path_rel = target
            .relation(DbKind::Derived, target.rel_by_name("Path").unwrap())
            .unwrap();
        assert_eq!(path_rel.len(), 1);
        assert_eq!(path_rel.support_of(0), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn generation_counter_survives_the_roundtrip() {
        let (mut sm, symbols) = sample_state();
        let edge = sm.rel_by_name("Edge").unwrap();
        sm.retract_fact_row(edge, &[Value::int(1), Value::int(2)])
            .unwrap();
        // Force a compaction so the generation moves off zero.
        if let Ok(rel) = sm.derived_relation_mut(edge) {
            rel.compact();
        }
        assert_eq!(sm.derived_generation(edge).unwrap(), 1);
        let path = temp_path("generation");
        write_snapshot(&path, &sm, &symbols, 0).unwrap();
        let snap = read_snapshot(&path).unwrap();
        let mut target = fresh_target();
        snap.apply(&mut target).unwrap();
        assert_eq!(target.derived_generation(edge).unwrap(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_header_is_rejected_typed() {
        let (sm, symbols) = sample_state();
        let path = temp_path("header");
        write_snapshot(&path, &sm, &symbols, 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(PersistError::BadMagic { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_version_is_rejected_typed() {
        let (sm, symbols) = sample_state();
        let path = temp_path("version");
        write_snapshot(&path, &sm, &symbols, 0).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(PersistError::BadVersion {
                found: 99,
                expected: SNAPSHOT_VERSION
            })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        // The acceptance bar in miniature: flip each bit of a small
        // snapshot and require a typed error or (for bits in ignored
        // positions — there are none in this format) an identical parse.
        let (sm, symbols) = sample_state();
        let path = temp_path("bitflip");
        write_snapshot(&path, &sm, &symbols, 3).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        let baseline = read_snapshot(&path).unwrap();
        for byte in 0..pristine.len() {
            for bit in 0..8 {
                let mut bytes = pristine.clone();
                bytes[byte] ^= 1 << bit;
                std::fs::write(&path, &bytes).unwrap();
                match read_snapshot(&path) {
                    Err(_) => {}
                    Ok(parsed) => panic!(
                        "bit {bit} of byte {byte} flipped silently: {parsed:?} vs {baseline:?}"
                    ),
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_truncation_is_detected() {
        let (sm, symbols) = sample_state();
        let path = temp_path("truncate");
        write_snapshot(&path, &sm, &symbols, 0).unwrap();
        let pristine = std::fs::read(&path).unwrap();
        for len in 0..pristine.len() {
            std::fs::write(&path, &pristine[..len]).unwrap();
            assert!(
                read_snapshot(&path).is_err(),
                "truncation to {len} bytes parsed successfully"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn apply_rejects_catalog_mismatch() {
        let (sm, symbols) = sample_state();
        let path = temp_path("catalog");
        write_snapshot(&path, &sm, &symbols, 0).unwrap();
        let snap = read_snapshot(&path).unwrap();
        let mut wrong = StorageManager::new(true);
        wrong.register("Edge", 2, true);
        assert!(matches!(
            snap.apply(&mut wrong),
            Err(PersistError::SchemaMismatch { .. })
        ));
        let mut wrong_arity = StorageManager::new(true);
        wrong_arity.register("Edge", 3, true);
        wrong_arity.register("Path", 2, false);
        wrong_arity.register("Flag", 0, true);
        assert!(matches!(
            snap.apply(&mut wrong_arity),
            Err(PersistError::SchemaMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validate_symbols_rejects_reordered_tables() {
        let (sm, symbols) = sample_state();
        let path = temp_path("symbols");
        write_snapshot(&path, &sm, &symbols, 0).unwrap();
        let snap = read_snapshot(&path).unwrap();
        let mut reordered = SymbolTable::new();
        reordered.intern("beta");
        reordered.intern("alpha");
        assert!(matches!(
            snap.validate_symbols(&reordered),
            Err(PersistError::SchemaMismatch { .. })
        ));
        // A superset table that agrees on the prefix is fine.
        let mut superset = symbols.clone();
        superset.intern("gamma");
        snap.validate_symbols(&superset).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_write_is_atomic_under_existing_file() {
        let (sm, symbols) = sample_state();
        let path = temp_path("atomic");
        write_snapshot(&path, &sm, &symbols, 1).unwrap();
        write_snapshot(&path, &sm, &symbols, 2).unwrap();
        assert_eq!(read_snapshot(&path).unwrap().journal_seq, 2);
        // No temp-file litter.
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_file(&path).ok();
    }
}
