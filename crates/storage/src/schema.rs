//! Relation identifiers and schemas.

use std::fmt;

/// Identifier of a relation within a program.
///
/// Relation ids are dense small integers assigned by the frontend in
/// declaration order; every layer (storage, IR, optimizer, backends)
/// addresses relations exclusively through their `RelId`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// Static description of a relation: its name, arity, and whether it is
/// extensional (facts supplied by the user) or intensional (derived by
/// rules).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    /// Id under which the relation is registered.
    pub id: RelId,
    /// Human-readable name ("VaFlow", "Assign", ...).
    pub name: String,
    /// Number of columns.
    pub arity: usize,
    /// `true` for EDB relations (facts only), `false` for IDB relations
    /// (defined by at least one rule).
    pub is_edb: bool,
}

impl RelationSchema {
    /// Creates a new schema description.
    pub fn new(id: RelId, name: impl Into<String>, arity: usize, is_edb: bool) -> Self {
        RelationSchema {
            id,
            name: name.into(),
            arity,
            is_edb,
        }
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.is_edb { "edb" } else { "idb" };
        write!(f, "{}/{} [{}]", self.name, self.arity, kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relid_formats_compactly() {
        assert_eq!(format!("{}", RelId(3)), "R3");
        assert_eq!(format!("{:?}", RelId(3)), "R3");
        assert_eq!(RelId(7).index(), 7);
    }

    #[test]
    fn schema_display_mentions_kind() {
        let edb = RelationSchema::new(RelId(0), "Assign", 2, true);
        let idb = RelationSchema::new(RelId(1), "VaFlow", 2, false);
        assert!(edb.to_string().contains("edb"));
        assert!(idb.to_string().contains("idb"));
        assert!(idb.to_string().contains("VaFlow/2"));
    }
}
