//! Per-column and composite (multi-column) hash indexes.
//!
//! The paper's index-selection policy (§IV) is deliberately simple: Carac
//! builds one hash index for every column that participates in a join key or
//! filter predicate, maintained incrementally as facts are inserted.  The
//! indexed/unindexed distinction is one of the axes of the evaluation
//! (Figures 6–9), so indexes can be toggled per relation.
//!
//! On top of the paper's single-column indexes this crate adds
//! [`CompositeIndex`]: a hash index over an ordered *set* of columns, used
//! when a rule constrains several columns of the same atom at once (e.g.
//! `Sg(px, py)` probed with both `px` and `py` bound).  A composite probe
//! replaces the intersection of several single-column probes with one hash
//! lookup.
//!
//! Both index kinds store [`PostingList`]s of [`RowId`]s into the owning
//! relation's flat row pool — up to a few rows inline, spilling to the heap
//! only for high-fanout keys — and never store row values themselves.  They
//! share the incremental-maintenance contract: `insert`, `clear` and
//! `rebuild` keep them in sync with the owning pool.

use crate::hasher::FxHashMap;
use crate::pool::{mix_hash, value_hash, PostingList, RowId, RowPool};
use crate::value::Value;

/// A hash index over one column of a relation.
///
/// Maps each value appearing in the indexed column to the row ids (in
/// insertion order) of the rows carrying it.  Ids index into the owning
/// relation's row pool; the index never stores values itself.
#[derive(Debug, Clone, Default)]
pub struct ColumnIndex {
    /// Indexed column position.
    column: usize,
    /// Value → posting list of matching rows.
    entries: FxHashMap<Value, PostingList>,
}

impl ColumnIndex {
    /// Creates an empty index over `column`.
    pub fn new(column: usize) -> Self {
        ColumnIndex {
            column,
            entries: FxHashMap::default(),
        }
    }

    /// The column this index covers.
    #[inline]
    pub fn column(&self) -> usize {
        self.column
    }

    /// Registers a newly inserted row stored at `row`.
    #[inline]
    pub fn insert(&mut self, values: &[Value], row: RowId) {
        if let Some(&v) = values.get(self.column) {
            self.entries.entry(v).or_default().push(row);
        }
    }

    /// Unregisters a retracted row: removes `row` from the posting list of
    /// its column value (dropping the entry when the list empties).
    #[inline]
    pub fn remove(&mut self, values: &[Value], row: RowId) {
        if let Some(v) = values.get(self.column) {
            if let Some(list) = self.entries.get_mut(v) {
                list.remove(row);
                if list.is_empty() {
                    self.entries.remove(v);
                }
            }
        }
    }

    /// Row ids whose indexed column equals `value` (exact — single-column
    /// entries are keyed by the value itself, not a hash of it).
    #[inline]
    pub fn lookup(&self, value: Value) -> &[RowId] {
        self.entries.get(&value).map_or(&[], PostingList::as_slice)
    }

    /// Number of distinct values present in the indexed column.
    pub fn distinct_values(&self) -> usize {
        self.entries.len()
    }

    /// Drops all entries (used when the owning relation is cleared).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Rebuilds the index from scratch over the live rows of `pool`.
    pub fn rebuild(&mut self, pool: &RowPool) {
        self.entries.clear();
        for (row, values) in pool.live_rows() {
            self.insert(values, row);
        }
    }

    /// Heap bytes resident in this index (map buckets plus spilled posting
    /// lists).
    pub fn resident_bytes(&self) -> usize {
        let bucket = std::mem::size_of::<Value>() + std::mem::size_of::<PostingList>();
        self.entries.capacity() * bucket
            + self
                .entries
                .values()
                .map(PostingList::heap_bytes)
                .sum::<usize>()
    }
}

/// A hash index over an ordered set of columns of a relation.
///
/// Entries are keyed by a 64-bit hash of the column values (folded with the
/// same per-value units as the pool's row hash), so probing never
/// materializes a key vector.  A posting list may therefore contain
/// hash-collision false positives: **callers must confirm candidates
/// against the actual row values**, which every execution kernel does
/// anyway when re-checking its filters.  [`Relation::lookup_rows_composite`]
/// performs that confirmation for external callers.
///
/// [`Relation::lookup_rows_composite`]: crate::relation::Relation::lookup_rows_composite
#[derive(Debug, Clone, Default)]
pub struct CompositeIndex {
    /// Indexed column positions, in ascending order.
    columns: Vec<usize>,
    /// Key hash (folded over the indexed columns' values, in `columns`
    /// order) → posting list of candidate rows.
    entries: FxHashMap<u64, PostingList>,
}

impl CompositeIndex {
    /// Creates an empty index over `columns`.  The column list is sorted and
    /// deduplicated so `[1, 0]` and `[0, 1]` denote the same index.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two distinct columns are given — a one-column
    /// "composite" index is a [`ColumnIndex`] and should be created as one.
    pub fn new(columns: &[usize]) -> Self {
        let mut columns = columns.to_vec();
        columns.sort_unstable();
        columns.dedup();
        assert!(
            columns.len() >= 2,
            "composite index needs at least two distinct columns"
        );
        CompositeIndex {
            columns,
            entries: FxHashMap::default(),
        }
    }

    /// The columns this index covers, ascending.
    #[inline]
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Hash of this index's key extracted from a full row.
    #[inline]
    fn key_hash_of_row(&self, values: &[Value]) -> u64 {
        self.columns
            .iter()
            .fold(0, |h, &c| mix_hash(h, value_hash(values[c])))
    }

    /// Hash of an explicit key (values given in the index's ascending column
    /// order) — the probe-side counterpart of the row-side hashing done by
    /// `insert`.
    #[inline]
    pub fn key_hash(&self, key: &[Value]) -> u64 {
        debug_assert_eq!(key.len(), self.columns.len());
        key.iter().fold(0, |h, &v| mix_hash(h, value_hash(v)))
    }

    /// Registers a newly inserted row stored at `row`.  Rows narrower than
    /// the widest indexed column are ignored (defensive, mirroring
    /// [`ColumnIndex::insert`]; the relation enforces arity upstream).
    #[inline]
    pub fn insert(&mut self, values: &[Value], row: RowId) {
        if self.columns.last().is_some_and(|&c| c >= values.len()) {
            return;
        }
        let hash = self.key_hash_of_row(values);
        self.entries.entry(hash).or_default().push(row);
    }

    /// Unregisters a retracted row: removes `row` from the posting list of
    /// its key hash (dropping the entry when the list empties).
    #[inline]
    pub fn remove(&mut self, values: &[Value], row: RowId) {
        if self.columns.last().is_some_and(|&c| c >= values.len()) {
            return;
        }
        let hash = self.key_hash_of_row(values);
        if let Some(list) = self.entries.get_mut(&hash) {
            list.remove(row);
            if list.is_empty() {
                self.entries.remove(&hash);
            }
        }
    }

    /// Candidate row ids whose indexed columns *may* equal `key` (values in
    /// ascending column order).  May contain hash-collision false positives;
    /// see the type docs.
    #[inline]
    pub fn lookup(&self, key: &[Value]) -> &[RowId] {
        self.lookup_hash(self.key_hash(key))
    }

    /// Candidate row ids for a precomputed key hash.
    #[inline]
    pub fn lookup_hash(&self, hash: u64) -> &[RowId] {
        self.entries.get(&hash).map_or(&[], PostingList::as_slice)
    }

    /// Number of distinct key hashes present (distinct value combinations,
    /// modulo collisions).
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }

    /// Drops all entries (used when the owning relation is cleared).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Rebuilds the index from scratch over the live rows of `pool`.
    pub fn rebuild(&mut self, pool: &RowPool) {
        self.entries.clear();
        for (row, values) in pool.live_rows() {
            self.insert(values, row);
        }
    }

    /// Heap bytes resident in this index (map buckets plus spilled posting
    /// lists).
    pub fn resident_bytes(&self) -> usize {
        let bucket = std::mem::size_of::<u64>() + std::mem::size_of::<PostingList>();
        self.entries.capacity() * bucket
            + self
                .entries
                .values()
                .map(PostingList::heap_bytes)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_of(rows: &[&[u32]]) -> RowPool {
        let arity = rows.first().map_or(0, |r| r.len());
        let mut pool = RowPool::new(arity);
        for row in rows {
            let values: Vec<Value> = row.iter().copied().map(Value::int).collect();
            pool.insert(&values);
        }
        pool
    }

    fn sample() -> RowPool {
        pool_of(&[&[1, 10], &[2, 10], &[1, 20], &[3, 30]])
    }

    #[test]
    fn lookup_returns_matching_rows() {
        let pool = sample();
        let mut idx = ColumnIndex::new(0);
        idx.rebuild(&pool);
        assert_eq!(idx.lookup(Value::int(1)), &[0, 2]);
        assert_eq!(idx.lookup(Value::int(3)), &[3]);
        assert!(idx.lookup(Value::int(9)).is_empty());
    }

    #[test]
    fn indexes_second_column() {
        let pool = sample();
        let mut idx = ColumnIndex::new(1);
        idx.rebuild(&pool);
        assert_eq!(idx.lookup(Value::int(10)), &[0, 1]);
        assert_eq!(idx.distinct_values(), 3);
    }

    #[test]
    fn rebuild_matches_incremental() {
        let pool = sample();
        let mut incr = ColumnIndex::new(0);
        for (row, values) in pool.rows().enumerate() {
            incr.insert(values, row as RowId);
        }
        let mut rebuilt = ColumnIndex::new(0);
        rebuilt.rebuild(&pool);
        assert_eq!(incr.lookup(Value::int(1)), rebuilt.lookup(Value::int(1)));
        assert_eq!(incr.distinct_values(), rebuilt.distinct_values());
    }

    #[test]
    fn clear_removes_everything() {
        let mut idx = ColumnIndex::new(0);
        idx.insert(&[Value::int(1), Value::int(2)], 0);
        idx.clear();
        assert!(idx.lookup(Value::int(1)).is_empty());
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn composite_lookup_matches_filtered_scan() {
        let pool = pool_of(&[&[1, 10, 5], &[1, 10, 6], &[1, 20, 5], &[2, 10, 5]]);
        let mut idx = CompositeIndex::new(&[0, 1]);
        idx.rebuild(&pool);
        assert_eq!(idx.lookup(&[Value::int(1), Value::int(10)]), &[0, 1]);
        assert_eq!(idx.lookup(&[Value::int(2), Value::int(10)]), &[3]);
        assert!(idx.lookup(&[Value::int(2), Value::int(20)]).is_empty());
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn composite_columns_are_canonicalized() {
        let a = CompositeIndex::new(&[2, 0]);
        let b = CompositeIndex::new(&[0, 2, 2]);
        assert_eq!(a.columns(), &[0, 2]);
        assert_eq!(b.columns(), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "at least two distinct columns")]
    fn composite_rejects_single_column() {
        let _ = CompositeIndex::new(&[1, 1]);
    }

    #[test]
    fn composite_incremental_matches_rebuild() {
        let pool = pool_of(&[&[1, 2, 3], &[1, 2, 4], &[2, 2, 3]]);
        let mut incr = CompositeIndex::new(&[0, 2]);
        for (row, values) in pool.rows().enumerate() {
            incr.insert(values, row as RowId);
        }
        let mut rebuilt = CompositeIndex::new(&[0, 2]);
        rebuilt.rebuild(&pool);
        let key = [Value::int(1), Value::int(3)];
        assert_eq!(incr.lookup(&key), rebuilt.lookup(&key));
        assert_eq!(incr.distinct_keys(), rebuilt.distinct_keys());
        incr.clear();
        assert_eq!(incr.distinct_keys(), 0);
    }

    #[test]
    fn high_fanout_key_spills_and_keeps_order() {
        let rows: Vec<Vec<u32>> = (0..20u32).map(|i| vec![1, i]).collect();
        let row_refs: Vec<&[u32]> = rows.iter().map(Vec::as_slice).collect();
        let pool = pool_of(&row_refs);
        let mut idx = ColumnIndex::new(0);
        idx.rebuild(&pool);
        let expected: Vec<RowId> = (0..20).collect();
        assert_eq!(idx.lookup(Value::int(1)), &expected[..]);
        assert!(idx.resident_bytes() > 0);
    }

    #[test]
    fn out_of_bounds_column_is_ignored() {
        // A unary row inserted into an index on column 1 simply does not
        // register; the relation enforces arity, the index stays defensive.
        let mut idx = ColumnIndex::new(1);
        idx.insert(&[Value::int(5)], 0);
        assert_eq!(idx.distinct_values(), 0);
    }
}
