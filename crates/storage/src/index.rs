//! Per-column and composite (multi-column) hash indexes.
//!
//! The paper's index-selection policy (§IV) is deliberately simple: Carac
//! builds one hash index for every column that participates in a join key or
//! filter predicate, maintained incrementally as facts are inserted.  The
//! indexed/unindexed distinction is one of the axes of the evaluation
//! (Figures 6–9), so indexes can be toggled per relation.
//!
//! On top of the paper's single-column indexes this crate adds
//! [`CompositeIndex`]: a hash index over an ordered *set* of columns, used
//! when a rule constrains several columns of the same atom at once (e.g.
//! `Sg(px, py)` probed with both `px` and `py` bound).  A composite probe
//! replaces the intersection of several single-column probes with one hash
//! lookup.  Composite indexes share the incremental-maintenance contract of
//! [`ColumnIndex`]: `insert`, `clear` and `rebuild` keep them in sync with
//! the owning relation's tuple vector.

use crate::hasher::FxHashMap;
use crate::tuple::Tuple;
use crate::value::Value;

/// A hash index over one column of a relation.
///
/// Maps each value appearing in the indexed column to the row offsets (in
/// insertion order) of the tuples carrying it.  Offsets index into the
/// owning relation's tuple vector; the index never stores tuples itself.
#[derive(Debug, Clone, Default)]
pub struct ColumnIndex {
    /// Indexed column position.
    column: usize,
    /// Value → offsets of matching rows.
    entries: FxHashMap<Value, Vec<usize>>,
}

impl ColumnIndex {
    /// Creates an empty index over `column`.
    pub fn new(column: usize) -> Self {
        ColumnIndex {
            column,
            entries: FxHashMap::default(),
        }
    }

    /// The column this index covers.
    #[inline]
    pub fn column(&self) -> usize {
        self.column
    }

    /// Registers a newly inserted tuple stored at `row`.
    #[inline]
    pub fn insert(&mut self, tuple: &Tuple, row: usize) {
        if let Some(v) = tuple.get(self.column) {
            self.entries.entry(v).or_default().push(row);
        }
    }

    /// Row offsets whose indexed column equals `value`.
    #[inline]
    pub fn lookup(&self, value: Value) -> &[usize] {
        self.entries.get(&value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct values present in the indexed column.
    pub fn distinct_values(&self) -> usize {
        self.entries.len()
    }

    /// Drops all entries (used when the owning relation is cleared).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Rebuilds the index from scratch over `tuples`.
    pub fn rebuild(&mut self, tuples: &[Tuple]) {
        self.entries.clear();
        for (row, tuple) in tuples.iter().enumerate() {
            self.insert(tuple, row);
        }
    }
}

/// A hash index over an ordered set of columns of a relation.
///
/// Maps each distinct combination of values appearing in the indexed columns
/// to the row offsets (in insertion order) of the tuples carrying it.  Like
/// [`ColumnIndex`], it stores offsets into the owning relation's tuple
/// vector, never tuples.
#[derive(Debug, Clone, Default)]
pub struct CompositeIndex {
    /// Indexed column positions, in ascending order.
    columns: Vec<usize>,
    /// Key (values of the indexed columns, in `columns` order) → offsets of
    /// matching rows.
    entries: FxHashMap<Vec<Value>, Vec<usize>>,
}

impl CompositeIndex {
    /// Creates an empty index over `columns`.  The column list is sorted and
    /// deduplicated so `[1, 0]` and `[0, 1]` denote the same index.
    ///
    /// # Panics
    ///
    /// Panics when fewer than two distinct columns are given — a one-column
    /// "composite" index is a [`ColumnIndex`] and should be created as one.
    pub fn new(columns: &[usize]) -> Self {
        let mut columns = columns.to_vec();
        columns.sort_unstable();
        columns.dedup();
        assert!(
            columns.len() >= 2,
            "composite index needs at least two distinct columns"
        );
        CompositeIndex {
            columns,
            entries: FxHashMap::default(),
        }
    }

    /// The columns this index covers, ascending.
    #[inline]
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Extracts this index's key from a tuple, `None` when the tuple is too
    /// narrow (defensive, mirrors [`ColumnIndex::insert`]).
    fn key_of(&self, tuple: &Tuple) -> Option<Vec<Value>> {
        self.columns.iter().map(|&c| tuple.get(c)).collect()
    }

    /// Registers a newly inserted tuple stored at `row`.
    #[inline]
    pub fn insert(&mut self, tuple: &Tuple, row: usize) {
        if let Some(key) = self.key_of(tuple) {
            self.entries.entry(key).or_default().push(row);
        }
    }

    /// Row offsets whose indexed columns equal `key` (values given in the
    /// index's ascending column order).
    #[inline]
    pub fn lookup(&self, key: &[Value]) -> &[usize] {
        self.entries.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct value combinations present.
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }

    /// Drops all entries (used when the owning relation is cleared).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Rebuilds the index from scratch over `tuples`.
    pub fn rebuild(&mut self, tuples: &[Tuple]) {
        self.entries.clear();
        for (row, tuple) in tuples.iter().enumerate() {
            self.insert(tuple, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Tuple> {
        vec![
            Tuple::pair(1, 10),
            Tuple::pair(2, 10),
            Tuple::pair(1, 20),
            Tuple::pair(3, 30),
        ]
    }

    #[test]
    fn lookup_returns_matching_rows() {
        let tuples = sample();
        let mut idx = ColumnIndex::new(0);
        for (row, t) in tuples.iter().enumerate() {
            idx.insert(t, row);
        }
        assert_eq!(idx.lookup(Value::int(1)), &[0, 2]);
        assert_eq!(idx.lookup(Value::int(3)), &[3]);
        assert!(idx.lookup(Value::int(9)).is_empty());
    }

    #[test]
    fn indexes_second_column() {
        let tuples = sample();
        let mut idx = ColumnIndex::new(1);
        for (row, t) in tuples.iter().enumerate() {
            idx.insert(t, row);
        }
        assert_eq!(idx.lookup(Value::int(10)), &[0, 1]);
        assert_eq!(idx.distinct_values(), 3);
    }

    #[test]
    fn rebuild_matches_incremental() {
        let tuples = sample();
        let mut incr = ColumnIndex::new(0);
        for (row, t) in tuples.iter().enumerate() {
            incr.insert(t, row);
        }
        let mut rebuilt = ColumnIndex::new(0);
        rebuilt.rebuild(&tuples);
        assert_eq!(incr.lookup(Value::int(1)), rebuilt.lookup(Value::int(1)));
        assert_eq!(incr.distinct_values(), rebuilt.distinct_values());
    }

    #[test]
    fn clear_removes_everything() {
        let mut idx = ColumnIndex::new(0);
        idx.insert(&Tuple::pair(1, 2), 0);
        idx.clear();
        assert!(idx.lookup(Value::int(1)).is_empty());
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn composite_lookup_matches_filtered_scan() {
        let tuples = vec![
            Tuple::from_ints(&[1, 10, 5]),
            Tuple::from_ints(&[1, 10, 6]),
            Tuple::from_ints(&[1, 20, 5]),
            Tuple::from_ints(&[2, 10, 5]),
        ];
        let mut idx = CompositeIndex::new(&[0, 1]);
        idx.rebuild(&tuples);
        assert_eq!(idx.lookup(&[Value::int(1), Value::int(10)]), &[0, 1]);
        assert_eq!(idx.lookup(&[Value::int(2), Value::int(10)]), &[3]);
        assert!(idx.lookup(&[Value::int(2), Value::int(20)]).is_empty());
        assert_eq!(idx.distinct_keys(), 3);
    }

    #[test]
    fn composite_columns_are_canonicalized() {
        let a = CompositeIndex::new(&[2, 0]);
        let b = CompositeIndex::new(&[0, 2, 2]);
        assert_eq!(a.columns(), &[0, 2]);
        assert_eq!(b.columns(), &[0, 2]);
    }

    #[test]
    #[should_panic(expected = "at least two distinct columns")]
    fn composite_rejects_single_column() {
        let _ = CompositeIndex::new(&[1, 1]);
    }

    #[test]
    fn composite_incremental_matches_rebuild() {
        let tuples = vec![
            Tuple::from_ints(&[1, 2, 3]),
            Tuple::from_ints(&[1, 2, 4]),
            Tuple::from_ints(&[2, 2, 3]),
        ];
        let mut incr = CompositeIndex::new(&[0, 2]);
        for (row, t) in tuples.iter().enumerate() {
            incr.insert(t, row);
        }
        let mut rebuilt = CompositeIndex::new(&[0, 2]);
        rebuilt.rebuild(&tuples);
        let key = [Value::int(1), Value::int(3)];
        assert_eq!(incr.lookup(&key), rebuilt.lookup(&key));
        assert_eq!(incr.distinct_keys(), rebuilt.distinct_keys());
        incr.clear();
        assert_eq!(incr.distinct_keys(), 0);
    }

    #[test]
    fn out_of_bounds_column_is_ignored() {
        // A unary tuple inserted into an index on column 1 simply does not
        // register; the relation enforces arity, the index stays defensive.
        let mut idx = ColumnIndex::new(1);
        idx.insert(&Tuple::from_ints(&[5]), 0);
        assert_eq!(idx.distinct_values(), 0);
    }
}
