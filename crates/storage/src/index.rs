//! Per-column hash indexes.
//!
//! The paper's index-selection policy (§IV) is deliberately simple: Carac
//! builds one hash index for every column that participates in a join key or
//! filter predicate, maintained incrementally as facts are inserted.  The
//! indexed/unindexed distinction is one of the axes of the evaluation
//! (Figures 6–9), so indexes can be toggled per relation.

use crate::hasher::FxHashMap;
use crate::tuple::Tuple;
use crate::value::Value;

/// A hash index over one column of a relation.
///
/// Maps each value appearing in the indexed column to the row offsets (in
/// insertion order) of the tuples carrying it.  Offsets index into the
/// owning relation's tuple vector; the index never stores tuples itself.
#[derive(Debug, Clone, Default)]
pub struct ColumnIndex {
    /// Indexed column position.
    column: usize,
    /// Value → offsets of matching rows.
    entries: FxHashMap<Value, Vec<usize>>,
}

impl ColumnIndex {
    /// Creates an empty index over `column`.
    pub fn new(column: usize) -> Self {
        ColumnIndex {
            column,
            entries: FxHashMap::default(),
        }
    }

    /// The column this index covers.
    #[inline]
    pub fn column(&self) -> usize {
        self.column
    }

    /// Registers a newly inserted tuple stored at `row`.
    #[inline]
    pub fn insert(&mut self, tuple: &Tuple, row: usize) {
        if let Some(v) = tuple.get(self.column) {
            self.entries.entry(v).or_default().push(row);
        }
    }

    /// Row offsets whose indexed column equals `value`.
    #[inline]
    pub fn lookup(&self, value: Value) -> &[usize] {
        self.entries.get(&value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct values present in the indexed column.
    pub fn distinct_values(&self) -> usize {
        self.entries.len()
    }

    /// Drops all entries (used when the owning relation is cleared).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Rebuilds the index from scratch over `tuples`.
    pub fn rebuild(&mut self, tuples: &[Tuple]) {
        self.entries.clear();
        for (row, tuple) in tuples.iter().enumerate() {
            self.insert(tuple, row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Tuple> {
        vec![
            Tuple::pair(1, 10),
            Tuple::pair(2, 10),
            Tuple::pair(1, 20),
            Tuple::pair(3, 30),
        ]
    }

    #[test]
    fn lookup_returns_matching_rows() {
        let tuples = sample();
        let mut idx = ColumnIndex::new(0);
        for (row, t) in tuples.iter().enumerate() {
            idx.insert(t, row);
        }
        assert_eq!(idx.lookup(Value::int(1)), &[0, 2]);
        assert_eq!(idx.lookup(Value::int(3)), &[3]);
        assert!(idx.lookup(Value::int(9)).is_empty());
    }

    #[test]
    fn indexes_second_column() {
        let tuples = sample();
        let mut idx = ColumnIndex::new(1);
        for (row, t) in tuples.iter().enumerate() {
            idx.insert(t, row);
        }
        assert_eq!(idx.lookup(Value::int(10)), &[0, 1]);
        assert_eq!(idx.distinct_values(), 3);
    }

    #[test]
    fn rebuild_matches_incremental() {
        let tuples = sample();
        let mut incr = ColumnIndex::new(0);
        for (row, t) in tuples.iter().enumerate() {
            incr.insert(t, row);
        }
        let mut rebuilt = ColumnIndex::new(0);
        rebuilt.rebuild(&tuples);
        assert_eq!(incr.lookup(Value::int(1)), rebuilt.lookup(Value::int(1)));
        assert_eq!(incr.distinct_values(), rebuilt.distinct_values());
    }

    #[test]
    fn clear_removes_everything() {
        let mut idx = ColumnIndex::new(0);
        idx.insert(&Tuple::pair(1, 2), 0);
        idx.clear();
        assert!(idx.lookup(Value::int(1)).is_empty());
        assert_eq!(idx.distinct_values(), 0);
    }

    #[test]
    fn out_of_bounds_column_is_ignored() {
        // A unary tuple inserted into an index on column 1 simply does not
        // register; the relation enforces arity, the index stays defensive.
        let mut idx = ColumnIndex::new(1);
        idx.insert(&Tuple::from_ints(&[5]), 0);
        assert_eq!(idx.distinct_values(), 0);
    }
}
