//! Interned constant values.
//!
//! Carac stores every constant as a 32-bit integer (the paper's tuples are
//! pairs of 32-bit integers).  Strings and other domain constants are
//! interned through the [`SymbolTable`](crate::symbol::SymbolTable); small
//! non-negative integers are represented directly so that arithmetic helper
//! relations (used by the micro workloads) do not need interning.

use std::fmt;

/// A single constant value flowing through the engine.
///
/// `Value` is a thin newtype over `u32`.  The upper half of the space is
/// reserved for interned symbols (see [`SymbolTable`]); the lower half
/// carries small integers directly.  Keeping values `Copy` and 4 bytes wide
/// is what makes the join kernels cheap.
///
/// [`SymbolTable`]: crate::symbol::SymbolTable
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Value(pub u32);

impl Value {
    /// First id used for interned symbols.  Values below this bound are
    /// plain integers; values at or above it index into the symbol table.
    pub const SYMBOL_BASE: u32 = 1 << 31;

    /// Builds a value carrying a small non-negative integer directly.
    ///
    /// # Panics
    ///
    /// Panics if `n` collides with the symbol range; domain integers must
    /// stay below [`Value::SYMBOL_BASE`].
    #[inline]
    pub fn int(n: u32) -> Self {
        assert!(
            n < Self::SYMBOL_BASE,
            "integer constant {n} collides with the interned-symbol range"
        );
        Value(n)
    }

    /// Builds a value referencing the symbol table slot `idx`.
    #[inline]
    pub(crate) fn symbol(idx: u32) -> Self {
        Value(Self::SYMBOL_BASE + idx)
    }

    /// Returns the raw 32-bit representation.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Whether this value is an interned symbol rather than a plain integer.
    #[inline]
    pub fn is_symbol(self) -> bool {
        self.0 >= Self::SYMBOL_BASE
    }

    /// For symbol values, the index into the symbol table.
    #[inline]
    pub fn symbol_index(self) -> Option<u32> {
        if self.is_symbol() {
            Some(self.0 - Self::SYMBOL_BASE)
        } else {
            None
        }
    }

    /// For integer values, the carried integer.
    #[inline]
    pub fn as_int(self) -> Option<u32> {
        if self.is_symbol() {
            None
        } else {
            Some(self.0)
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(idx) = self.symbol_index() {
            write!(f, "sym#{idx}")
        } else {
            write!(f, "{}", self.0)
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::int(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip() {
        let v = Value::int(123);
        assert_eq!(v.as_int(), Some(123));
        assert!(!v.is_symbol());
        assert_eq!(v.symbol_index(), None);
    }

    #[test]
    fn symbol_roundtrip() {
        let v = Value::symbol(7);
        assert!(v.is_symbol());
        assert_eq!(v.symbol_index(), Some(7));
        assert_eq!(v.as_int(), None);
    }

    #[test]
    #[should_panic(expected = "collides")]
    fn oversized_int_panics() {
        let _ = Value::int(Value::SYMBOL_BASE);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Value::int(5)), "5");
        assert_eq!(format!("{:?}", Value::symbol(2)), "sym#2");
    }

    #[test]
    fn ordering_is_by_raw_value() {
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::int(100) < Value::symbol(0));
    }
}
