//! In-memory relations with set semantics over a flat row pool.

use crate::error::StorageError;
use crate::index::{ColumnIndex, CompositeIndex};
use crate::pool::{mix_hash, shard_of_hash, value_hash, PoolStats, RowId, RowPool};
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A duplicate-free, insertion-ordered collection of rows.
///
/// All rows live in one row-major [`RowPool`] (a single `Vec<Value>` with an
/// arity stride); duplicate elimination goes through the pool's 64-bit
/// row-hash table, confirmed by slice equality — there is no second stored
/// copy of any row.  On top of the pool the relation maintains:
///
/// * `indexes` — optional per-column hash indexes used by index-nested-loop
///   joins when the engine runs in "indexed" mode,
/// * `composites` — optional multi-column hash indexes for atoms probed on
///   several bound columns at once,
/// * `shards` — optional hash partitions of the row ids by shard-key value,
///   enabling independent parallel scans of disjoint row subsets (see
///   [`Relation::set_sharding`]).
///
/// [`Tuple`] remains the boundary type for loading facts and reading
/// results; the evaluation hot paths speak `&[Value]` row slices and
/// [`RowId`]s exclusively and never construct tuples.
///
/// ```
/// use carac_storage::{Relation, RelationSchema, RelId, Tuple, Value};
///
/// let mut edges = Relation::new(RelationSchema::new(RelId(0), "Edge", 2, true));
/// edges.add_index(0)?;                    // single-column hash index
/// edges.add_composite_index(&[0, 1])?;    // multi-column hash index
/// edges.insert(Tuple::pair(1, 2))?;
/// edges.insert(Tuple::pair(1, 3))?;
/// assert!(!edges.insert(Tuple::pair(1, 2))?); // set semantics: duplicate
///
/// assert_eq!(edges.lookup_rows(0, Value::int(1)).len(), 2);
/// let rows = edges
///     .lookup_rows_composite(&[(0, Value::int(1)), (1, Value::int(3))])
///     .expect("the composite index covers both filters");
/// assert_eq!(rows.len(), 1);
/// assert_eq!(edges.row(rows[0]), &[Value::int(1), Value::int(3)]);
/// # Ok::<(), carac_storage::StorageError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    pool: RowPool,
    indexes: Vec<ColumnIndex>,
    composites: Vec<CompositeIndex>,
    /// Number of shard partitions; `1` disables sharding.
    shard_count: usize,
    /// Column whose value hashes a row into its shard.
    shard_key: usize,
    /// Row ids per shard (`shards.len() == shard_count` when sharded,
    /// empty otherwise).
    shards: Vec<Vec<RowId>>,
}

/// Deterministic shard assignment for a value: the shard-key value is run
/// through the same per-value hash that feeds the pool's row hash
/// ([`crate::pool::value_hash`]), so shard assignment and dedup share one
/// hash computation per inserted row, and shard membership is identical on
/// every platform and across runs.
#[inline]
pub(crate) fn shard_of(value: Value, shard_count: usize) -> usize {
    shard_of_hash(value_hash(value), shard_count)
}

/// Borrowed candidate rows answering one probe — the allocation-free
/// replacement for collecting `Vec<usize>` candidate lists.
///
/// Produced by [`Relation::probe_rows`].  Candidates obtained through a
/// composite index (or any access path that did not cover every filter) may
/// include rows that fail some filters; callers re-check filters per row,
/// which the execution kernels do anyway.
#[derive(Debug)]
pub struct ProbeRows<'a> {
    rows: ProbeSource<'a>,
    via_composite: bool,
}

#[derive(Debug)]
enum ProbeSource<'a> {
    /// An explicit row-id list: an index posting list or the caller's
    /// scratch buffer.
    Slice(&'a [RowId]),
    /// Every row of the relation (no usable access path).
    All(RowId),
}

impl<'a> ProbeRows<'a> {
    /// Number of candidate rows.
    pub fn len(&self) -> usize {
        match self.rows {
            ProbeSource::Slice(s) => s.len(),
            ProbeSource::All(n) => n as usize,
        }
    }

    /// Whether no candidate matches.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether a composite (multi-column) index answered the probe.
    pub fn via_composite(&self) -> bool {
        self.via_composite
    }

    /// Iterator over the candidate row ids, in insertion order.
    pub fn iter(&self) -> ProbeIter<'a> {
        match self.rows {
            ProbeSource::Slice(s) => ProbeIter::Slice(s.iter()),
            ProbeSource::All(n) => ProbeIter::Range(0..n),
        }
    }
}

impl<'a> IntoIterator for &ProbeRows<'a> {
    type Item = RowId;
    type IntoIter = ProbeIter<'a>;

    fn into_iter(self) -> ProbeIter<'a> {
        self.iter()
    }
}

/// Iterator over the row ids of a [`ProbeRows`].
#[derive(Debug)]
pub enum ProbeIter<'a> {
    /// Iterating an explicit row-id slice.
    Slice(std::slice::Iter<'a, RowId>),
    /// Iterating a full scan `0..n`.
    Range(std::ops::Range<RowId>),
}

impl Iterator for ProbeIter<'_> {
    type Item = RowId;

    #[inline]
    fn next(&mut self) -> Option<RowId> {
        match self {
            ProbeIter::Slice(it) => it.next().copied(),
            ProbeIter::Range(r) => r.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            ProbeIter::Slice(it) => it.size_hint(),
            ProbeIter::Range(r) => r.size_hint(),
        }
    }
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        let arity = schema.arity;
        Relation {
            schema,
            pool: RowPool::new(arity),
            indexes: Vec::new(),
            composites: Vec::new(),
            shard_count: 1,
            shard_key: 0,
            shards: Vec::new(),
        }
    }

    /// The schema of this relation.
    #[inline]
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Name of the relation (convenience accessor).
    #[inline]
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.arity
    }

    /// Number of rows currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the relation holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Declares a hash index on `column`.  Idempotent; existing rows are
    /// back-filled.  Returns an error if the column is out of bounds.
    pub fn add_index(&mut self, column: usize) -> Result<()> {
        if column >= self.schema.arity {
            return Err(StorageError::ColumnOutOfBounds {
                relation: self.schema.name.clone(),
                column,
                arity: self.schema.arity,
            });
        }
        if self.indexes.iter().any(|ix| ix.column() == column) {
            return Ok(());
        }
        let mut index = ColumnIndex::new(column);
        index.rebuild(&self.pool);
        self.indexes.push(index);
        Ok(())
    }

    /// Columns currently covered by an index.
    pub fn indexed_columns(&self) -> Vec<usize> {
        self.indexes.iter().map(ColumnIndex::column).collect()
    }

    /// Whether `column` has an index.
    pub fn has_index(&self, column: usize) -> bool {
        self.indexes.iter().any(|ix| ix.column() == column)
    }

    /// Number of distinct values observed by the single-column index on
    /// `column` (0 when that column is unindexed) — the observed-selectivity
    /// input of the optimizer's cost model: an equality probe on the column
    /// is expected to match `len / distinct` rows.
    pub fn index_distinct(&self, column: usize) -> usize {
        self.indexes
            .iter()
            .find(|ix| ix.column() == column)
            .map_or(0, ColumnIndex::distinct_values)
    }

    /// `(column, distinct values)` for every single-column index, in index
    /// creation order (the per-column form consumed by the stats snapshot).
    pub fn indexed_distincts(&self) -> Vec<(usize, usize)> {
        self.indexes
            .iter()
            .map(|ix| (ix.column(), ix.distinct_values()))
            .collect()
    }

    /// Declares a composite hash index over `columns` (at least two distinct
    /// columns; a single column degrades to [`Relation::add_index`]).
    /// Idempotent; existing rows are back-filled.  Returns an error if any
    /// column is out of bounds.
    pub fn add_composite_index(&mut self, columns: &[usize]) -> Result<()> {
        let mut canonical = columns.to_vec();
        canonical.sort_unstable();
        canonical.dedup();
        for &column in &canonical {
            if column >= self.schema.arity {
                return Err(StorageError::ColumnOutOfBounds {
                    relation: self.schema.name.clone(),
                    column,
                    arity: self.schema.arity,
                });
            }
        }
        match canonical.as_slice() {
            [] => Ok(()),
            [single] => self.add_index(*single),
            _ => {
                if self.composites.iter().any(|ix| ix.columns() == canonical) {
                    return Ok(());
                }
                let mut index = CompositeIndex::new(&canonical);
                index.rebuild(&self.pool);
                self.composites.push(index);
                Ok(())
            }
        }
    }

    /// The column sets currently covered by composite indexes.
    pub fn composite_indexed_columns(&self) -> Vec<Vec<usize>> {
        self.composites
            .iter()
            .map(|ix| ix.columns().to_vec())
            .collect()
    }

    /// Whether a composite index over exactly `columns` (order-insensitive)
    /// exists.
    pub fn has_composite_index(&self, columns: &[usize]) -> bool {
        let mut canonical = columns.to_vec();
        canonical.sort_unstable();
        canonical.dedup();
        self.composites.iter().any(|ix| ix.columns() == canonical)
    }

    /// Partitions the relation's rows into `shard_count` hash shards keyed
    /// on `shard_key`'s value, rebuilding the partitions for the existing
    /// rows.  A count of 0 or 1 disables sharding.  Returns an error when
    /// the key column is out of bounds.
    ///
    /// Shard membership is a pure function of the key value (the pool's
    /// per-value hash), so two relations sharded the same way agree on which
    /// shard any row belongs to — the property the parallel join kernels
    /// rely on for deterministic merges.
    pub fn set_sharding(&mut self, shard_count: usize, shard_key: usize) -> Result<()> {
        if shard_key >= self.schema.arity {
            return Err(StorageError::ColumnOutOfBounds {
                relation: self.schema.name.clone(),
                column: shard_key,
                arity: self.schema.arity,
            });
        }
        self.shard_count = shard_count.max(1);
        self.shard_key = shard_key;
        self.rebuild_shards();
        Ok(())
    }

    /// Number of shard partitions (1 when sharding is disabled).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Whether the relation maintains shard partitions.
    #[inline]
    pub fn is_sharded(&self) -> bool {
        self.shard_count > 1
    }

    /// Row ids belonging to shard `shard` (insertion order within the
    /// shard).  Empty for out-of-range shards or when sharding is disabled.
    pub fn shard_rows(&self, shard: usize) -> &[RowId] {
        self.shards.get(shard).map_or(&[], Vec::as_slice)
    }

    fn rebuild_shards(&mut self) {
        self.shards.clear();
        if self.shard_count <= 1 {
            return;
        }
        self.shards.resize(self.shard_count, Vec::new());
        for (row, values) in self.pool.live_rows() {
            let value = values.get(self.shard_key).copied().unwrap_or_default();
            self.shards[shard_of(value, self.shard_count)].push(row);
        }
    }

    /// Inserts a tuple, returning `true` if it was new (boundary API; the
    /// evaluation hot paths use [`Relation::insert_row`] directly).
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.insert_row(tuple.values())
    }

    /// Inserts one row given as a value slice, returning `true` if it was
    /// new.  Duplicate rows are silently ignored (set semantics); arity is
    /// validated against the schema.  This is the single append path: one
    /// hash pass over the values feeds the dedup table, every index and the
    /// shard assignment.
    pub fn insert_row(&mut self, values: &[Value]) -> Result<bool> {
        if values.len() != self.schema.arity {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity,
                actual: values.len(),
            });
        }
        // One pass over the values: the per-value hashes fold into the row
        // hash and the shard key's unit is captured on the way.
        let mut hash = crate::pool::ROW_HASH_INIT;
        let mut key_unit = 0u64;
        for (col, &v) in values.iter().enumerate() {
            let unit = value_hash(v);
            if col == self.shard_key {
                key_unit = unit;
            }
            hash = mix_hash(hash, unit);
        }
        Ok(self.insert_prehashed_row(values, hash, key_unit).is_some())
    }

    /// [`Relation::insert_row`] with the row hash precomputed by the caller
    /// (arity must already match; used by the merge and derived-insert paths
    /// so iteration boundaries never rehash a row), returning the fresh
    /// row's id (`None` when an equal row already exists) so callers can
    /// attach support counts to the inserted row.
    #[inline]
    pub(crate) fn insert_row_hashed_id(&mut self, values: &[Value], hash: u64) -> Option<RowId> {
        let key_unit = if self.shard_count > 1 {
            value_hash(values.get(self.shard_key).copied().unwrap_or_default())
        } else {
            0
        };
        self.insert_prehashed_row(values, hash, key_unit)
    }

    #[inline]
    fn insert_prehashed_row(
        &mut self,
        values: &[Value],
        hash: u64,
        key_unit: u64,
    ) -> Option<RowId> {
        // Retained-hash fast path: every hash reaching here was computed by
        // this crate (the single-pass insert fold) or retained by a pool
        // (merge, derived-insert), so the public always-on validation is
        // skipped and iteration boundaries never rehash a row.
        let row = self.pool.insert_hashed_retained(values, hash)?;
        for index in &mut self.indexes {
            index.insert(values, row);
        }
        for index in &mut self.composites {
            index.insert(values, row);
        }
        if self.shard_count > 1 {
            self.shards[shard_of_hash(key_unit, self.shard_count)].push(row);
        }
        Some(row)
    }

    /// Retracts the row equal to `tuple`, returning `true` if it was
    /// present (boundary API over [`Relation::retract_row`]).
    pub fn retract(&mut self, tuple: &Tuple) -> Result<bool> {
        self.retract_row(tuple.values())
    }

    /// Retracts one row given as a value slice: the row is tombstoned in the
    /// pool (its [`RowId`] stays allocated but leaves membership, iteration
    /// and cardinality) and unlinked from every posting list — single-column
    /// indexes, composite indexes and the shard partitions.  Returns `true`
    /// if an equal live row existed.
    pub fn retract_row(&mut self, values: &[Value]) -> Result<bool> {
        if values.len() != self.schema.arity {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity,
                actual: values.len(),
            });
        }
        let hash = crate::pool::row_hash(values);
        let Some(row) = self.pool.retract_hashed_retained(values, hash) else {
            return Ok(false);
        };
        for index in &mut self.indexes {
            index.remove(values, row);
        }
        for index in &mut self.composites {
            index.remove(values, row);
        }
        if self.shard_count > 1 {
            let key = values.get(self.shard_key).copied().unwrap_or_default();
            let shard = &mut self.shards[shard_of(key, self.shard_count)];
            if let Some(pos) = shard.iter().position(|&r| r == row) {
                shard.remove(pos);
            }
        }
        Ok(true)
    }

    /// The live row equal to `values`, if any (hash precomputed by the
    /// caller) — the row-id-returning variant of
    /// [`Relation::contains_row_hashed`] used by the support-count
    /// maintenance of the derived-insert path.
    #[inline]
    pub fn find_row_hashed(&self, values: &[Value], hash: u64) -> Option<RowId> {
        self.pool.find_hashed(values, hash)
    }

    /// The support count (number of known derivations) of row `row`.
    #[inline]
    pub fn support_of(&self, row: RowId) -> u32 {
        self.pool.support_of(row)
    }

    /// Adds `n` derivations to row `row`'s support count (saturating).
    #[inline]
    pub fn add_support(&mut self, row: RowId, n: u32) {
        self.pool.add_support(row, n);
    }

    /// Overwrites row `row`'s support count.
    #[inline]
    pub fn set_support(&mut self, row: RowId, count: u32) {
        self.pool.set_support(row, count);
    }

    /// Removes `n` derivations from row `row`'s support count (saturating at
    /// zero), returning the new count.
    #[inline]
    pub fn sub_support(&mut self, row: RowId, n: u32) -> u32 {
        self.pool.sub_support(row, n)
    }

    /// Whether row `row`'s support count has overflowed and is unusable as
    /// a derivation count (see [`crate::pool::SUPPORT_SATURATED`]): the
    /// signal for consumers to take an exact-recount path instead of
    /// trusting the stored value.
    #[inline]
    pub fn support_saturated(&self, row: RowId) -> bool {
        self.pool.support_saturated(row)
    }

    /// Whether the slot `row` holds a live (non-retracted) row.
    #[inline]
    pub fn is_live(&self, row: RowId) -> bool {
        self.pool.is_live(row)
    }

    /// The compaction generation of this relation's row pool.  [`RowId`]s
    /// handed out by probes and lookups are only meaningful under the
    /// generation current at that moment; [`Relation::compact`] bumps it.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.pool.generation()
    }

    /// Overwrites the pool's compaction generation (snapshot restore only:
    /// the counter must survive a process restart to stay monotonic).
    #[inline]
    pub(crate) fn set_generation(&mut self, generation: u64) {
        self.pool.set_generation(generation);
    }

    /// The values of row `row`, validated against the compaction
    /// `generation` the id was obtained under.  Unlike [`Relation::row`] —
    /// which trusts the caller and, after a compaction, would silently
    /// return whatever row was renumbered into the slot — this returns a
    /// typed [`StorageError::StaleRowId`] when the generation has moved on,
    /// when the slot was never allocated, or when the row was retracted in
    /// the meantime.
    pub fn row_checked(&self, row: RowId, generation: u64) -> Result<&[Value]> {
        let current = self.pool.generation();
        if generation != current || (row as usize) >= self.pool.slots() || !self.pool.is_live(row) {
            return Err(StorageError::StaleRowId {
                relation: self.schema.name.clone(),
                row,
                held: generation,
                current,
            });
        }
        Ok(self.pool.row(row))
    }

    /// Number of row slots ever allocated (including tombstoned ones) — the
    /// exclusive upper bound of valid [`RowId`]s, used as a high-water mark
    /// by the incremental subsystem to read off newly appended rows.
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.pool.slots()
    }

    /// Membership test for a boundary tuple.
    #[inline]
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.pool.contains(tuple.values())
    }

    /// Membership test for a row slice (the hot-path variant).
    #[inline]
    pub fn contains_row(&self, values: &[Value]) -> bool {
        self.pool.contains(values)
    }

    /// [`Relation::contains_row`] with the row hash precomputed.
    #[inline]
    pub fn contains_row_hashed(&self, values: &[Value], hash: u64) -> bool {
        self.pool.contains_hashed(values, hash)
    }

    /// The values of the row with id `row`.  Tombstoned slots keep their
    /// values readable, so this works for any allocated id; whether the
    /// slot is live is a separate question ([`Relation::is_live`]).
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds; callers obtain ids from
    /// [`Relation::probe_rows`], [`Relation::lookup_rows`] or
    /// `0..slot_count()` filtered by [`Relation::is_live`] (once rows have
    /// been retracted, `len()` counts live rows and is *not* an id bound).
    #[inline]
    pub fn row(&self, row: RowId) -> &[Value] {
        self.pool.row(row)
    }

    /// Iterator over all rows (as value slices) in insertion order.
    #[inline]
    pub fn iter_rows(&self) -> impl ExactSizeIterator<Item = &[Value]> + '_ {
        self.pool.rows()
    }

    /// Materializes the row with id `row` as a boundary [`Tuple`]
    /// (allocates; result extraction and tests only — hot paths use
    /// [`Relation::row`]).
    #[inline]
    pub fn tuple_at(&self, row: RowId) -> Tuple {
        Tuple::from_row(self.pool.row(row))
    }

    /// Materializes every row as a boundary [`Tuple`], in insertion order
    /// (allocates; result extraction and tests only).
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.pool.rows().map(Tuple::from_row).collect()
    }

    /// Row ids of the rows whose `column` equals `value`, using the hash
    /// index when one exists and a filtered scan otherwise.  Allocates the
    /// result; the hot paths use [`Relation::probe_rows`] instead.
    pub fn lookup_rows(&self, column: usize, value: Value) -> Vec<RowId> {
        if let Some(index) = self.indexes.iter().find(|ix| ix.column() == column) {
            index.lookup(value).to_vec()
        } else {
            self.pool
                .live_rows()
                .filter(|(_, r)| r.get(column) == Some(&value))
                .map(|(i, _)| i)
                .collect()
        }
    }

    /// Row ids of the rows matching *all* the given `(column, value)`
    /// equality filters, through one composite-index probe — `None` when no
    /// composite index covers the filtered columns.
    ///
    /// The widest applicable composite index wins (most columns resolved in
    /// a single hash lookup).  Candidates are confirmed against the actual
    /// row values (composite entries are keyed by hash), so the result is
    /// exact.  Callers fall back to a single-column
    /// [`Relation::lookup_rows`] or a scan when this returns `None`.
    pub fn lookup_rows_composite(&self, filters: &[(usize, Value)]) -> Option<Vec<RowId>> {
        let best = self.best_composite(filters)?;
        let hash = composite_probe_hash(best, filters);
        Some(
            best.lookup_hash(hash)
                .iter()
                .copied()
                .filter(|&row| {
                    let values = self.pool.row(row);
                    best.columns()
                        .iter()
                        .all(|&c| filters.iter().any(|&(col, v)| col == c && values[c] == v))
                })
                .collect(),
        )
    }

    /// The widest composite index whose columns are all present in
    /// `filters`, if any.
    #[inline]
    fn best_composite(&self, filters: &[(usize, Value)]) -> Option<&CompositeIndex> {
        self.composites
            .iter()
            .filter(|ix| {
                ix.columns()
                    .iter()
                    .all(|c| filters.iter().any(|(col, _)| col == c))
            })
            .max_by_key(|ix| ix.columns().len())
    }

    /// Whether any composite index is defined (cheap gate for callers that
    /// want to skip building a resolved-filter list when it cannot pay off).
    #[inline]
    pub fn has_composite_indexes(&self) -> bool {
        !self.composites.is_empty()
    }

    /// Candidate rows for a set of resolved `(column, value)` equality
    /// filters, **without allocating**: the engine-wide access-path policy
    /// shared by the specialized kernel, the interpreter and the bytecode
    /// VM.
    ///
    /// Access paths, in order of preference: a composite index covering
    /// several filtered columns, else a single-column index on any filtered
    /// column, else a scan on the first filter (collected into the caller's
    /// reusable `scratch` buffer), else a full scan.  The returned candidate
    /// list borrows either an index posting list or `scratch`; **rows may
    /// still need re-checking against filters the chosen access path did not
    /// cover** (composite candidates are hash-keyed and may include
    /// collision false positives).
    pub fn probe_rows<'a>(
        &'a self,
        filters: &[(usize, Value)],
        scratch: &'a mut Vec<RowId>,
    ) -> ProbeRows<'a> {
        if filters.len() >= 2 {
            if let Some(best) = self.best_composite(filters) {
                let hash = composite_probe_hash(best, filters);
                return ProbeRows {
                    rows: ProbeSource::Slice(best.lookup_hash(hash)),
                    via_composite: true,
                };
            }
        }
        if let Some(&(col, value)) = filters.iter().find(|(col, _)| self.has_index(*col)) {
            let index = self
                .indexes
                .iter()
                .find(|ix| ix.column() == col)
                .expect("has_index checked");
            return ProbeRows {
                rows: ProbeSource::Slice(index.lookup(value)),
                via_composite: false,
            };
        }
        if let Some(&(col, value)) = filters.first() {
            scratch.clear();
            for (row, values) in self.pool.live_rows() {
                if values.get(col) == Some(&value) {
                    scratch.push(row);
                }
            }
            return ProbeRows {
                rows: ProbeSource::Slice(scratch),
                via_composite: false,
            };
        }
        if self.pool.has_dead() {
            // Tombstoned slots exist: a plain `0..slots` range would revive
            // retracted rows, so collect the live ids into the caller's
            // reusable scratch (still allocation-free once warm).
            scratch.clear();
            scratch.extend(self.pool.live_rows().map(|(row, _)| row));
            return ProbeRows {
                rows: ProbeSource::Slice(scratch),
                via_composite: false,
            };
        }
        ProbeRows {
            rows: ProbeSource::All(self.pool.slots() as RowId),
            via_composite: false,
        }
    }

    /// Allocating convenience wrapper around [`Relation::probe_rows`]
    /// (tests, examples and cold paths).  Same access-path policy and the
    /// same caveat: rows may need re-checking against uncovered filters.
    pub fn candidate_rows(&self, filters: &[(usize, Value)]) -> Vec<RowId> {
        let mut scratch = Vec::new();
        let probe = self.probe_rows(filters, &mut scratch);
        probe.iter().collect()
    }

    /// Compacts tombstoned slots away (see [`RowPool::compact`]): live rows
    /// are renumbered densely and every id-bearing structure — single-column
    /// and composite indexes, shard partitions — is rebuilt.  A no-op (and
    /// free) when nothing is dead.  **Invalidates previously obtained
    /// [`RowId`]s**, so callers only compact at points where none are held
    /// (the incremental engine compacts between update batches).
    pub fn compact(&mut self) {
        if !self.pool.compact() {
            return;
        }
        for index in &mut self.indexes {
            index.rebuild(&self.pool);
        }
        for index in &mut self.composites {
            index.rebuild(&self.pool);
        }
        self.rebuild_shards();
    }

    /// Number of tombstoned slots currently held (the compaction trigger's
    /// input; 0 for insert-only relations).
    #[inline]
    pub fn dead_count(&self) -> usize {
        self.pool.slots() - self.pool.len()
    }

    /// Removes every row but keeps schema, index and shard definitions (and
    /// allocated capacity, so refills do not reallocate).
    pub fn clear(&mut self) {
        self.pool.clear();
        for index in &mut self.indexes {
            index.clear();
        }
        for index in &mut self.composites {
            index.clear();
        }
        for shard in &mut self.shards {
            shard.clear();
        }
    }

    /// Moves all rows of `other` into `self` (deduplicating), leaving
    /// `other` empty.  Schemas must agree in arity.
    pub fn absorb(&mut self, other: &mut Relation) -> Result<usize> {
        if other.schema.arity != self.schema.arity {
            return Err(StorageError::SchemaMismatch {
                context: format!(
                    "absorb {}  (arity {}) into {} (arity {})",
                    other.schema.name, other.schema.arity, self.schema.name, self.schema.arity
                ),
            });
        }
        let added = self.union_in_place(other)?;
        other.clear();
        Ok(added)
    }

    /// Copies all rows of `other` into `self` without modifying `other`.
    ///
    /// Rows are appended straight from `other`'s pool using its retained row
    /// hashes — no tuples are constructed and nothing is rehashed.
    pub fn union_in_place(&mut self, other: &Relation) -> Result<usize> {
        if other.schema.arity != self.schema.arity {
            return Err(StorageError::SchemaMismatch {
                context: format!(
                    "union {} (arity {}) into {} (arity {})",
                    other.schema.name, other.schema.arity, self.schema.name, self.schema.arity
                ),
            });
        }
        let mut added = 0;
        for row in 0..other.pool.slots() {
            let row = row as RowId;
            if !other.pool.is_live(row) {
                continue;
            }
            let values = other.pool.row(row);
            let hash = other.pool.hash_of(row);
            let support = other.pool.support_of(row);
            let key_unit = if self.shard_count > 1 {
                value_hash(values.get(self.shard_key).copied().unwrap_or_default())
            } else {
                0
            };
            // Support counts travel with the row: a fresh insert carries the
            // source count, a duplicate adds its derivations to the target's.
            match self.insert_prehashed_row(values, hash, key_unit) {
                Some(new_row) => {
                    self.pool.set_support(new_row, support);
                    added += 1;
                }
                None => {
                    if let Some(existing) = self.pool.find_hashed(values, hash) {
                        self.pool.add_support(existing, support);
                    }
                }
            }
        }
        Ok(added)
    }

    /// Swaps the *contents* of two relations (row pool, indexes, composite
    /// indexes and shard partitions) while leaving their schemas in place,
    /// in O(1) — this is the primitive behind `SwapClearOp`'s delta
    /// rotation: no row is copied, reinserted or rehashed.
    pub fn swap_contents(&mut self, other: &mut Relation) {
        std::mem::swap(&mut self.pool, &mut other.pool);
        std::mem::swap(&mut self.indexes, &mut other.indexes);
        std::mem::swap(&mut self.composites, &mut other.composites);
        std::mem::swap(&mut self.shard_count, &mut other.shard_count);
        std::mem::swap(&mut self.shard_key, &mut other.shard_key);
        std::mem::swap(&mut self.shards, &mut other.shards);
    }

    /// Resident-memory snapshot: the pool's stats plus the resident bytes of
    /// every index and the shard partitions.
    pub fn pool_stats(&self) -> PoolStats {
        let mut stats = self.pool.stats();
        stats.bytes += self
            .indexes
            .iter()
            .map(ColumnIndex::resident_bytes)
            .sum::<usize>();
        stats.bytes += self
            .composites
            .iter()
            .map(CompositeIndex::resident_bytes)
            .sum::<usize>();
        stats.bytes += self
            .shards
            .iter()
            .map(|s| s.capacity() * std::mem::size_of::<RowId>())
            .sum::<usize>();
        stats
    }
}

/// Hash of the probe key for `index` assembled from resolved filters (the
/// filter list is a superset of the index's columns by construction).
#[inline]
fn composite_probe_hash(index: &CompositeIndex, filters: &[(usize, Value)]) -> u64 {
    index.columns().iter().fold(0, |h, &c| {
        let value = filters
            .iter()
            .find(|(col, _)| *col == c)
            .map(|&(_, v)| v)
            .expect("filter present by construction");
        mix_hash(h, value_hash(value))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelId;

    fn edge_schema() -> RelationSchema {
        RelationSchema::new(RelId(0), "Edge", 2, true)
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(edge_schema());
        assert!(r.insert(Tuple::pair(1, 2)).unwrap());
        assert!(!r.insert(Tuple::pair(1, 2)).unwrap());
        assert!(r.insert(Tuple::pair(2, 3)).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::pair(1, 2)));
        assert!(r.contains_row(&[Value::int(1), Value::int(2)]));
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut r = Relation::new(edge_schema());
        let err = r.insert(Tuple::from_ints(&[1, 2, 3])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn lookup_with_and_without_index_agree() {
        let mut indexed = Relation::new(edge_schema());
        let mut plain = Relation::new(edge_schema());
        indexed.add_index(0).unwrap();
        for (a, b) in [(1, 2), (1, 3), (2, 3), (3, 1)] {
            indexed.insert(Tuple::pair(a, b)).unwrap();
            plain.insert(Tuple::pair(a, b)).unwrap();
        }
        let from_index = indexed.lookup_rows(0, Value::int(1));
        let from_scan = plain.lookup_rows(0, Value::int(1));
        assert_eq!(from_index, from_scan);
        assert_eq!(from_index.len(), 2);
    }

    #[test]
    fn add_index_backfills_existing_rows() {
        let mut r = Relation::new(edge_schema());
        r.insert(Tuple::pair(7, 8)).unwrap();
        r.add_index(1).unwrap();
        assert_eq!(r.lookup_rows(1, Value::int(8)).len(), 1);
        assert!(r.has_index(1));
        assert!(!r.has_index(0));
        assert_eq!(r.index_distinct(1), 1);
        assert_eq!(r.index_distinct(0), 0);
    }

    #[test]
    fn add_index_out_of_bounds_errors() {
        let mut r = Relation::new(edge_schema());
        assert!(matches!(
            r.add_index(5),
            Err(StorageError::ColumnOutOfBounds { .. })
        ));
    }

    #[test]
    fn clear_retains_index_definitions() {
        let mut r = Relation::new(edge_schema());
        r.add_index(0).unwrap();
        r.insert(Tuple::pair(1, 2)).unwrap();
        r.clear();
        assert!(r.is_empty());
        assert!(r.has_index(0));
        r.insert(Tuple::pair(3, 4)).unwrap();
        assert_eq!(r.lookup_rows(0, Value::int(3)).len(), 1);
    }

    #[test]
    fn absorb_moves_and_dedups() {
        let mut a = Relation::new(edge_schema());
        let mut b = Relation::new(edge_schema());
        a.insert(Tuple::pair(1, 2)).unwrap();
        b.insert(Tuple::pair(1, 2)).unwrap();
        b.insert(Tuple::pair(3, 4)).unwrap();
        let added = a.absorb(&mut b).unwrap();
        assert_eq!(added, 1);
        assert_eq!(a.len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn swap_contents_exchanges_rows() {
        let mut a = Relation::new(edge_schema());
        let mut b = Relation::new(edge_schema());
        a.insert(Tuple::pair(1, 1)).unwrap();
        b.insert(Tuple::pair(2, 2)).unwrap();
        b.insert(Tuple::pair(3, 3)).unwrap();
        a.swap_contents(&mut b);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert!(b.contains(&Tuple::pair(1, 1)));
    }

    #[test]
    fn swap_contents_rotation_moves_no_rows() {
        // The O(1) delta-rotation contract: after swapping, both sides serve
        // reads from their exchanged pools without any reinsertion — the row
        // ids and retained hashes travel with the pool.
        let mut known = Relation::new(edge_schema());
        let mut new = Relation::new(edge_schema());
        for i in 0..1000u32 {
            new.insert(Tuple::pair(i, i + 1)).unwrap();
        }
        let new_stats = new.pool_stats();
        known.swap_contents(&mut new);
        assert_eq!(known.len(), 1000);
        assert!(new.is_empty());
        // Identical stats object: same rows, same resident bytes, same
        // lifetime rehash count — nothing was copied or rehashed.
        assert_eq!(known.pool_stats(), new_stats);
        assert_eq!(known.row(0), &[Value::int(0), Value::int(1)]);
        assert_eq!(known.row(999), &[Value::int(999), Value::int(1000)]);
    }

    #[test]
    fn composite_index_probes_two_bound_columns() {
        let mut r = Relation::new(edge_schema());
        r.add_composite_index(&[0, 1]).unwrap();
        for (a, b) in [(1, 2), (1, 3), (2, 2), (1, 2)] {
            r.insert(Tuple::pair(a, b)).unwrap();
        }
        let rows = r
            .lookup_rows_composite(&[(0, Value::int(1)), (1, Value::int(2))])
            .expect("composite index covers both columns");
        assert_eq!(rows, vec![0]);
        // Partial filters are not covered by the two-column index.
        assert!(r.lookup_rows_composite(&[(0, Value::int(1))]).is_none());
        assert!(r.has_composite_index(&[1, 0]));
    }

    #[test]
    fn composite_index_backfills_and_survives_clear() {
        let mut r = Relation::new(edge_schema());
        r.insert(Tuple::pair(5, 6)).unwrap();
        r.add_composite_index(&[0, 1]).unwrap();
        assert_eq!(
            r.lookup_rows_composite(&[(0, Value::int(5)), (1, Value::int(6))]),
            Some(vec![0])
        );
        r.clear();
        assert!(r.has_composite_index(&[0, 1]));
        r.insert(Tuple::pair(7, 8)).unwrap();
        assert_eq!(
            r.lookup_rows_composite(&[(1, Value::int(8)), (0, Value::int(7))]),
            Some(vec![0])
        );
    }

    #[test]
    fn single_column_composite_degrades_to_plain_index() {
        let mut r = Relation::new(edge_schema());
        r.add_composite_index(&[1, 1]).unwrap();
        assert!(r.has_index(1));
        assert!(r.composite_indexed_columns().is_empty());
    }

    #[test]
    fn probe_rows_borrows_posting_lists_and_scratch() {
        let mut r = Relation::new(edge_schema());
        r.add_index(0).unwrap();
        for (a, b) in [(1, 2), (1, 3), (2, 4)] {
            r.insert(Tuple::pair(a, b)).unwrap();
        }
        let mut scratch = Vec::new();
        // Indexed column: posting-list-backed, scratch untouched.
        let probe = r.probe_rows(&[(0, Value::int(1))], &mut scratch);
        assert_eq!(probe.iter().collect::<Vec<_>>(), vec![0, 1]);
        assert!(!probe.via_composite());
        // Unindexed column: scratch-backed filtered scan.
        let probe = r.probe_rows(&[(1, Value::int(4))], &mut scratch);
        assert_eq!(probe.iter().collect::<Vec<_>>(), vec![2]);
        // No filters: full range, still allocation-free.
        let probe = r.probe_rows(&[], &mut scratch);
        assert_eq!(probe.len(), 3);
        assert_eq!(probe.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn candidate_rows_matches_probe_rows() {
        let mut r = Relation::new(edge_schema());
        r.add_composite_index(&[0, 1]).unwrap();
        for (a, b) in [(1, 2), (1, 3), (2, 2)] {
            r.insert(Tuple::pair(a, b)).unwrap();
        }
        let filters = [(0, Value::int(1)), (1, Value::int(3))];
        let mut scratch = Vec::new();
        let probe: Vec<RowId> = r.probe_rows(&filters, &mut scratch).iter().collect();
        assert_eq!(probe, r.candidate_rows(&filters));
        assert!(r.probe_rows(&filters, &mut scratch).via_composite());
    }

    #[test]
    fn shards_partition_all_rows_disjointly() {
        let mut r = Relation::new(edge_schema());
        r.set_sharding(4, 0).unwrap();
        for i in 0..100u32 {
            r.insert(Tuple::pair(i, i + 1)).unwrap();
        }
        assert!(r.is_sharded());
        let mut seen: Vec<RowId> = (0..4).flat_map(|s| r.shard_rows(s).to_vec()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<RowId>>());
        // Every shard got something at this size.
        for s in 0..4 {
            assert!(!r.shard_rows(s).is_empty(), "shard {s} is empty");
        }
        // All rows in a shard share the shard of their key value.
        for s in 0..4 {
            for &row in r.shard_rows(s) {
                let v = r.row(row)[0];
                assert_eq!(super::shard_of(v, 4), s);
            }
        }
    }

    #[test]
    fn sharding_can_be_reconfigured_and_disabled() {
        let mut r = Relation::new(edge_schema());
        for i in 0..10u32 {
            r.insert(Tuple::pair(i, i)).unwrap();
        }
        r.set_sharding(8, 1).unwrap();
        assert_eq!(r.shard_count(), 8);
        let total: usize = (0..8).map(|s| r.shard_rows(s).len()).sum();
        assert_eq!(total, 10);
        r.set_sharding(1, 0).unwrap();
        assert!(!r.is_sharded());
        assert!(r.shard_rows(0).is_empty());
        assert!(matches!(
            r.set_sharding(2, 9),
            Err(StorageError::ColumnOutOfBounds { .. })
        ));
    }

    #[test]
    fn retract_row_unlinks_indexes_and_shards() {
        let mut r = Relation::new(edge_schema());
        r.add_index(0).unwrap();
        r.add_composite_index(&[0, 1]).unwrap();
        r.set_sharding(4, 0).unwrap();
        for (a, b) in [(1, 2), (1, 3), (2, 4)] {
            r.insert(Tuple::pair(a, b)).unwrap();
        }
        assert!(r.retract(&Tuple::pair(1, 3)).unwrap());
        assert!(!r.retract(&Tuple::pair(1, 3)).unwrap());
        assert_eq!(r.len(), 2);
        assert!(!r.contains(&Tuple::pair(1, 3)));
        assert_eq!(r.lookup_rows(0, Value::int(1)), vec![0]);
        assert_eq!(
            r.lookup_rows_composite(&[(0, Value::int(1)), (1, Value::int(3))]),
            Some(vec![])
        );
        let sharded: Vec<RowId> = (0..4).flat_map(|s| r.shard_rows(s).to_vec()).collect();
        assert_eq!(sharded.len(), 2);
        assert!(!sharded.contains(&1));
        // Full scans (probe with no filters) skip the tombstone.
        let mut scratch = Vec::new();
        let probe: Vec<RowId> = r.probe_rows(&[], &mut scratch).iter().collect();
        assert_eq!(probe, vec![0, 2]);
        // Unindexed filtered scans skip it too.
        let mut plain = Relation::new(edge_schema());
        plain.insert(Tuple::pair(1, 2)).unwrap();
        plain.insert(Tuple::pair(1, 3)).unwrap();
        plain.retract(&Tuple::pair(1, 3)).unwrap();
        let probe: Vec<RowId> = plain
            .probe_rows(&[(0, Value::int(1))], &mut scratch)
            .iter()
            .collect();
        assert_eq!(probe, vec![0]);
        // Re-insertion after retraction works and is visible again.
        assert!(r.insert(Tuple::pair(1, 3)).unwrap());
        assert_eq!(r.lookup_rows(0, Value::int(1)).len(), 2);
    }

    #[test]
    fn compact_renumbers_and_rebuilds_everything() {
        let mut r = Relation::new(edge_schema());
        r.add_index(0).unwrap();
        r.add_composite_index(&[0, 1]).unwrap();
        r.set_sharding(4, 0).unwrap();
        for i in 0..100u32 {
            r.insert(Tuple::pair(i % 10, i)).unwrap();
        }
        for i in (0..100u32).step_by(2) {
            r.retract(&Tuple::pair(i % 10, i)).unwrap();
        }
        assert_eq!(r.len(), 50);
        assert_eq!(r.dead_count(), 50);
        r.compact();
        assert_eq!(r.len(), 50);
        assert_eq!(r.dead_count(), 0);
        assert_eq!(r.slot_count(), 50);
        // Membership, indexes, composite probes and shards all agree with
        // a freshly built relation holding the surviving rows.
        let mut fresh = Relation::new(edge_schema());
        fresh.add_index(0).unwrap();
        fresh.add_composite_index(&[0, 1]).unwrap();
        fresh.set_sharding(4, 0).unwrap();
        for i in (1..100u32).step_by(2) {
            fresh.insert(Tuple::pair(i % 10, i)).unwrap();
        }
        let mut a = r.to_tuples();
        let mut b = fresh.to_tuples();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        for v in 0..10u32 {
            assert_eq!(
                r.lookup_rows(0, Value::int(v)).len(),
                fresh.lookup_rows(0, Value::int(v)).len()
            );
        }
        assert_eq!(
            r.lookup_rows_composite(&[(0, Value::int(1)), (1, Value::int(1))]),
            Some(vec![0])
        );
        for s in 0..4 {
            assert_eq!(r.shard_rows(s).len(), fresh.shard_rows(s).len());
        }
        // Support counts travelled with their rows.
        for row in 0..50u32 {
            assert_eq!(r.support_of(row), 1);
        }
        // Further inserts and retracts behave normally afterwards.
        assert!(r.insert(Tuple::pair(0, 0)).unwrap());
        assert!(r.retract(&Tuple::pair(1, 1)).unwrap());
        assert_eq!(r.len(), 50);
    }

    #[test]
    fn row_checked_rejects_ids_across_compaction() {
        // Regression: compaction renumbers RowIds; a holder re-reading a
        // pre-compaction id through `row()` silently gets whatever row now
        // occupies the slot.  The generation-checked accessor turns that
        // into a typed error.
        let mut r = Relation::new(edge_schema());
        for i in 0..10u32 {
            r.insert(Tuple::pair(i, i)).unwrap();
        }
        let generation = r.generation();
        // Hold the id of row (9, 9), then retract everything before it.
        let held = r.lookup_rows(0, Value::int(9))[0];
        assert_eq!(
            r.row_checked(held, generation).unwrap(),
            &[Value::int(9), Value::int(9)]
        );
        for i in 0..9u32 {
            r.retract(&Tuple::pair(i, i)).unwrap();
        }
        r.compact();
        // The unchecked accessor would now hand back (9, 9) under id 0 and
        // whatever garbage `held` points at is out of bounds or wrong; the
        // checked accessor reports staleness instead.
        let err = r.row_checked(held, generation).unwrap_err();
        assert!(matches!(
            err,
            StorageError::StaleRowId {
                held: 0,
                current: 1,
                ..
            }
        ));
        // Fresh ids under the new generation validate fine.
        let fresh = r.lookup_rows(0, Value::int(9))[0];
        assert_eq!(
            r.row_checked(fresh, r.generation()).unwrap(),
            &[Value::int(9), Value::int(9)]
        );
        // Retracted-but-not-compacted slots are rejected too.
        r.insert(Tuple::pair(1, 2)).unwrap();
        let id = r.lookup_rows(0, Value::int(1))[0];
        r.retract(&Tuple::pair(1, 2)).unwrap();
        assert!(r.row_checked(id, r.generation()).is_err());
    }

    #[test]
    fn union_in_place_transfers_support() {
        let mut a = Relation::new(edge_schema());
        let mut b = Relation::new(edge_schema());
        a.insert(Tuple::pair(1, 2)).unwrap();
        a.add_support(0, 2); // a's (1,2) has 3 derivations
        b.insert(Tuple::pair(1, 2)).unwrap();
        b.insert(Tuple::pair(3, 4)).unwrap();
        b.set_support(1, 5);
        a.union_in_place(&b).unwrap();
        assert_eq!(a.support_of(0), 4); // 3 + 1 from b's copy
        let new_row = a
            .find_row_hashed(
                &[Value::int(3), Value::int(4)],
                crate::pool::row_hash(&[Value::int(3), Value::int(4)]),
            )
            .unwrap();
        assert_eq!(a.support_of(new_row), 5); // carried over
    }

    #[test]
    fn union_in_place_keeps_source() {
        let mut a = Relation::new(edge_schema());
        let mut b = Relation::new(edge_schema());
        b.insert(Tuple::pair(9, 9)).unwrap();
        let added = a.union_in_place(&b).unwrap();
        assert_eq!(added, 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn pool_stats_report_rows_and_bytes() {
        let mut r = Relation::new(edge_schema());
        r.add_index(0).unwrap();
        for i in 0..50u32 {
            r.insert(Tuple::pair(i % 5, i)).unwrap();
        }
        let stats = r.pool_stats();
        assert_eq!(stats.rows, 50);
        assert!(stats.bytes >= 50 * 2 * std::mem::size_of::<Value>());
        assert_eq!(r.index_distinct(0), 5);
        assert_eq!(r.indexed_distincts(), vec![(0, 5)]);
    }
}
