//! In-memory relations with set semantics.

use crate::error::StorageError;
use crate::hasher::FxHashSet;
use crate::index::ColumnIndex;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A duplicate-free, insertion-ordered collection of tuples.
///
/// Relations keep three structures in sync:
///
/// * `tuples` — insertion-ordered rows, the scan path,
/// * `set` — a hash set used for O(1) duplicate elimination and membership
///   tests (`diff`, semi-naive dedup),
/// * `indexes` — optional per-column hash indexes used by index-nested-loop
///   joins when the engine runs in "indexed" mode.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    tuples: Vec<Tuple>,
    set: FxHashSet<Tuple>,
    indexes: Vec<ColumnIndex>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
            set: FxHashSet::default(),
            indexes: Vec::new(),
        }
    }

    /// The schema of this relation.
    #[inline]
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Name of the relation (convenience accessor).
    #[inline]
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.arity
    }

    /// Number of tuples currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Declares a hash index on `column`.  Idempotent; existing tuples are
    /// back-filled.  Returns an error if the column is out of bounds.
    pub fn add_index(&mut self, column: usize) -> Result<()> {
        if column >= self.schema.arity {
            return Err(StorageError::ColumnOutOfBounds {
                relation: self.schema.name.clone(),
                column,
                arity: self.schema.arity,
            });
        }
        if self.indexes.iter().any(|ix| ix.column() == column) {
            return Ok(());
        }
        let mut index = ColumnIndex::new(column);
        index.rebuild(&self.tuples);
        self.indexes.push(index);
        Ok(())
    }

    /// Columns currently covered by an index.
    pub fn indexed_columns(&self) -> Vec<usize> {
        self.indexes.iter().map(ColumnIndex::column).collect()
    }

    /// Whether `column` has an index.
    pub fn has_index(&self, column: usize) -> bool {
        self.indexes.iter().any(|ix| ix.column() == column)
    }

    /// Inserts a tuple, returning `true` if it was new.
    ///
    /// Duplicate tuples are silently ignored (set semantics).  Arity is
    /// validated against the schema.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != self.schema.arity {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity,
                actual: tuple.arity(),
            });
        }
        if self.set.contains(&tuple) {
            return Ok(false);
        }
        let row = self.tuples.len();
        for index in &mut self.indexes {
            index.insert(&tuple, row);
        }
        self.set.insert(tuple.clone());
        self.tuples.push(tuple);
        Ok(true)
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.set.contains(tuple)
    }

    /// Scan of all tuples in insertion order.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The tuple stored at row offset `row` (insertion order).
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds; callers obtain rows from
    /// [`Relation::lookup_rows`] or `0..len()`.
    #[inline]
    pub fn tuple_at(&self, row: usize) -> &Tuple {
        &self.tuples[row]
    }

    /// Row offsets of the tuples whose `column` equals `value`, using the
    /// hash index when one exists and a filtered scan otherwise.
    pub fn lookup_rows(&self, column: usize, value: Value) -> Vec<usize> {
        if let Some(index) = self.indexes.iter().find(|ix| ix.column() == column) {
            index.lookup(value).to_vec()
        } else {
            self.tuples
                .iter()
                .enumerate()
                .filter(|(_, t)| t.get(column) == Some(value))
                .map(|(i, _)| i)
                .collect()
        }
    }

    /// Iterator over the tuples whose `column` equals `value`.
    ///
    /// Uses the hash index if one exists, otherwise falls back to a filtered
    /// scan.  The returned vector contains references in insertion order.
    pub fn lookup(&self, column: usize, value: Value) -> Vec<&Tuple> {
        if let Some(index) = self.indexes.iter().find(|ix| ix.column() == column) {
            index
                .lookup(value)
                .iter()
                .map(|&row| &self.tuples[row])
                .collect()
        } else {
            self.tuples
                .iter()
                .filter(|t| t.get(column) == Some(value))
                .collect()
        }
    }

    /// Removes every tuple but keeps schema and index definitions.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.set.clear();
        for index in &mut self.indexes {
            index.clear();
        }
    }

    /// Moves all tuples of `other` into `self` (deduplicating), leaving
    /// `other` empty.  Schemas must agree in arity.
    pub fn absorb(&mut self, other: &mut Relation) -> Result<usize> {
        if other.schema.arity != self.schema.arity {
            return Err(StorageError::SchemaMismatch {
                context: format!(
                    "absorb {}  (arity {}) into {} (arity {})",
                    other.schema.name, other.schema.arity, self.schema.name, self.schema.arity
                ),
            });
        }
        let mut added = 0;
        for tuple in std::mem::take(&mut other.tuples) {
            if self.insert(tuple)? {
                added += 1;
            }
        }
        other.set.clear();
        for index in &mut other.indexes {
            index.clear();
        }
        Ok(added)
    }

    /// Copies all tuples of `other` into `self` without modifying `other`.
    pub fn union_in_place(&mut self, other: &Relation) -> Result<usize> {
        let mut added = 0;
        for tuple in other.tuples() {
            if self.insert(tuple.clone())? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Swaps the *contents* of two relations (tuples, set, indexes) while
    /// leaving their schemas in place.  This is the primitive behind
    /// `SwapClearOp`.
    pub fn swap_contents(&mut self, other: &mut Relation) {
        std::mem::swap(&mut self.tuples, &mut other.tuples);
        std::mem::swap(&mut self.set, &mut other.set);
        std::mem::swap(&mut self.indexes, &mut other.indexes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelId;

    fn edge_schema() -> RelationSchema {
        RelationSchema::new(RelId(0), "Edge", 2, true)
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(edge_schema());
        assert!(r.insert(Tuple::pair(1, 2)).unwrap());
        assert!(!r.insert(Tuple::pair(1, 2)).unwrap());
        assert!(r.insert(Tuple::pair(2, 3)).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::pair(1, 2)));
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut r = Relation::new(edge_schema());
        let err = r.insert(Tuple::from_ints(&[1, 2, 3])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn lookup_with_and_without_index_agree() {
        let mut indexed = Relation::new(edge_schema());
        let mut plain = Relation::new(edge_schema());
        indexed.add_index(0).unwrap();
        for (a, b) in [(1, 2), (1, 3), (2, 3), (3, 1)] {
            indexed.insert(Tuple::pair(a, b)).unwrap();
            plain.insert(Tuple::pair(a, b)).unwrap();
        }
        let from_index: Vec<_> = indexed.lookup(0, Value::int(1)).into_iter().cloned().collect();
        let from_scan: Vec<_> = plain.lookup(0, Value::int(1)).into_iter().cloned().collect();
        assert_eq!(from_index, from_scan);
        assert_eq!(from_index.len(), 2);
    }

    #[test]
    fn add_index_backfills_existing_tuples() {
        let mut r = Relation::new(edge_schema());
        r.insert(Tuple::pair(7, 8)).unwrap();
        r.add_index(1).unwrap();
        assert_eq!(r.lookup(1, Value::int(8)).len(), 1);
        assert!(r.has_index(1));
        assert!(!r.has_index(0));
    }

    #[test]
    fn add_index_out_of_bounds_errors() {
        let mut r = Relation::new(edge_schema());
        assert!(matches!(
            r.add_index(5),
            Err(StorageError::ColumnOutOfBounds { .. })
        ));
    }

    #[test]
    fn clear_retains_index_definitions() {
        let mut r = Relation::new(edge_schema());
        r.add_index(0).unwrap();
        r.insert(Tuple::pair(1, 2)).unwrap();
        r.clear();
        assert!(r.is_empty());
        assert!(r.has_index(0));
        r.insert(Tuple::pair(3, 4)).unwrap();
        assert_eq!(r.lookup(0, Value::int(3)).len(), 1);
    }

    #[test]
    fn absorb_moves_and_dedups() {
        let mut a = Relation::new(edge_schema());
        let mut b = Relation::new(edge_schema());
        a.insert(Tuple::pair(1, 2)).unwrap();
        b.insert(Tuple::pair(1, 2)).unwrap();
        b.insert(Tuple::pair(3, 4)).unwrap();
        let added = a.absorb(&mut b).unwrap();
        assert_eq!(added, 1);
        assert_eq!(a.len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn swap_contents_exchanges_tuples() {
        let mut a = Relation::new(edge_schema());
        let mut b = Relation::new(edge_schema());
        a.insert(Tuple::pair(1, 1)).unwrap();
        b.insert(Tuple::pair(2, 2)).unwrap();
        b.insert(Tuple::pair(3, 3)).unwrap();
        a.swap_contents(&mut b);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert!(b.contains(&Tuple::pair(1, 1)));
    }

    #[test]
    fn union_in_place_keeps_source() {
        let mut a = Relation::new(edge_schema());
        let mut b = Relation::new(edge_schema());
        b.insert(Tuple::pair(9, 9)).unwrap();
        let added = a.union_in_place(&b).unwrap();
        assert_eq!(added, 1);
        assert_eq!(b.len(), 1);
    }
}
