//! In-memory relations with set semantics.

use crate::error::StorageError;
use crate::hasher::FxHashSet;
use crate::index::{ColumnIndex, CompositeIndex};
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use crate::Result;

/// A duplicate-free, insertion-ordered collection of tuples.
///
/// Relations keep several structures in sync:
///
/// * `tuples` — insertion-ordered rows, the scan path,
/// * `set` — a hash set used for O(1) duplicate elimination and membership
///   tests (`diff`, semi-naive dedup),
/// * `indexes` — optional per-column hash indexes used by index-nested-loop
///   joins when the engine runs in "indexed" mode,
/// * `composites` — optional multi-column hash indexes for atoms probed on
///   several bound columns at once,
/// * `shards` — optional hash partitions of the row offsets by shard-key
///   value, enabling independent parallel scans of disjoint tuple subsets
///   (see [`Relation::set_sharding`]).
///
/// ```
/// use carac_storage::{Relation, RelationSchema, RelId, Tuple, Value};
///
/// let mut edges = Relation::new(RelationSchema::new(RelId(0), "Edge", 2, true));
/// edges.add_index(0)?;                    // single-column hash index
/// edges.add_composite_index(&[0, 1])?;    // multi-column hash index
/// edges.insert(Tuple::pair(1, 2))?;
/// edges.insert(Tuple::pair(1, 3))?;
/// assert!(!edges.insert(Tuple::pair(1, 2))?); // set semantics: duplicate
///
/// assert_eq!(edges.lookup(0, Value::int(1)).len(), 2);
/// let rows = edges
///     .lookup_rows_composite(&[(0, Value::int(1)), (1, Value::int(3))])
///     .expect("the composite index covers both filters");
/// assert_eq!(rows.len(), 1);
/// # Ok::<(), carac_storage::StorageError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Relation {
    schema: RelationSchema,
    tuples: Vec<Tuple>,
    set: FxHashSet<Tuple>,
    indexes: Vec<ColumnIndex>,
    composites: Vec<CompositeIndex>,
    /// Number of shard partitions; `1` disables sharding.
    shard_count: usize,
    /// Column whose value hashes a tuple into its shard.
    shard_key: usize,
    /// Row offsets per shard (`shards.len() == shard_count` when sharded,
    /// empty otherwise).
    shards: Vec<Vec<usize>>,
}

/// Deterministic shard assignment for a value: a fixed multiplicative hash,
/// identical on every platform and across runs, so shard membership never
/// depends on process state.
#[inline]
fn shard_of(value: Value, shard_count: usize) -> usize {
    (value.raw().wrapping_mul(0x9E37_79B1) >> 7) as usize % shard_count
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        Relation {
            schema,
            tuples: Vec::new(),
            set: FxHashSet::default(),
            indexes: Vec::new(),
            composites: Vec::new(),
            shard_count: 1,
            shard_key: 0,
            shards: Vec::new(),
        }
    }

    /// The schema of this relation.
    #[inline]
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Name of the relation (convenience accessor).
    #[inline]
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.arity
    }

    /// Number of tuples currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Declares a hash index on `column`.  Idempotent; existing tuples are
    /// back-filled.  Returns an error if the column is out of bounds.
    pub fn add_index(&mut self, column: usize) -> Result<()> {
        if column >= self.schema.arity {
            return Err(StorageError::ColumnOutOfBounds {
                relation: self.schema.name.clone(),
                column,
                arity: self.schema.arity,
            });
        }
        if self.indexes.iter().any(|ix| ix.column() == column) {
            return Ok(());
        }
        let mut index = ColumnIndex::new(column);
        index.rebuild(&self.tuples);
        self.indexes.push(index);
        Ok(())
    }

    /// Columns currently covered by an index.
    pub fn indexed_columns(&self) -> Vec<usize> {
        self.indexes.iter().map(ColumnIndex::column).collect()
    }

    /// Whether `column` has an index.
    pub fn has_index(&self, column: usize) -> bool {
        self.indexes.iter().any(|ix| ix.column() == column)
    }

    /// Declares a composite hash index over `columns` (at least two distinct
    /// columns; a single column degrades to [`Relation::add_index`]).
    /// Idempotent; existing tuples are back-filled.  Returns an error if any
    /// column is out of bounds.
    pub fn add_composite_index(&mut self, columns: &[usize]) -> Result<()> {
        let mut canonical = columns.to_vec();
        canonical.sort_unstable();
        canonical.dedup();
        for &column in &canonical {
            if column >= self.schema.arity {
                return Err(StorageError::ColumnOutOfBounds {
                    relation: self.schema.name.clone(),
                    column,
                    arity: self.schema.arity,
                });
            }
        }
        match canonical.as_slice() {
            [] => Ok(()),
            [single] => self.add_index(*single),
            _ => {
                if self.composites.iter().any(|ix| ix.columns() == canonical) {
                    return Ok(());
                }
                let mut index = CompositeIndex::new(&canonical);
                index.rebuild(&self.tuples);
                self.composites.push(index);
                Ok(())
            }
        }
    }

    /// The column sets currently covered by composite indexes.
    pub fn composite_indexed_columns(&self) -> Vec<Vec<usize>> {
        self.composites.iter().map(|ix| ix.columns().to_vec()).collect()
    }

    /// Whether a composite index over exactly `columns` (order-insensitive)
    /// exists.
    pub fn has_composite_index(&self, columns: &[usize]) -> bool {
        let mut canonical = columns.to_vec();
        canonical.sort_unstable();
        canonical.dedup();
        self.composites.iter().any(|ix| ix.columns() == canonical)
    }

    /// Partitions the relation's rows into `shard_count` hash shards keyed
    /// on `shard_key`'s value, rebuilding the partitions for the existing
    /// tuples.  A count of 0 or 1 disables sharding.  Returns an error when
    /// the key column is out of bounds.
    ///
    /// Shard membership is a pure function of the key value (fixed
    /// multiplicative hash), so two relations sharded the same way agree on
    /// which shard any tuple belongs to — the property the parallel join
    /// kernels rely on for deterministic merges.
    pub fn set_sharding(&mut self, shard_count: usize, shard_key: usize) -> Result<()> {
        if shard_key >= self.schema.arity {
            return Err(StorageError::ColumnOutOfBounds {
                relation: self.schema.name.clone(),
                column: shard_key,
                arity: self.schema.arity,
            });
        }
        self.shard_count = shard_count.max(1);
        self.shard_key = shard_key;
        self.rebuild_shards();
        Ok(())
    }

    /// Number of shard partitions (1 when sharding is disabled).
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// Whether the relation maintains shard partitions.
    #[inline]
    pub fn is_sharded(&self) -> bool {
        self.shard_count > 1
    }

    /// Row offsets belonging to shard `shard` (insertion order within the
    /// shard).  Empty for out-of-range shards or when sharding is disabled.
    pub fn shard_rows(&self, shard: usize) -> &[usize] {
        self.shards.get(shard).map(Vec::as_slice).unwrap_or(&[])
    }

    fn rebuild_shards(&mut self) {
        self.shards.clear();
        if self.shard_count <= 1 {
            return;
        }
        self.shards.resize(self.shard_count, Vec::new());
        for (row, tuple) in self.tuples.iter().enumerate() {
            let value = tuple.get(self.shard_key).unwrap_or_default();
            self.shards[shard_of(value, self.shard_count)].push(row);
        }
    }

    /// Inserts a tuple, returning `true` if it was new.
    ///
    /// Duplicate tuples are silently ignored (set semantics).  Arity is
    /// validated against the schema.
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        if tuple.arity() != self.schema.arity {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name.clone(),
                expected: self.schema.arity,
                actual: tuple.arity(),
            });
        }
        if self.set.contains(&tuple) {
            return Ok(false);
        }
        let row = self.tuples.len();
        for index in &mut self.indexes {
            index.insert(&tuple, row);
        }
        for index in &mut self.composites {
            index.insert(&tuple, row);
        }
        if self.shard_count > 1 {
            let value = tuple.get(self.shard_key).unwrap_or_default();
            self.shards[shard_of(value, self.shard_count)].push(row);
        }
        self.set.insert(tuple.clone());
        self.tuples.push(tuple);
        Ok(true)
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.set.contains(tuple)
    }

    /// Scan of all tuples in insertion order.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The tuple stored at row offset `row` (insertion order).
    ///
    /// # Panics
    ///
    /// Panics when `row` is out of bounds; callers obtain rows from
    /// [`Relation::lookup_rows`] or `0..len()`.
    #[inline]
    pub fn tuple_at(&self, row: usize) -> &Tuple {
        &self.tuples[row]
    }

    /// Row offsets of the tuples whose `column` equals `value`, using the
    /// hash index when one exists and a filtered scan otherwise.
    pub fn lookup_rows(&self, column: usize, value: Value) -> Vec<usize> {
        if let Some(index) = self.indexes.iter().find(|ix| ix.column() == column) {
            index.lookup(value).to_vec()
        } else {
            self.tuples
                .iter()
                .enumerate()
                .filter(|(_, t)| t.get(column) == Some(value))
                .map(|(i, _)| i)
                .collect()
        }
    }

    /// Iterator over the tuples whose `column` equals `value`.
    ///
    /// Uses the hash index if one exists, otherwise falls back to a filtered
    /// scan.  The returned vector contains references in insertion order.
    pub fn lookup(&self, column: usize, value: Value) -> Vec<&Tuple> {
        if let Some(index) = self.indexes.iter().find(|ix| ix.column() == column) {
            index
                .lookup(value)
                .iter()
                .map(|&row| &self.tuples[row])
                .collect()
        } else {
            self.tuples
                .iter()
                .filter(|t| t.get(column) == Some(value))
                .collect()
        }
    }

    /// Row offsets of the tuples matching *all* the given `(column, value)`
    /// equality filters, through one composite-index probe — `None` when no
    /// composite index covers the filtered columns.
    ///
    /// The widest applicable composite index wins (most columns resolved in
    /// a single hash lookup).  Callers fall back to a single-column
    /// [`Relation::lookup_rows`] or a scan when this returns `None`.
    pub fn lookup_rows_composite(&self, filters: &[(usize, Value)]) -> Option<Vec<usize>> {
        let best = self
            .composites
            .iter()
            .filter(|ix| {
                ix.columns()
                    .iter()
                    .all(|c| filters.iter().any(|(col, _)| col == c))
            })
            .max_by_key(|ix| ix.columns().len())?;
        let key: Vec<Value> = best
            .columns()
            .iter()
            .map(|c| {
                filters
                    .iter()
                    .find(|(col, _)| col == c)
                    .map(|&(_, v)| v)
                    .expect("filter present by construction")
            })
            .collect();
        Some(best.lookup(&key).to_vec())
    }

    /// Whether any composite index is defined (cheap gate for callers that
    /// want to skip building a resolved-filter list when it cannot pay off).
    #[inline]
    pub fn has_composite_indexes(&self) -> bool {
        !self.composites.is_empty()
    }

    /// Candidate row offsets for a set of resolved `(column, value)`
    /// equality filters — the engine-wide access-path policy, shared by the
    /// specialized kernel, the interpreter and the bytecode VM: a composite
    /// index covering several filtered columns, else a single-column index
    /// on any filtered column, else a lookup on the first filter, else a
    /// full scan.  Rows may still need re-checking against filters the
    /// chosen access path did not cover.
    pub fn candidate_rows(&self, filters: &[(usize, Value)]) -> Vec<usize> {
        if filters.len() >= 2 {
            if let Some(rows) = self.lookup_rows_composite(filters) {
                return rows;
            }
        }
        if let Some(&(col, value)) = filters.iter().find(|(col, _)| self.has_index(*col)) {
            return self.lookup_rows(col, value);
        }
        if let Some(&(col, value)) = filters.first() {
            return self.lookup_rows(col, value);
        }
        (0..self.len()).collect()
    }

    /// Removes every tuple but keeps schema, index and shard definitions.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.set.clear();
        for index in &mut self.indexes {
            index.clear();
        }
        for index in &mut self.composites {
            index.clear();
        }
        for shard in &mut self.shards {
            shard.clear();
        }
    }

    /// Moves all tuples of `other` into `self` (deduplicating), leaving
    /// `other` empty.  Schemas must agree in arity.
    pub fn absorb(&mut self, other: &mut Relation) -> Result<usize> {
        if other.schema.arity != self.schema.arity {
            return Err(StorageError::SchemaMismatch {
                context: format!(
                    "absorb {}  (arity {}) into {} (arity {})",
                    other.schema.name, other.schema.arity, self.schema.name, self.schema.arity
                ),
            });
        }
        let mut added = 0;
        for tuple in std::mem::take(&mut other.tuples) {
            if self.insert(tuple)? {
                added += 1;
            }
        }
        other.set.clear();
        for index in &mut other.indexes {
            index.clear();
        }
        for index in &mut other.composites {
            index.clear();
        }
        for shard in &mut other.shards {
            shard.clear();
        }
        Ok(added)
    }

    /// Copies all tuples of `other` into `self` without modifying `other`.
    pub fn union_in_place(&mut self, other: &Relation) -> Result<usize> {
        let mut added = 0;
        for tuple in other.tuples() {
            if self.insert(tuple.clone())? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Swaps the *contents* of two relations (tuples, set, indexes,
    /// composite indexes and shard partitions) while leaving their schemas
    /// in place.  This is the primitive behind `SwapClearOp`.
    pub fn swap_contents(&mut self, other: &mut Relation) {
        std::mem::swap(&mut self.tuples, &mut other.tuples);
        std::mem::swap(&mut self.set, &mut other.set);
        std::mem::swap(&mut self.indexes, &mut other.indexes);
        std::mem::swap(&mut self.composites, &mut other.composites);
        std::mem::swap(&mut self.shard_count, &mut other.shard_count);
        std::mem::swap(&mut self.shard_key, &mut other.shard_key);
        std::mem::swap(&mut self.shards, &mut other.shards);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelId;

    fn edge_schema() -> RelationSchema {
        RelationSchema::new(RelId(0), "Edge", 2, true)
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(edge_schema());
        assert!(r.insert(Tuple::pair(1, 2)).unwrap());
        assert!(!r.insert(Tuple::pair(1, 2)).unwrap());
        assert!(r.insert(Tuple::pair(2, 3)).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::pair(1, 2)));
    }

    #[test]
    fn insert_rejects_wrong_arity() {
        let mut r = Relation::new(edge_schema());
        let err = r.insert(Tuple::from_ints(&[1, 2, 3])).unwrap_err();
        assert!(matches!(err, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn lookup_with_and_without_index_agree() {
        let mut indexed = Relation::new(edge_schema());
        let mut plain = Relation::new(edge_schema());
        indexed.add_index(0).unwrap();
        for (a, b) in [(1, 2), (1, 3), (2, 3), (3, 1)] {
            indexed.insert(Tuple::pair(a, b)).unwrap();
            plain.insert(Tuple::pair(a, b)).unwrap();
        }
        let from_index: Vec<_> = indexed.lookup(0, Value::int(1)).into_iter().cloned().collect();
        let from_scan: Vec<_> = plain.lookup(0, Value::int(1)).into_iter().cloned().collect();
        assert_eq!(from_index, from_scan);
        assert_eq!(from_index.len(), 2);
    }

    #[test]
    fn add_index_backfills_existing_tuples() {
        let mut r = Relation::new(edge_schema());
        r.insert(Tuple::pair(7, 8)).unwrap();
        r.add_index(1).unwrap();
        assert_eq!(r.lookup(1, Value::int(8)).len(), 1);
        assert!(r.has_index(1));
        assert!(!r.has_index(0));
    }

    #[test]
    fn add_index_out_of_bounds_errors() {
        let mut r = Relation::new(edge_schema());
        assert!(matches!(
            r.add_index(5),
            Err(StorageError::ColumnOutOfBounds { .. })
        ));
    }

    #[test]
    fn clear_retains_index_definitions() {
        let mut r = Relation::new(edge_schema());
        r.add_index(0).unwrap();
        r.insert(Tuple::pair(1, 2)).unwrap();
        r.clear();
        assert!(r.is_empty());
        assert!(r.has_index(0));
        r.insert(Tuple::pair(3, 4)).unwrap();
        assert_eq!(r.lookup(0, Value::int(3)).len(), 1);
    }

    #[test]
    fn absorb_moves_and_dedups() {
        let mut a = Relation::new(edge_schema());
        let mut b = Relation::new(edge_schema());
        a.insert(Tuple::pair(1, 2)).unwrap();
        b.insert(Tuple::pair(1, 2)).unwrap();
        b.insert(Tuple::pair(3, 4)).unwrap();
        let added = a.absorb(&mut b).unwrap();
        assert_eq!(added, 1);
        assert_eq!(a.len(), 2);
        assert!(b.is_empty());
    }

    #[test]
    fn swap_contents_exchanges_tuples() {
        let mut a = Relation::new(edge_schema());
        let mut b = Relation::new(edge_schema());
        a.insert(Tuple::pair(1, 1)).unwrap();
        b.insert(Tuple::pair(2, 2)).unwrap();
        b.insert(Tuple::pair(3, 3)).unwrap();
        a.swap_contents(&mut b);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert!(b.contains(&Tuple::pair(1, 1)));
    }

    #[test]
    fn composite_index_probes_two_bound_columns() {
        let mut r = Relation::new(edge_schema());
        r.add_composite_index(&[0, 1]).unwrap();
        for (a, b) in [(1, 2), (1, 3), (2, 2), (1, 2)] {
            r.insert(Tuple::pair(a, b)).unwrap();
        }
        let rows = r
            .lookup_rows_composite(&[(0, Value::int(1)), (1, Value::int(2))])
            .expect("composite index covers both columns");
        assert_eq!(rows, vec![0]);
        // Partial filters are not covered by the two-column index.
        assert!(r.lookup_rows_composite(&[(0, Value::int(1))]).is_none());
        assert!(r.has_composite_index(&[1, 0]));
    }

    #[test]
    fn composite_index_backfills_and_survives_clear() {
        let mut r = Relation::new(edge_schema());
        r.insert(Tuple::pair(5, 6)).unwrap();
        r.add_composite_index(&[0, 1]).unwrap();
        assert_eq!(
            r.lookup_rows_composite(&[(0, Value::int(5)), (1, Value::int(6))]),
            Some(vec![0])
        );
        r.clear();
        assert!(r.has_composite_index(&[0, 1]));
        r.insert(Tuple::pair(7, 8)).unwrap();
        assert_eq!(
            r.lookup_rows_composite(&[(1, Value::int(8)), (0, Value::int(7))]),
            Some(vec![0])
        );
    }

    #[test]
    fn single_column_composite_degrades_to_plain_index() {
        let mut r = Relation::new(edge_schema());
        r.add_composite_index(&[1, 1]).unwrap();
        assert!(r.has_index(1));
        assert!(r.composite_indexed_columns().is_empty());
    }

    #[test]
    fn shards_partition_all_rows_disjointly() {
        let mut r = Relation::new(edge_schema());
        r.set_sharding(4, 0).unwrap();
        for i in 0..100u32 {
            r.insert(Tuple::pair(i, i + 1)).unwrap();
        }
        assert!(r.is_sharded());
        let mut seen: Vec<usize> = (0..4).flat_map(|s| r.shard_rows(s).to_vec()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
        // Every shard got something at this size.
        for s in 0..4 {
            assert!(!r.shard_rows(s).is_empty(), "shard {s} is empty");
        }
        // All rows in a shard share the shard of their key value.
        for s in 0..4 {
            for &row in r.shard_rows(s) {
                let v = r.tuple_at(row).get(0).unwrap();
                assert_eq!(super::shard_of(v, 4), s);
            }
        }
    }

    #[test]
    fn sharding_can_be_reconfigured_and_disabled() {
        let mut r = Relation::new(edge_schema());
        for i in 0..10u32 {
            r.insert(Tuple::pair(i, i)).unwrap();
        }
        r.set_sharding(8, 1).unwrap();
        assert_eq!(r.shard_count(), 8);
        let total: usize = (0..8).map(|s| r.shard_rows(s).len()).sum();
        assert_eq!(total, 10);
        r.set_sharding(1, 0).unwrap();
        assert!(!r.is_sharded());
        assert!(r.shard_rows(0).is_empty());
        assert!(matches!(
            r.set_sharding(2, 9),
            Err(StorageError::ColumnOutOfBounds { .. })
        ));
    }

    #[test]
    fn union_in_place_keeps_source() {
        let mut a = Relation::new(edge_schema());
        let mut b = Relation::new(edge_schema());
        b.insert(Tuple::pair(9, 9)).unwrap();
        let added = a.union_in_place(&b).unwrap();
        assert_eq!(added, 1);
        assert_eq!(b.len(), 1);
    }
}
