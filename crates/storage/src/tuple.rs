//! Fixed-arity tuples.

use std::fmt;
use std::ops::Index;

use crate::value::Value;

/// A single row of a relation.
///
/// Tuples are immutable after construction; the arity is fixed by the
/// relation's schema and checked on insertion.  Internally the values are
/// stored in a boxed slice so the tuple itself is two words wide, which
/// keeps the derived/delta sets compact.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Box<[Value]>,
}

impl Tuple {
    /// Builds a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into_boxed_slice(),
        }
    }

    /// Builds a binary tuple from two plain integers (the common case for
    /// graph-shaped analysis facts).
    pub fn pair(a: u32, b: u32) -> Self {
        Tuple::new(vec![Value::int(a), Value::int(b)])
    }

    /// Builds a tuple of plain integers.
    pub fn from_ints(ints: &[u32]) -> Self {
        Tuple::new(ints.iter().copied().map(Value::int).collect())
    }

    /// Builds a tuple by copying a row slice out of a relation's row pool
    /// (the boundary between the flat storage layout and tuple-shaped
    /// results).
    pub fn from_row(values: &[Value]) -> Self {
        Tuple {
            values: values.into(),
        }
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Read access to a column; returns `None` when out of bounds.
    #[inline]
    pub fn get(&self, column: usize) -> Option<Value> {
        self.values.get(column).copied()
    }

    /// The underlying slice of values.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Projects the tuple onto the given column positions, in order.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of bounds (plan generation guarantees
    /// in-bounds projections; the debug assertion catches planner bugs).
    pub fn project(&self, columns: &[usize]) -> Tuple {
        Tuple::new(columns.iter().map(|&c| self.values[c]).collect())
    }

    /// Concatenates two tuples (used by join operators building wide
    /// intermediate rows).
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = Vec::with_capacity(self.arity() + other.arity());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Tuple::new(values)
    }
}

impl Index<usize> for Tuple {
    type Output = Value;

    fn index(&self, index: usize) -> &Self::Output {
        &self.values[index]
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl From<(u32, u32)> for Tuple {
    fn from((a, b): (u32, u32)) -> Self {
        Tuple::pair(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::from_ints(&[1, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(Value::int(1)));
        assert_eq!(t.get(3), None);
        assert_eq!(t[2], Value::int(3));
    }

    #[test]
    fn projection_reorders_and_duplicates() {
        let t = Tuple::from_ints(&[10, 20, 30]);
        let p = t.project(&[2, 0, 0]);
        assert_eq!(p, Tuple::from_ints(&[30, 10, 10]));
    }

    #[test]
    fn concat_appends_columns() {
        let a = Tuple::pair(1, 2);
        let b = Tuple::from_ints(&[3]);
        assert_eq!(a.concat(&b), Tuple::from_ints(&[1, 2, 3]));
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Tuple::pair(1, 2), Tuple::from_ints(&[1, 2]));
        assert_ne!(Tuple::pair(1, 2), Tuple::pair(2, 1));
    }

    #[test]
    fn display_lists_values() {
        let t = Tuple::pair(4, 5);
        assert_eq!(format!("{t}"), "(4, 5)");
    }
}
