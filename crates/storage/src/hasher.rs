//! A small, fast, non-cryptographic hasher used for all storage hash maps.
//!
//! The tuples that flow through a Datalog engine are short rows of 32-bit
//! integers, for which SipHash (the standard library default) is needlessly
//! slow.  We implement the well-known `FxHash` multiply-xor scheme locally so
//! that the workspace does not need an extra dependency for a 30-line
//! hasher.  HashDoS resistance is irrelevant here: keys are internal
//! integers, never attacker-controlled strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the FxHash scheme (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast hasher for small integer-like keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![1u32, 2, 3]));
    }

    #[test]
    fn different_values_usually_hash_different() {
        // Not a strong property, but a sanity check that the hasher mixes.
        let a = hash_of(&1u32);
        let b = hash_of(&2u32);
        let c = hash_of(&3u32);
        assert!(a != b || b != c);
    }

    #[test]
    fn map_and_set_work_with_fx_hasher() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));

        let mut set: FxHashSet<(u32, u32)> = FxHashSet::default();
        set.insert((1, 2));
        assert!(set.contains(&(1, 2)));
        assert!(!set.contains(&(2, 1)));
    }

    #[test]
    fn byte_tail_is_hashed() {
        // Strings whose length is not a multiple of 8 must still distinguish
        // by their tail bytes.
        assert_ne!(hash_of(&"abcdefghi"), hash_of(&"abcdefghj"));
    }
}
