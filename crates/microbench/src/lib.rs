//! An offline stand-in for the [Criterion](https://docs.rs/criterion)
//! statistics framework.
//!
//! The build environment for this repository has no network access, so the
//! real `criterion` crate cannot be fetched.  This crate exposes the (small)
//! subset of Criterion's API that the `carac-bench` benches use —
//! `criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! `sample_size`, `measurement_time`, `bench_function` and `Bencher::iter` —
//! with a deliberately simple measurement loop: a warm-up call followed by
//! repeated timed batches, reporting best / mean / worst wall-clock per
//! iteration.  It produces human-readable output rather than HTML reports,
//! and it has no statistical outlier analysis; it exists so `cargo bench`
//! works offline with unchanged bench sources.
//!
//! The lib target is intentionally named `criterion` so the bench files'
//! `use criterion::...` lines compile verbatim against either this shim or
//! the real crate.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Entry point mirroring `criterion::Criterion`.
///
/// Holds the global defaults that benchmark groups start from.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the wall-clock budget for one benchmark's measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.  The group starts from
    /// this instance's sampling settings (mirroring real Criterion, where
    /// groups inherit the global configuration until overridden).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n-- group: {name} --");
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size,
            measurement_time,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&id.into(), self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named collection of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, self.measurement_time, f);
        self
    }

    /// Ends the group (output is flushed eagerly, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to every benchmark closure; its [`iter`](Bencher::iter) method
/// runs and times the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting up to `sample_size` samples or until the
    /// measurement budget is exhausted (always at least one timed sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (not recorded).
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let s = Instant::now();
            black_box(routine());
            self.samples.push(s.elapsed());
            if started.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// An identity function that hides its argument from the optimizer, so the
/// benchmarked expression is not dead-code-eliminated.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn run_benchmark(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<52} (no samples)");
        return;
    }
    let best = bencher.samples.iter().min().unwrap();
    let worst = bencher.samples.iter().max().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!(
        "{id:<52} best {:>12?}  mean {:>12?}  worst {:>12?}  ({} samples)",
        best,
        mean,
        worst,
        bencher.samples.len()
    );
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// listed benchmark with a default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: defines `main` running the listed
/// groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(100));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_millis(10));
        group.bench_function("fast", |b| b.iter(|| black_box(42)));
        group.finish();
    }
}
