//! Human-readable rendering of plans, mostly for debugging, examples and
//! `EXPLAIN`-style output in the benchmark harness.

use std::fmt::Write as _;

use carac_datalog::Program;
use carac_storage::DbKind;

use crate::node::{IRNode, IROp};
use crate::query::ConjunctiveQuery;

/// Renders a plan as an indented tree.  Relation and rule names are resolved
/// through `program`.
pub fn render_plan(plan: &IRNode, program: &Program) -> String {
    let mut out = String::new();
    render_node(plan, program, 0, &mut out);
    out
}

fn render_node(node: &IRNode, program: &Program, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let label = match &node.op {
        IROp::Program { .. } => "Program".to_string(),
        IROp::Stratum {
            relations,
            recursive,
            ..
        } => format!(
            "Stratum [{}]{}",
            names(relations, program),
            if *recursive { " (recursive)" } else { "" }
        ),
        IROp::DoWhile { relations, .. } => {
            format!("DoWhile until Δ empty [{}]", names(relations, program))
        }
        IROp::Sequence { .. } => "Sequence".to_string(),
        IROp::SwapClear { relations } => {
            format!("SwapClear [{}]", names(relations, program))
        }
        IROp::UnionAllRules { rel, .. } => {
            format!("Union* into {}", program.relation(*rel).name)
        }
        IROp::UnionRule { rule, .. } => {
            format!("Union for {}", program.display_rule(program.rule(*rule)))
        }
        IROp::Spj { query } => render_query(query, program),
        IROp::Aggregate { spec } => {
            format!("Aggregate {}", program.display_aggregate(spec))
        }
    };
    let _ = writeln!(out, "{indent}{:?} {label}", node.id);
    for child in node.children() {
        render_node(child, program, depth + 1, out);
    }
}

fn names(relations: &[carac_storage::RelId], program: &Program) -> String {
    relations
        .iter()
        .map(|&r| program.relation(r).name.clone())
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders a conjunctive query in σπ⋈ notation, marking delta atoms with a
/// δ superscript and derived atoms with ⋆ (matching the paper's notation).
pub fn render_query(query: &ConjunctiveQuery, program: &Program) -> String {
    let atoms: Vec<String> = query
        .atoms
        .iter()
        .map(|a| {
            let marker = match a.db {
                DbKind::DeltaKnown => "δ",
                DbKind::Derived => "⋆",
                DbKind::DeltaNew => "ν",
            };
            format!("{}{}", program.relation(a.rel).name, marker)
        })
        .collect();
    let negated: Vec<String> = query
        .negated
        .iter()
        .map(|a| format!("¬{}", program.relation(a.rel).name))
        .collect();
    let mut body = atoms.join(" ⋈ ");
    if !negated.is_empty() {
        body = format!("{body} ▷ {}", negated.join(", "));
    }
    if !query.constraints.is_empty() {
        let rule = program.rule(query.rule);
        let term = |t: &carac_datalog::Term| match t {
            carac_datalog::Term::Var(v) => rule
                .var_names
                .get(v.index())
                .cloned()
                .unwrap_or_else(|| format!("{v:?}")),
            carac_datalog::Term::Const(c) => program.symbols().display(*c),
        };
        let constraints: Vec<String> = query
            .constraints
            .iter()
            .map(|c| format!("{} {} {}", term(&c.lhs), c.op.symbol(), term(&c.rhs)))
            .collect();
        body = format!("{body} σ[{}]", constraints.join(", "));
    }
    format!("σπ[{}] ← {}", program.relation(query.head_rel).name, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{generate_plan, EvalStrategy};
    use carac_datalog::parser::parse;

    #[test]
    fn rendering_mentions_relations_and_markers() {
        let p = parse(
            "Path(x, y) :- Edge(x, y).\n\
             Path(x, y) :- Edge(x, z), Path(z, y).\n",
        )
        .unwrap();
        let plan = generate_plan(&p, EvalStrategy::SemiNaive);
        let text = render_plan(&plan, &p);
        assert!(text.contains("Program"));
        assert!(text.contains("DoWhile"));
        assert!(text.contains("Path"));
        assert!(text.contains('δ'));
        assert!(text.contains('⋆'));
    }

    #[test]
    fn negated_atoms_render_with_antijoin() {
        let p = parse(
            "Composite(x) :- Div(x, d).\n\
             Prime(x) :- Num(x), !Composite(x).\n",
        )
        .unwrap();
        let plan = generate_plan(&p, EvalStrategy::SemiNaive);
        let text = render_plan(&plan, &p);
        assert!(text.contains('¬'));
    }
}
