//! # carac-ir
//!
//! The logical query plan of Carac-rs: the `IROp` tree (paper Fig. 4) and
//! its generation from a validated Datalog [`Program`] by partially
//! evaluating the semi-naive evaluation strategy with respect to the
//! program (a Futamura projection, paper §V-B.1).
//!
//! The plan is *logical* in the sense of the paper: it contains both the
//! Datalog-specific control operators (`DoWhile`, `SwapClear`, the two
//! union levels) and the relational `σπ⋈` subqueries, but says nothing about
//! how they execute — that is the job of `carac-exec`, which can interpret
//! the tree or compile any subtree with one of its backends.
//!
//! [`Program`]: carac_datalog::Program

#![forbid(unsafe_code)]

pub mod node;
pub mod plan;
pub mod pretty;
pub mod query;
pub mod verify;

pub use node::{IRNode, IROp, NodeId, NodeIdGen, OpKind};
pub use plan::{generate_plan, EvalStrategy};
pub use pretty::{render_plan, render_query};
pub use query::{ConjunctiveQuery, QueryAtom};
pub use verify::{verify_plan, verify_query, verify_subtree, PlanError};
