//! Static validation of IR plans — the middle layer of the artifact
//! verifier.
//!
//! Two entry points, both structural inductions over [`IROp`]:
//!
//! * [`verify_subtree`] checks any plan fragment against the relation
//!   schema alone: arity agreement of atoms, heads and aggregates;
//!   variable ids inside each query's declared frame; every variable read
//!   by a head binding, comparison constraint or negated atom bound by
//!   some positive atom (negation and aggregate inputs fully bound);
//!   negated atoms probing the `Derived` database; at most one delta atom
//!   per query; `DoWhile` bodies that actually swap the deltas they loop
//!   on.  This is what the JIT runs on compiled-subtree artifacts, where
//!   the stratification context is not available.
//! * [`verify_plan`] additionally checks a *whole* generated plan against
//!   its source program: one `Stratum` node per stratification stratum, in
//!   dependency order with matching relation sets and recursion flags;
//!   every rule placed in its own stratum; positive atoms reading only
//!   EDB relations or strata already computed (same stratum only through
//!   the delta discipline), negated atoms strictly lower strata; aggregate
//!   nodes agreeing with the program's aggregate specs, lattice folds
//!   inside the fixpoint loop and stratum-boundary folds outside.
//!
//! Join *order* is deliberately unconstrained: the optimizer permutes atom
//! orders at runtime, and any permutation is executable because scans
//! filter on whatever is bound so far.  What must hold regardless of order
//! is that every consumed variable has a producer — that is what is
//! checked.

use carac_datalog::{HeadBinding, Program, Term, VarId};
use carac_storage::{DbKind, RelId};
use std::fmt;

use crate::node::{IRNode, IROp};
use crate::query::ConjunctiveQuery;

/// A plan-validation failure.
///
/// Every variant names the query's rule (when one is involved) so the
/// message can be correlated with the source program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// A relation id has no schema entry.
    UnknownRelation {
        /// The unknown relation.
        rel: RelId,
        /// Where it was referenced.
        context: String,
    },
    /// An atom or head is wider or narrower than the declared relation.
    ArityMismatch {
        /// The relation whose arity was violated.
        rel: RelId,
        /// Terms the plan supplies.
        found: usize,
        /// The declared arity.
        arity: usize,
        /// Where the mismatch sits.
        context: String,
    },
    /// A variable id at or past the query's declared frame size.
    VariableOutOfFrame {
        /// The out-of-frame variable.
        var: VarId,
        /// The query's frame size.
        num_vars: usize,
        /// Where the variable appears.
        context: String,
    },
    /// A head binding, constraint or negated atom reads a variable no
    /// positive atom binds.
    UnboundVariable {
        /// The unbound variable.
        var: VarId,
        /// Where the read happens.
        context: String,
    },
    /// A negated atom probes a delta database instead of `Derived`.
    NegatedDelta {
        /// The negated relation.
        rel: RelId,
        /// Where it appears.
        context: String,
    },
    /// More than one delta atom in one query (semi-naive emits exactly one
    /// delta variant per positive atom).
    MultipleDeltaAtoms {
        /// Where they appear.
        context: String,
    },
    /// The plan's structure does not match the expected shape (stratum
    /// ordering, `DoWhile` placement, swap coverage, aggregate spec drift).
    Structure(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnknownRelation { rel, context } => {
                write!(f, "{context}: relation {rel:?} has no schema entry")
            }
            PlanError::ArityMismatch {
                rel,
                found,
                arity,
                context,
            } => write!(
                f,
                "{context}: {rel:?} supplied {found} terms, declared arity {arity}"
            ),
            PlanError::VariableOutOfFrame {
                var,
                num_vars,
                context,
            } => write!(
                f,
                "{context}: variable v{} outside frame of {num_vars}",
                var.0
            ),
            PlanError::UnboundVariable { var, context } => {
                write!(f, "{context}: variable v{} has no positive binder", var.0)
            }
            PlanError::NegatedDelta { rel, context } => {
                write!(f, "{context}: negated {rel:?} probes a delta database")
            }
            PlanError::MultipleDeltaAtoms { context } => {
                write!(f, "{context}: more than one delta atom")
            }
            PlanError::Structure(msg) => write!(f, "plan structure: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// Declared arity of `rel`, or an `UnknownRelation` conviction.
fn arity_of(
    arities: &[usize],
    rel: RelId,
    context: &dyn Fn() -> String,
) -> Result<usize, PlanError> {
    arities
        .get(rel.index())
        .copied()
        .ok_or_else(|| PlanError::UnknownRelation {
            rel,
            context: context(),
        })
}

/// Schema-only validation of one conjunctive query; see the module docs.
pub fn verify_query(query: &ConjunctiveQuery, arities: &[usize]) -> Result<(), PlanError> {
    let rule = query.rule;
    let check_var = |var: VarId, what: &str| -> Result<(), PlanError> {
        if var.index() >= query.num_vars {
            return Err(PlanError::VariableOutOfFrame {
                var,
                num_vars: query.num_vars,
                context: format!("rule {}: {what}", rule.0),
            });
        }
        Ok(())
    };

    // Positive atoms: arity agreement, frame membership, delta discipline,
    // and the set of bound variables everything else may consume.
    let mut bound = vec![false; query.num_vars];
    let mut delta_atoms = 0usize;
    for atom in &query.atoms {
        let arity = arity_of(arities, atom.rel, &|| {
            format!("rule {}: positive atom", rule.0)
        })?;
        if atom.terms.len() != arity {
            return Err(PlanError::ArityMismatch {
                rel: atom.rel,
                found: atom.terms.len(),
                arity,
                context: format!("rule {}: positive atom", rule.0),
            });
        }
        for term in &atom.terms {
            if let Term::Var(var) = term {
                check_var(*var, "positive atom")?;
                bound[var.index()] = true;
            }
        }
        if atom.db == DbKind::DeltaKnown {
            delta_atoms += 1;
        }
    }
    if delta_atoms > 1 {
        return Err(PlanError::MultipleDeltaAtoms {
            context: format!("rule {}", rule.0),
        });
    }
    let require_bound = |var: VarId, what: &str| -> Result<(), PlanError> {
        check_var(var, what)?;
        if !bound[var.index()] {
            return Err(PlanError::UnboundVariable {
                var,
                context: format!("rule {}: {what}", rule.0),
            });
        }
        Ok(())
    };

    // Negated atoms: fully bound probes of the Derived database.
    for atom in &query.negated {
        let arity = arity_of(arities, atom.rel, &|| {
            format!("rule {}: negated atom", rule.0)
        })?;
        if atom.terms.len() != arity {
            return Err(PlanError::ArityMismatch {
                rel: atom.rel,
                found: atom.terms.len(),
                arity,
                context: format!("rule {}: negated atom", rule.0),
            });
        }
        if atom.db != DbKind::Derived {
            return Err(PlanError::NegatedDelta {
                rel: atom.rel,
                context: format!("rule {}", rule.0),
            });
        }
        for term in &atom.terms {
            if let Term::Var(var) = term {
                require_bound(*var, "negated atom")?;
            }
        }
    }

    // Comparison constraints: both operands bound (or constant).
    for constraint in &query.constraints {
        for var in constraint.variables() {
            require_bound(var, "constraint")?;
        }
    }

    // Head: arity agreement and bound sources.
    let head_arity = arity_of(arities, query.head_rel, &|| {
        format!("rule {}: head", rule.0)
    })?;
    if query.head_bindings.len() != head_arity {
        return Err(PlanError::ArityMismatch {
            rel: query.head_rel,
            found: query.head_bindings.len(),
            arity: head_arity,
            context: format!("rule {}: head", rule.0),
        });
    }
    for binding in &query.head_bindings {
        if let HeadBinding::Var(var) = binding {
            require_bound(*var, "head")?;
        }
    }
    Ok(())
}

/// Context-free validation of a plan fragment against the relation schema;
/// see the module docs.  This is the check the JIT applies to compiled
/// subtree artifacts.
pub fn verify_subtree(node: &IRNode, arities: &[usize]) -> Result<(), PlanError> {
    let check_rels = |relations: &[RelId], what: &str| -> Result<(), PlanError> {
        for &rel in relations {
            arity_of(arities, rel, &|| what.to_string())?;
        }
        Ok(())
    };
    match &node.op {
        IROp::Program { children }
        | IROp::Sequence { children }
        | IROp::UnionRule { children, .. } => {
            for child in children {
                verify_subtree(child, arities)?;
            }
            Ok(())
        }
        IROp::Stratum {
            relations,
            children,
            ..
        } => {
            check_rels(relations, "stratum")?;
            for child in children {
                verify_subtree(child, arities)?;
            }
            Ok(())
        }
        IROp::UnionAllRules { rel, children } => {
            arity_of(arities, *rel, &|| "union-all-rules".to_string())?;
            for child in children {
                verify_subtree(child, arities)?;
            }
            Ok(())
        }
        IROp::DoWhile { relations, body } => {
            if relations.is_empty() {
                return Err(PlanError::Structure(
                    "do-while loops over an empty relation set".to_string(),
                ));
            }
            check_rels(relations, "do-while")?;
            // The loop must drain the deltas it tests: some SwapClear in
            // the body has to cover every looped relation, otherwise the
            // exit condition can never become false.
            let mut covered = false;
            body.visit(&mut |n| {
                if let IROp::SwapClear { relations: cleared } = &n.op {
                    if relations.iter().all(|r| cleared.contains(r)) {
                        covered = true;
                    }
                }
            });
            if !covered {
                return Err(PlanError::Structure(format!(
                    "do-while over {relations:?} has no covering swap-clear in its body"
                )));
            }
            verify_subtree(body, arities)
        }
        IROp::SwapClear { relations } => check_rels(relations, "swap-clear"),
        IROp::Spj { query } => verify_query(query, arities),
        IROp::Aggregate { spec } => {
            let in_arity = arity_of(arities, spec.input, &|| "aggregate input".to_string())?;
            let out_arity = arity_of(arities, spec.output, &|| "aggregate output".to_string())?;
            if in_arity != out_arity {
                return Err(PlanError::ArityMismatch {
                    rel: spec.output,
                    found: in_arity,
                    arity: out_arity,
                    context: "aggregate".to_string(),
                });
            }
            for &(column, _) in &spec.aggs {
                if column >= in_arity {
                    return Err(PlanError::Structure(format!(
                        "aggregate folds column {column} of {:?} with arity {in_arity}",
                        spec.input
                    )));
                }
            }
            Ok(())
        }
    }
}

/// Validation of a whole generated plan against its source program; see
/// the module docs.  Applied to optimizer output and to magic-rewritten
/// plans (which are generated from the rewritten program and verified
/// against it).
pub fn verify_plan(plan: &IRNode, program: &Program) -> Result<(), PlanError> {
    let arities: Vec<usize> = program.relations().iter().map(|d| d.arity).collect();
    verify_subtree(plan, &arities)?;

    let strata = program.stratification().strata();
    // Stratum index of every IDB relation, for dependency checks.
    let mut stratum_of: Vec<Option<usize>> = vec![None; program.relations().len()];
    for (i, stratum) in strata.iter().enumerate() {
        for rel in &stratum.relations {
            stratum_of[rel.index()] = Some(i);
        }
    }

    let IROp::Program { children } = &plan.op else {
        return Err(PlanError::Structure(
            "plan root is not a program node".to_string(),
        ));
    };
    if children.len() != strata.len() {
        return Err(PlanError::Structure(format!(
            "plan has {} strata, stratification has {}",
            children.len(),
            strata.len()
        )));
    }
    for (i, (child, stratum)) in children.iter().zip(strata).enumerate() {
        let IROp::Stratum {
            relations,
            recursive,
            ..
        } = &child.op
        else {
            return Err(PlanError::Structure(format!(
                "plan child {i} is not a stratum node"
            )));
        };
        if *recursive != stratum.recursive {
            return Err(PlanError::Structure(format!(
                "stratum {i} recursion flag disagrees with the stratification"
            )));
        }
        let mut expected: Vec<RelId> = stratum.relations.clone();
        let mut found: Vec<RelId> = relations.clone();
        expected.sort_unstable_by_key(|r| r.0);
        found.sort_unstable_by_key(|r| r.0);
        if expected != found {
            return Err(PlanError::Structure(format!(
                "stratum {i} computes {found:?}, stratification assigns {expected:?}"
            )));
        }
        verify_stratum_body(child, i, stratum.recursive, false, program, &stratum_of)?;
    }
    Ok(())
}

/// Checks every query and aggregate below one stratum node against the
/// stratification: reads only from completed strata (or the own stratum's
/// deltas), negation strictly below, aggregate specs matching the program,
/// lattice folds inside the loop and boundary folds outside.
fn verify_stratum_body(
    node: &IRNode,
    stratum: usize,
    recursive: bool,
    in_loop: bool,
    program: &Program,
    stratum_of: &[Option<usize>],
) -> Result<(), PlanError> {
    match &node.op {
        IROp::DoWhile { body, .. } => {
            if !recursive {
                return Err(PlanError::Structure(format!(
                    "stratum {stratum} is not recursive but contains a do-while"
                )));
            }
            verify_stratum_body(body, stratum, recursive, true, program, stratum_of)
        }
        IROp::Spj { query } => {
            let place = |rel: RelId| stratum_of.get(rel.index()).copied().flatten();
            if place(query.head_rel) != Some(stratum) {
                return Err(PlanError::Structure(format!(
                    "stratum {stratum} derives {:?}, which belongs to stratum {:?}",
                    query.head_rel,
                    place(query.head_rel)
                )));
            }
            for atom in &query.atoms {
                match atom.db {
                    DbKind::Derived => {
                        if let Some(home) = place(atom.rel) {
                            if home > stratum {
                                return Err(PlanError::Structure(format!(
                                    "stratum {stratum} reads {:?} from later stratum {home}",
                                    atom.rel
                                )));
                            }
                        }
                    }
                    DbKind::DeltaKnown => {
                        if place(atom.rel) != Some(stratum) {
                            return Err(PlanError::Structure(format!(
                                "stratum {stratum} reads deltas of {:?} from another stratum",
                                atom.rel
                            )));
                        }
                    }
                    DbKind::DeltaNew => {
                        return Err(PlanError::Structure(format!(
                            "stratum {stratum} reads the delta-new database of {:?}",
                            atom.rel
                        )));
                    }
                }
            }
            for atom in &query.negated {
                if let Some(home) = place(atom.rel) {
                    if home >= stratum {
                        return Err(PlanError::Structure(format!(
                            "stratum {stratum} negates {:?} of stratum {home}, not strictly lower",
                            atom.rel
                        )));
                    }
                }
            }
            Ok(())
        }
        IROp::Aggregate { spec } => {
            let declared = program.aggregate_for(spec.output).ok_or_else(|| {
                PlanError::Structure(format!(
                    "plan aggregates into {:?}, which the program does not declare",
                    spec.output
                ))
            })?;
            if declared != spec {
                return Err(PlanError::Structure(format!(
                    "aggregate spec for {:?} drifted from the program's declaration",
                    spec.output
                )));
            }
            if spec.lattice != in_loop {
                return Err(PlanError::Structure(format!(
                    "{} aggregate for {:?} placed {} the fixpoint loop",
                    if spec.lattice { "lattice" } else { "boundary" },
                    spec.output,
                    if in_loop { "inside" } else { "outside" }
                )));
            }
            Ok(())
        }
        _ => {
            for child in node.children() {
                verify_stratum_body(child, stratum, recursive, in_loop, program, stratum_of)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{generate_plan, EvalStrategy};
    use carac_datalog::parser::parse;

    fn arities(program: &Program) -> Vec<usize> {
        program.relations().iter().map(|d| d.arity).collect()
    }

    fn plan_of(source: &str) -> (IRNode, Program) {
        let p = parse(source).unwrap();
        let plan = generate_plan(&p, EvalStrategy::SemiNaive);
        (plan, p)
    }

    #[test]
    fn accepts_generated_plans() {
        for source in [
            "Path(x, y) :- Edge(x, y).\nPath(x, y) :- Edge(x, z), Path(z, y).\nEdge(1, 2).",
            "Blocked(x, y) :- Edge(x, y), !Open(x, y).\nOpen(1, 1). Edge(1, 2).",
            "Cost(x, y) :- Edge(x, y).\nBest(x, min y) :- Cost(x, y).\nEdge(1, 7).",
            "Out(x) :- R(x, y), S(y, z), T(z, x), x < z.\nR(1, 2). S(2, 3). T(3, 1).",
        ] {
            let (plan, p) = plan_of(source);
            verify_plan(&plan, &p).unwrap_or_else(|e| panic!("{source}: {e}"));
            for strategy in [EvalStrategy::Naive, EvalStrategy::SemiNaive] {
                let plan = generate_plan(&p, strategy);
                verify_plan(&plan, &p).unwrap();
            }
        }
    }

    #[test]
    fn accepts_arbitrary_join_orders() {
        let (plan, p) = plan_of(
            "Q(x, z) :- R(x, y), S(y, z), T(z, x).\n\
             R(1, 2). S(2, 3). T(3, 1).",
        );
        let ar = arities(&p);
        for (_, query) in plan.spj_queries() {
            if query.width() == 3 {
                for order in [[2, 1, 0], [1, 2, 0], [2, 0, 1]] {
                    let reordered = query.with_order(&order);
                    verify_query(&reordered, &ar).unwrap();
                }
            }
        }
    }

    #[test]
    fn rejects_shuffled_strata() {
        let (mut plan, p) = plan_of(
            "Cost(x, y) :- Edge(x, y).\n\
             Best(x, min y) :- Cost(x, y).\n\
             Edge(1, 7).",
        );
        if let IROp::Program { children } = &mut plan.op {
            assert!(children.len() >= 2, "aggregate forces multiple strata");
            children.swap(0, 1);
        }
        assert!(matches!(
            verify_plan(&plan, &p),
            Err(PlanError::Structure(_))
        ));
    }

    #[test]
    fn rejects_dropped_swap_clear() {
        let (mut plan, p) = plan_of(
            "Path(x, y) :- Edge(x, y).\nPath(x, y) :- Edge(x, z), Path(z, y).\nEdge(1, 2).",
        );
        plan.visit_mut(&mut |n| {
            if let IROp::SwapClear { relations } = &mut n.op {
                relations.clear();
            }
        });
        assert!(matches!(
            verify_plan(&plan, &p),
            Err(PlanError::Structure(_))
        ));
    }

    #[test]
    fn rejects_unbound_head_and_negation_variables() {
        let (plan, p) =
            plan_of("Blocked(x, y) :- Edge(x, y), !Open(x, y).\nOpen(1, 1). Edge(1, 2).");
        let ar = arities(&p);
        for (_, query) in plan.spj_queries() {
            if query.negated.is_empty() {
                continue;
            }
            // Dropping the positive atom leaves the negation unbound.
            let mut broken = query.clone();
            broken.atoms.clear();
            assert!(matches!(
                verify_query(&broken, &ar),
                Err(PlanError::UnboundVariable { .. })
            ));
        }
    }

    #[test]
    fn rejects_arity_and_frame_violations() {
        let (plan, p) = plan_of("Path(x, y) :- Edge(x, y).\nEdge(1, 2).");
        let ar = arities(&p);
        for (_, query) in plan.spj_queries() {
            let mut wide = query.clone();
            wide.atoms[0].terms.push(Term::Var(VarId(0)));
            assert!(matches!(
                verify_query(&wide, &ar),
                Err(PlanError::ArityMismatch { .. })
            ));

            let mut out_of_frame = query.clone();
            out_of_frame.num_vars = 1;
            assert!(matches!(
                verify_query(&out_of_frame, &ar),
                Err(PlanError::VariableOutOfFrame { .. })
            ));

            let mut ghost = query.clone();
            ghost.head_rel = RelId(99);
            assert!(matches!(
                verify_query(&ghost, &ar),
                Err(PlanError::UnknownRelation { .. })
            ));
        }
    }

    #[test]
    fn rejects_negated_delta_probe() {
        let (plan, p) =
            plan_of("Blocked(x, y) :- Edge(x, y), !Open(x, y).\nOpen(1, 1). Edge(1, 2).");
        let ar = arities(&p);
        for (_, query) in plan.spj_queries() {
            if query.negated.is_empty() {
                continue;
            }
            let mut broken = query.clone();
            broken.negated[0].db = DbKind::DeltaKnown;
            assert!(matches!(
                verify_query(&broken, &ar),
                Err(PlanError::NegatedDelta { .. })
            ));
        }
    }

    #[test]
    fn rejects_aggregate_drift() {
        let (mut plan, p) = plan_of(
            "Cost(x, y) :- Edge(x, y).\n\
             Best(x, min y) :- Cost(x, y).\n\
             Edge(1, 7).",
        );
        plan.visit_mut(&mut |n| {
            if let IROp::Aggregate { spec } = &mut n.op {
                spec.lattice = !spec.lattice;
            }
        });
        assert!(matches!(
            verify_plan(&plan, &p),
            Err(PlanError::Structure(_))
        ));
    }
}
