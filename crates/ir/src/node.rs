//! The IROp tree — Carac's logical query plan (paper Fig. 4).
//!
//! The plan is an imperative tree of relational-algebra, control-flow and
//! relation-management operations obtained by partially evaluating the
//! semi-naive evaluator with respect to the input Datalog program (a
//! Futamura projection, §V-B.1).  Every node carries a stable [`NodeId`] so
//! the JIT can cache compiled artifacts per node and so safe points can be
//! identified across interpretation and compiled code.
//!
//! Correspondence with the paper's operators:
//!
//! | paper              | here                          |
//! |--------------------|-------------------------------|
//! | `ProgramOp`        | [`IROp::Program`]             |
//! | `DoWhileOp`        | [`IROp::DoWhile`]             |
//! | `SwapClearOp`      | [`IROp::SwapClear`]           |
//! | `UnionOp*` (pink)  | [`IROp::UnionAllRules`]       |
//! | `UnionOp` (yellow) | [`IROp::UnionRule`]           |
//! | `σπ⋈` (blue)       | [`IROp::Spj`]                 |
//! | `InsertOp`/`ScanOp`| folded into [`IROp::Spj`] (it scans its sources and inserts into the head's delta-new) |
//! | sequencing         | [`IROp::Sequence`]            |

use carac_datalog::{AggregateSpec, RuleId};
use carac_storage::RelId;
use std::fmt;

use crate::query::ConjunctiveQuery;

/// Stable identifier of a node within one generated plan.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The kind of an IR operation — used to express compilation granularities
/// ("compile at every UnionOp*", "compile at every σπ⋈", ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Whole-program node.
    Program,
    /// One stratum (initial pass + fixpoint loop).
    Stratum,
    /// Fixpoint loop of a stratum.
    DoWhile,
    /// Plain sequencing.
    Sequence,
    /// Iteration boundary: merge deltas, swap, clear.
    SwapClear,
    /// Union over all rules of one relation (paper `UnionOp*`).
    UnionAllRules,
    /// Union over the delta-variants of one rule (paper `UnionOp`).
    UnionRule,
    /// One select-project-join subquery.
    Spj,
    /// Stratum-boundary aggregation (group + fold into the output relation).
    Aggregate,
}

/// A plan node: id plus operation.
#[derive(Debug, Clone, PartialEq)]
pub struct IRNode {
    /// Stable id within the plan.
    pub id: NodeId,
    /// The operation.
    pub op: IROp,
}

/// Plan operations.  Children are owned; the tree is immutable after
/// generation except through wholesale replacement by the IRGenerator
/// backend (which regenerates subtrees with new atom orders).
#[derive(Debug, Clone, PartialEq)]
pub enum IROp {
    /// Top-level program: one child per stratum, executed in order.
    Program {
        /// Strata in evaluation order.
        children: Vec<IRNode>,
    },
    /// One stratum: an initial naive pass followed by the fixpoint loop.
    Stratum {
        /// Relations computed by this stratum.
        relations: Vec<RelId>,
        /// Children executed in order (initial pass, swap, loop).
        children: Vec<IRNode>,
        /// Whether the stratum is recursive (needs the loop at all).
        recursive: bool,
    },
    /// Fixpoint loop: execute `body` then [`IROp::SwapClear`]'s merge until
    /// no delta relation of the stratum contains tuples.
    DoWhile {
        /// Relations whose deltas decide termination.
        relations: Vec<RelId>,
        /// Loop body.
        body: Box<IRNode>,
    },
    /// Sequential composition, executed left to right.
    Sequence {
        /// Children in execution order.
        children: Vec<IRNode>,
    },
    /// Iteration boundary for the given relations.
    SwapClear {
        /// Relations to merge/swap/clear.
        relations: Vec<RelId>,
    },
    /// Union of the contributions of every rule defining `rel`
    /// (paper `UnionOp*`).
    UnionAllRules {
        /// Head relation.
        rel: RelId,
        /// One child per rule (each an [`IROp::UnionRule`]).
        children: Vec<IRNode>,
    },
    /// Union of the delta-variants of a single rule (paper `UnionOp`).
    UnionRule {
        /// Originating rule.
        rule: RuleId,
        /// One child per delta-variant (each an [`IROp::Spj`]).
        children: Vec<IRNode>,
    },
    /// One select-project-join subquery: scans its sources, applies the
    /// filters, projects the head columns and inserts the result into the
    /// head relation's delta-new database.
    Spj {
        /// The subquery.
        query: ConjunctiveQuery,
    },
    /// Stratified aggregation: groups the (fully computed) input relation's
    /// derived rows on the non-aggregated columns, folds the aggregated
    /// columns, and inserts one row per group into the output relation's
    /// delta-new database.  Always followed by a [`IROp::SwapClear`] on the
    /// output relation.
    Aggregate {
        /// The aggregation to finalize.
        spec: AggregateSpec,
    },
}

impl IRNode {
    /// The kind of this node.
    pub fn kind(&self) -> OpKind {
        match &self.op {
            IROp::Program { .. } => OpKind::Program,
            IROp::Stratum { .. } => OpKind::Stratum,
            IROp::DoWhile { .. } => OpKind::DoWhile,
            IROp::Sequence { .. } => OpKind::Sequence,
            IROp::SwapClear { .. } => OpKind::SwapClear,
            IROp::UnionAllRules { .. } => OpKind::UnionAllRules,
            IROp::UnionRule { .. } => OpKind::UnionRule,
            IROp::Spj { .. } => OpKind::Spj,
            IROp::Aggregate { .. } => OpKind::Aggregate,
        }
    }

    /// Immutable children of this node, in execution order.
    pub fn children(&self) -> Vec<&IRNode> {
        match &self.op {
            IROp::Program { children }
            | IROp::Sequence { children }
            | IROp::UnionAllRules { children, .. }
            | IROp::UnionRule { children, .. }
            | IROp::Stratum { children, .. } => children.iter().collect(),
            IROp::DoWhile { body, .. } => vec![body],
            IROp::SwapClear { .. } | IROp::Spj { .. } | IROp::Aggregate { .. } => Vec::new(),
        }
    }

    /// Mutable children of this node, in execution order.
    pub fn children_mut(&mut self) -> Vec<&mut IRNode> {
        match &mut self.op {
            IROp::Program { children }
            | IROp::Sequence { children }
            | IROp::UnionAllRules { children, .. }
            | IROp::UnionRule { children, .. }
            | IROp::Stratum { children, .. } => children.iter_mut().collect(),
            IROp::DoWhile { body, .. } => vec![body.as_mut()],
            IROp::SwapClear { .. } | IROp::Spj { .. } | IROp::Aggregate { .. } => Vec::new(),
        }
    }

    /// Pre-order traversal visiting every node.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a IRNode)) {
        f(self);
        for child in self.children() {
            child.visit(f);
        }
    }

    /// Pre-order traversal with mutable access.
    pub fn visit_mut(&mut self, f: &mut impl FnMut(&mut IRNode)) {
        f(self);
        for child in self.children_mut() {
            child.visit_mut(f);
        }
    }

    /// Total number of nodes in the subtree rooted here.
    pub fn node_count(&self) -> usize {
        let mut count = 0;
        self.visit(&mut |_| count += 1);
        count
    }

    /// Finds a node by id.
    pub fn find(&self, id: NodeId) -> Option<&IRNode> {
        if self.id == id {
            return Some(self);
        }
        for child in self.children() {
            if let Some(found) = child.find(id) {
                return Some(found);
            }
        }
        None
    }

    /// Collects the ids of every node of the given kind, in pre-order.
    pub fn nodes_of_kind(&self, kind: OpKind) -> Vec<NodeId> {
        let mut ids = Vec::new();
        self.visit(&mut |node| {
            if node.kind() == kind {
                ids.push(node.id);
            }
        });
        ids
    }

    /// Collects every SPJ query in the subtree (pre-order), together with
    /// the node ids carrying them.
    pub fn spj_queries(&self) -> Vec<(NodeId, &ConjunctiveQuery)> {
        let mut out = Vec::new();
        self.visit(&mut |node| {
            if let IROp::Spj { query } = &node.op {
                out.push((node.id, query));
            }
        });
        out
    }
}

/// Allocates [`NodeId`]s during plan construction.
#[derive(Debug, Default)]
pub struct NodeIdGen {
    next: u32,
}

impl NodeIdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        NodeIdGen::default()
    }

    /// Returns a fresh id.
    pub fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        id
    }

    /// Number of ids handed out so far.
    pub fn count(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(gen: &mut NodeIdGen) -> IRNode {
        IRNode {
            id: gen.fresh(),
            op: IROp::SwapClear { relations: vec![] },
        }
    }

    #[test]
    fn traversal_counts_and_finds_nodes() {
        let mut gen = NodeIdGen::new();
        let a = leaf(&mut gen);
        let b = leaf(&mut gen);
        let seq = IRNode {
            id: gen.fresh(),
            op: IROp::Sequence {
                children: vec![a, b],
            },
        };
        let target = seq.children()[1].id;
        let root = IRNode {
            id: gen.fresh(),
            op: IROp::Program {
                children: vec![seq],
            },
        };
        assert_eq!(root.node_count(), 4);
        assert!(root.find(target).is_some());
        assert!(root.find(NodeId(99)).is_none());
        assert_eq!(root.nodes_of_kind(OpKind::SwapClear).len(), 2);
        assert_eq!(root.kind(), OpKind::Program);
    }

    #[test]
    fn visit_mut_reaches_every_node() {
        let mut gen = NodeIdGen::new();
        let a = leaf(&mut gen);
        let mut root = IRNode {
            id: gen.fresh(),
            op: IROp::Sequence { children: vec![a] },
        };
        let mut visited = 0;
        root.visit_mut(&mut |_| visited += 1);
        assert_eq!(visited, 2);
    }

    #[test]
    fn id_generator_is_dense() {
        let mut gen = NodeIdGen::new();
        assert_eq!(gen.fresh(), NodeId(0));
        assert_eq!(gen.fresh(), NodeId(1));
        assert_eq!(gen.count(), 2);
    }
}
